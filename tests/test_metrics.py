"""Unit tests for the obs metrics layer (counters, histograms, registry)."""

import threading

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry, format_snapshot


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_merge(self):
        a, b = Counter("c"), Counter("c")
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.value == 5

    def test_concurrent_increments(self):
        c = Counter("c")

        def hammer():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("lat")
        for v in (0.001, 0.002, 0.004):
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 0.001
        assert snap["max"] == 0.004
        assert snap["mean"] == pytest.approx(0.007 / 3)

    def test_quantile_is_bucket_upper_bound(self):
        h = Histogram("lat", lo=1.0, factor=2.0, n_buckets=8)
        for _ in range(99):
            h.record(1.5)  # bucket le_2
        h.record(100.0)  # bucket le_128
        assert h.quantile(0.5) == 2.0
        assert h.quantile(0.99) == 2.0
        assert h.quantile(1.0) == 128.0

    def test_overflow_bucket(self):
        h = Histogram("lat", lo=1.0, factor=2.0, n_buckets=2)
        h.record(1e9)
        snap = h.snapshot()
        assert snap["buckets"] == {"overflow": 1}
        assert h.quantile(0.5) == 1e9  # falls back to observed max

    def test_merge(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.record(0.001)
        b.record(0.1)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 2
        assert snap["min"] == 0.001
        assert snap["max"] == 0.1

    def test_merge_rejects_different_layouts(self):
        a = Histogram("lat", lo=1.0)
        b = Histogram("lat", lo=2.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0
        assert snap["clamped"] == 0

    def test_empty_mean_and_quantiles_consistent_zero(self):
        # callers must never need a count() guard: every statistic of an
        # empty histogram is exactly 0.0, at any q
        h = Histogram("lat")
        assert h.mean == 0.0
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == 0.0

    def test_empty_merge_stays_empty(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.merge(b)  # empty into empty
        assert a.mean == 0.0
        assert a.quantile(0.99) == 0.0
        snap = a.snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        assert snap["buckets"] == {}

    def test_merging_empty_changes_nothing(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.record(0.25)
        before = a.snapshot()
        a.merge(b)  # empty into non-empty: min/max/quantiles untouched
        assert a.snapshot() == before

    def test_quantile_zero_reflects_data_not_first_bound(self):
        # q=0 must resolve to a bucket that actually holds a sample, not
        # fall through to bounds[0] on an empty first bucket
        h = Histogram("lat", lo=1.0, factor=2.0, n_buckets=8)
        h.record(100.0)  # le_128 only
        assert h.quantile(0.0) == 128.0

    def test_nan_and_negative_clamped_to_zero(self):
        h = Histogram("lat")
        h.record(float("nan"))
        h.record(-1.5)
        h.record(0.25)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["clamped"] == 2
        # the sum is not poisoned: NaN/negative contribute exactly 0
        assert snap["sum"] == pytest.approx(0.25)
        assert snap["mean"] == pytest.approx(0.25 / 3)
        assert snap["min"] == 0.0
        assert snap["max"] == 0.25

    def test_merge_propagates_clamped(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.record(float("nan"))
        b.record(-2.0)
        b.record(0.5)
        a.merge(b)
        assert a.snapshot()["clamped"] == 2
        assert a.snapshot()["count"] == 3


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(3)
        reg.histogram("lat").record(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"ops": 3}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops").inc(1)
        b.counter("ops").inc(2)
        b.histogram("lat", lo=0.5).record(1.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["ops"] == 3
        assert snap["histograms"]["lat"]["count"] == 1

    def test_format_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(7)
        reg.histogram("lat").record(0.25)
        reg.histogram("idle")  # created but never recorded
        text = format_snapshot(reg.snapshot())
        assert "ops" in text and "7" in text
        assert "n=1" in text
        assert "(empty)" in text
        assert format_snapshot({"counters": {}, "histograms": {}}) == (
            "(no metrics recorded)"
        )
