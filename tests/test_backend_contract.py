"""One contract, three runtimes.

Every backend — single-process ``LocalRuntime``, thread-replicated
``ThreadedReplicaRuntime``, process-replicated ``MultiprocessRuntime`` —
implements the same :class:`~repro.core.runtime.BaseRuntime` API, so the
observable Linda semantics must be identical.  This suite states that
contract once and runs it over all three, replacing the per-backend
near-duplicate tests; backend-specific behaviour (ordered cancel,
pickling, snapshot recovery) stays in the per-backend files.
"""

import pytest

from repro import (
    AGS,
    FAILURE_TAG,
    Guard,
    LocalRuntime,
    Op,
    SpaceError,
    formal,
    ref,
)
from repro.core.ags import Branch
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime

# The -s4 variants run the same runtimes partitioned into 4 shard groups
# (still 3 replicas per shard): the whole contract — semantics, crash
# handling, fingerprint convergence, metrics — must be shard-transparent.
BACKENDS = ["local", "threaded", "multiproc", "threaded-s4", "multiproc-s4"]


@pytest.fixture(params=BACKENDS)
def rt(request):
    if request.param == "local":
        runtime = LocalRuntime()
    elif request.param == "threaded":
        runtime = ThreadedReplicaRuntime(n_replicas=3)
    elif request.param == "threaded-s4":
        runtime = ThreadedReplicaRuntime(n_replicas=3, shards=4)
    elif request.param == "multiproc-s4":
        runtime = MultiprocessRuntime(n_replicas=3, shards=4)
    else:
        runtime = MultiprocessRuntime(n_replicas=3)
    yield runtime
    shutdown = getattr(runtime, "shutdown", None)
    if shutdown is not None:
        shutdown()


def _replicated(runtime) -> bool:
    return hasattr(runtime, "crash_replica")


class TestLindaOps:
    def test_out_in_roundtrip(self, rt):
        rt.out(rt.main_ts, "x", 1)
        assert rt.in_(rt.main_ts, "x", formal(int)) == ("x", 1)

    def test_rd_leaves_tuple_in_withdraws(self, rt):
        rt.out(rt.main_ts, "k", 7)
        assert rt.rd(rt.main_ts, "k", formal(int)) == ("k", 7)
        assert rt.in_(rt.main_ts, "k", formal(int)) == ("k", 7)
        assert rt.inp(rt.main_ts, "k", formal(int)) is None

    def test_inp_rdp_do_not_block(self, rt):
        assert rt.inp(rt.main_ts, "absent", formal(int)) is None
        assert rt.rdp(rt.main_ts, "absent", formal(int)) is None
        rt.out(rt.main_ts, "present", 3)
        assert rt.rdp(rt.main_ts, "present", formal(int)) == ("present", 3)
        assert rt.inp(rt.main_ts, "present", formal(int)) == ("present", 3)

    def test_blocking_in_wakes_on_out(self, rt):
        h = rt.eval_(lambda proc: proc.in_(proc.main_ts, "later", formal(int)))
        rt.out(rt.main_ts, "later", 9)
        assert h.join(timeout=30) == ("later", 9)

    def test_move_and_copy(self, rt):
        dst = rt.create_space("dst")
        rt.out(rt.main_ts, "t", 1)
        rt.out(rt.main_ts, "t", 2)
        rt.copy(rt.main_ts, dst, "t", formal(int))
        assert rt.space_size(dst) == 2
        rt.move(rt.main_ts, dst, "t", formal(int))
        assert rt.space_size(dst) == 4
        assert rt.inp(rt.main_ts, "t", formal(int)) is None

    def test_space_lifecycle(self, rt):
        h = rt.create_space("jobs")
        rt.out(h, "j", 1)
        assert rt.space_size(h) == 1
        rt.destroy_space(h)
        with pytest.raises(SpaceError):
            rt.out(h, "k", 2)


class TestAtomicity:
    def test_ags_atomic_increment_under_concurrency(self, rt):
        rt.out(rt.main_ts, "c", 0)
        incr = AGS.single(
            Guard.in_(rt.main_ts, "c", formal(int, "v")),
            [Op.out(rt.main_ts, "c", ref("v") + 1)],
        )

        def worker(proc):
            for _ in range(10):
                proc.execute(incr)

        handles = [rt.eval_(worker) for _ in range(4)]
        for h in handles:
            h.join(timeout=60)
        assert rt.rd(rt.main_ts, "c", formal(int)) == ("c", 40)

    def test_disjunctive_guard_fires_available_branch(self, rt):
        rt.out(rt.main_ts, "b", 2)
        res = rt.execute(
            AGS(
                [
                    Branch(Guard.inp(rt.main_ts, "a", formal(int, "x")), []),
                    Branch(Guard.inp(rt.main_ts, "b", formal(int, "x")), []),
                ]
            )
        )
        assert res.succeeded and res["x"] == 2


class TestReplication:
    def test_crash_replica_mid_stream(self, rt):
        if not _replicated(rt):
            pytest.skip("no replicas to crash on this backend")
        rt.out(rt.main_ts, "pre", 1)
        rt.crash_replica(1)
        rt.out(rt.main_ts, "post", 2)
        assert rt.in_(rt.main_ts, "post", formal(int)) == ("post", 2)
        assert rt.converged()
        assert len(rt.fingerprints()) == 2
        assert rt.inp(rt.main_ts, FAILURE_TAG, 1) is not None

    def test_fingerprints_converge_under_concurrency(self, rt):
        if not _replicated(rt):
            pytest.skip("no replica fingerprints on this backend")

        def worker(proc, tag):
            for i in range(20):
                proc.out(proc.main_ts, tag, i)

        handles = [rt.eval_(worker, f"t{i}") for i in range(4)]
        for h in handles:
            h.join(timeout=60)
        prints = rt.fingerprints()
        assert len(prints) == 3
        assert len(set(prints)) == 1


class TestMetrics:
    def test_metrics_snapshot_populated(self, rt):
        for i in range(10):
            rt.out(rt.main_ts, "m", i)
            rt.in_(rt.main_ts, "m", i)
        snap = rt.metrics_snapshot()
        hists = snap["histograms"]
        assert hists["submit_to_order"]["count"] > 0
        assert hists["order_to_apply"]["count"] > 0
        assert hists["ags_e2e"]["count"] >= 20
        assert snap["counters"]["commands_submitted"] >= 20
