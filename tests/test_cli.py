"""Tests for ftlsh, the interactive FT-Linda shell and its subcommands."""

import io
import json

import pytest

from repro.cli import FtlShell, _parse_value, main


@pytest.fixture
def shell():
    out = io.StringIO()
    sh = FtlShell(out=out)
    return sh, out


def lines_of(out: io.StringIO) -> list[str]:
    return [l for l in out.getvalue().splitlines() if l.strip()]


class TestStatements:
    def test_out_and_in(self, shell):
        sh, out = shell
        sh.handle('out(main, "x", 1)')
        sh.handle('< in(main, "x", ?v:int) >')
        text = out.getvalue()
        assert "ok" in text
        assert "v=1" in text

    def test_probe_miss_reports_no_branch(self, shell):
        sh, out = shell
        sh.handle('< inp(main, "missing", ?v:int) >')
        assert "no branch fired" in out.getvalue()

    def test_abort_reported(self, shell):
        sh, out = shell
        sh.handle('< true => in(main, "never") >')
        assert "aborted" in out.getvalue()

    def test_compile_error_reported_not_raised(self, shell):
        sh, out = shell
        sh.handle("out(nowhere, 1)")
        assert "error:" in out.getvalue()

    def test_comments_and_blanks_ignored(self, shell):
        sh, out = shell
        sh.handle("# comment")
        sh.handle("")
        assert out.getvalue() == ""


class TestCommands:
    def test_space_create_and_dump(self, shell):
        sh, out = shell
        sh.handle(".space scratch volatile")
        sh.handle('out(scratch, "k", 42)')
        sh.handle(".dump scratch")
        assert "('k', 42)" in out.getvalue()

    def test_spaces_listing(self, shell):
        sh, out = shell
        sh.handle(".spaces")
        assert "main" in out.getvalue()

    def test_fail_deposits_failure_tuple(self, shell):
        sh, out = shell
        sh.handle(".fail 7")
        sh.handle('< in(main, "ft_failure", ?h:int) >')
        assert "h=7" in out.getvalue()

    def test_catalog(self, shell):
        sh, out = shell
        sh.handle('< rd(main, "a", ?x:int) or true >')
        sh.handle(".catalog")
        assert "(str, int)" in out.getvalue()

    def test_unknown_command(self, shell):
        sh, out = shell
        sh.handle(".frobnicate")
        assert "unknown command" in out.getvalue()

    def test_quit_stops(self, shell):
        sh, out = shell
        assert sh.running
        sh.handle(".quit")
        assert not sh.running

    def test_load_and_run_program(self, shell, tmp_path):
        sh, out = shell
        src = (
            "space bag stable shared\n"
            'stmt put(v) = out(bag, "task", v)\n'
            'stmt get = < in(bag, "task", ?t:int) >\n'
        )
        f = tmp_path / "p.ftl"
        f.write_text(src)
        sh.handle(f".load {f}")
        sh.handle(".run put v=9")
        sh.handle(".run get")
        assert "t=9" in out.getvalue()

    def test_run_without_program(self, shell):
        sh, out = shell
        sh.handle(".run anything")
        assert "no program loaded" in out.getvalue()


class TestReplLoop:
    def test_scripted_session(self):
        out = io.StringIO()
        sh = FtlShell(out=out)
        script = io.StringIO(
            'out(main, "greeting", "hi")\n'
            '< rd(main, "greeting", ?s:str) >\n'
            ".quit\n"
            'out(main, "never", 1)\n'  # after .quit: not executed
        )
        sh.repl(script, prompt=False)
        text = out.getvalue()
        assert "s='hi'" in text
        assert sh.rt.rdp(sh.rt.main_ts, "never", 1) is None

    def test_eof_terminates(self):
        sh = FtlShell(out=io.StringIO())
        sh.repl(io.StringIO(""), prompt=False)  # returns without hanging


class TestParseValue:
    def test_types(self):
        assert _parse_value("3") == 3
        assert _parse_value("3.5") == 3.5
        assert _parse_value("true") is True
        assert _parse_value("false") is False
        assert _parse_value("hello") == "hello"


class TestMetricsSubcommand:
    def test_json_flag_emits_parseable_snapshot(self, capsys):
        rc = main(
            ["metrics", "--backend", "local", "--ops", "8", "--clients", "2",
             "--json"]
        )
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["histograms"]["ags_e2e"]["count"] >= 8
        assert "clamped" in snap["histograms"]["ags_e2e"]

    def test_human_output_still_default(self, capsys):
        rc = main(["metrics", "--backend", "local", "--ops", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend=local" in out and "histograms:" in out


class TestTraceSubcommand:
    def test_local_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(
            ["trace", "--backend", "local", "--ops", "6", "--clients", "2",
             "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"submit_to_order", "apply", "e2e"} <= names
        text = capsys.readouterr().out
        assert "consistency OK" in text

    def test_threaded_trace_checks_consistency(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(
            ["trace", "--backend", "threaded", "--replicas", "3",
             "--ops", "6", "--clients", "2", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        tracks = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert {"replica-0", "replica-1", "replica-2", "sequencer"} <= tracks
        assert "consistency OK" in capsys.readouterr().out
