"""Content-partitioned sharding: router, classifier, and cross-shard rung.

The sharded deployments must be *transparent*: every observable Linda
semantic of the single-sequencer group holds unchanged (the backend
contract suite runs verbatim over the ``-s4`` variants), while this file
pins down the machinery itself — the stable partitioner, the AGS shard
classifier, cross-shard statements, per-shard read-your-writes, and
failure/recovery of individual shard groups.
"""

import subprocess
import sys

import pytest

from repro import AGS, FAILURE_TAG, Guard, Op, formal, ref
from repro.core.matching import ANY_FIRST, shard_key, shard_of
from repro.core.spaces import MAIN_TS
from repro.obs.check import check_consistency
from repro.obs.tracing import FlightRecorder
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime


# --------------------------------------------------------------------------- #
# the partitioner
# --------------------------------------------------------------------------- #


class TestPartitioner:
    def test_shard_of_is_stable_and_in_range(self):
        for n in (1, 2, 4, 7):
            for first in ("task", 0, 3.5, ("a", 1), None, True):
                k = shard_of(0, first, n)
                assert 0 <= k < n
                assert shard_of(0, first, n) == k

    def test_single_shard_short_circuits(self):
        assert shard_of(0, "anything", 1) == 0

    def test_space_id_is_part_of_the_key(self):
        # the same first field in different spaces must be free to land on
        # different shards; with 64-bit digests the keys always differ
        assert shard_key(0, "x") != shard_key(1, "x")

    def test_memo_does_not_alias_equal_but_distinct_values(self):
        # 1, 1.0 and True are == and hash-equal, but repr (hence shard)
        # distinct — the hot-path memo must not collapse them
        import hashlib

        for first in (1, 1.0, True):
            expected = int.from_bytes(
                hashlib.blake2b(
                    repr((0, first)).encode(), digest_size=8
                ).digest(),
                "big",
                signed=False,
            )
            assert shard_key(0, first) == expected  # cold (or cached) path
            assert shard_key(0, first) == expected  # memoized path

    def test_deterministic_across_hash_seeds(self):
        """The partition key must not involve builtin hash().

        Replicas run in separate OS processes with different
        PYTHONHASHSEED values; a salted hash would route the same tuple to
        different shards in different processes.  Compute a batch of shard
        assignments in subprocesses under two forced seeds and require
        identical results.
        """
        prog = (
            "from repro.core.matching import shard_of\n"
            "vals = ['task', 'result', 'worker-7', 0, 123456789, 3.25,\n"
            "        ('nested', 'tuple'), None, True]\n"
            "print([shard_of(sid, v, 8) for sid in (0, 1) for v in vals])\n"
        )
        outs = set()
        for seed in ("0", "4242"):
            res = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                check=True,
            )
            outs.add(res.stdout.strip())
        assert len(outs) == 1, f"shard routing varied with PYTHONHASHSEED: {outs}"


# --------------------------------------------------------------------------- #
# the AGS classifier
# --------------------------------------------------------------------------- #


class TestShardClassifier:
    def test_constant_first_field_pins_one_shard(self):
        ags = AGS.atomic(Op.out(MAIN_TS, "jobs", 1))
        assert ags.shard_set(4) == frozenset({shard_of(MAIN_TS.id, "jobs", 4)})

    def test_guard_and_body_same_channel_stay_single_shard(self):
        ags = AGS.single(
            Guard.in_(MAIN_TS, "c", formal(int, "v")),
            [Op.out(MAIN_TS, "c", ref("v") + 1)],
        )
        assert ags.shard_set(4) == frozenset({shard_of(MAIN_TS.id, "c", 4)})

    def test_distinct_channels_may_span_shards(self):
        ags = AGS.single(
            Guard.in_(MAIN_TS, "task", formal(int, "n")),
            [Op.out(MAIN_TS, "result", ref("n"))],
        )
        expect = {
            shard_of(MAIN_TS.id, "task", 4),
            shard_of(MAIN_TS.id, "result", 4),
        }
        assert ags.shard_set(4) == frozenset(expect)

    def test_wildcard_first_field_is_unroutable(self):
        ags = AGS.atomic(Op.inp(MAIN_TS, formal(str), formal(int)))
        assert ags.shard_set(4) is None

    def test_one_shard_total_is_always_shard_zero(self):
        ags = AGS.atomic(Op.inp(MAIN_TS, formal(str), formal(int)))
        assert ags.shard_set(1) == frozenset({0})


# --------------------------------------------------------------------------- #
# sharded runtime behaviour
# --------------------------------------------------------------------------- #


@pytest.fixture
def rt4():
    runtime = ThreadedReplicaRuntime(n_replicas=3, shards=4)
    yield runtime
    runtime.shutdown()


class TestShardedRuntime:
    def test_content_actually_spreads_across_groups(self, rt4):
        for i in range(32):
            rt4.out(rt4.main_ts, f"chan-{i}", i)
        rt4.quiesce()
        sizes = [g.space_size(rt4.main_ts) for g in rt4.shard_groups]
        assert sum(sizes) == 32
        assert sum(1 for s in sizes if s > 0) >= 2, f"no spread: {sizes}"

    def test_read_your_writes_per_shard(self, rt4):
        # rd on each channel takes that shard's read fast path; the session
        # floor must make the immediately preceding out visible
        for i in range(16):
            chan = f"ryw-{i}"
            rt4.out(rt4.main_ts, chan, i)
            assert rt4.rd(rt4.main_ts, chan, formal(int)) == (chan, i)

    def test_cross_shard_wildcard_consumes_everything(self, rt4):
        for i in range(8):
            rt4.out(rt4.main_ts, f"w{i}", i)
        seen = set()
        for _ in range(8):
            got = rt4.inp(rt4.main_ts, formal(str), formal(int))
            assert got is not None
            seen.add(got[0])
        assert seen == {f"w{i}" for i in range(8)}
        assert rt4.inp(rt4.main_ts, formal(str), formal(int)) is None
        assert rt4.space_size(rt4.main_ts) == 0

    def test_cross_shard_move_is_deterministic(self):
        """move with a wildcard template relocates every tuple, and two

        independent sharded runtimes end up with identical space contents
        (the rung replays extracted tuples in a deterministic order).
        """
        contents = []
        for _round in range(2):
            rt = ThreadedReplicaRuntime(n_replicas=3, shards=4)
            try:
                dst = rt.create_space("dst")
                for i in range(10):
                    rt.out(rt.main_ts, f"m{i % 3}", i)
                rt.move(rt.main_ts, dst, formal(str), formal(int))
                assert rt.space_size(rt.main_ts) == 0
                assert rt.space_size(dst) == 10
                got = []
                while True:
                    t = rt.inp(dst, formal(str), formal(int))
                    if t is None:
                        break
                    got.append(tuple(t))
                contents.append(sorted(got))
            finally:
                rt.shutdown()
        assert contents[0] == contents[1]

    def test_cross_shard_blocking_in_wakes_on_out(self, rt4):
        h = rt4.eval_(
            lambda proc: proc.in_(proc.main_ts, formal(str, "k"), 77)
        )
        rt4.out(rt4.main_ts, "wake-chan", 77)
        assert h.join(timeout=30) == ("wake-chan", 77)

    def test_space_ids_identical_across_shards(self, rt4):
        h1 = rt4.create_space("alpha")
        h2 = rt4.create_space("beta")
        assert h1.id != h2.id
        for g in rt4.shard_groups:
            # every shard's registry must resolve both handles
            assert g.space_size(h1) == 0
            assert g.space_size(h2) == 0
        rt4.destroy_space(h1)
        h3 = rt4.create_space("gamma")
        rt4.out(h3, "x", 1)
        assert rt4.space_size(h3) == 1


class TestShardFailure:
    def test_crash_deposits_one_failure_tuple_globally(self, rt4):
        rt4.crash_replica(1)
        assert rt4.inp(rt4.main_ts, FAILURE_TAG, 1) is not None
        # exactly one: the shard-filtered HostFailed conversion must not
        # deposit a copy per shard group
        assert rt4.inp(rt4.main_ts, FAILURE_TAG, 1) is None

    def test_shard_group_crash_and_recover_reconverges(self, rt4):
        for i in range(12):
            rt4.out(rt4.main_ts, f"pre-{i}", i)
        victim = rt4.shard_groups[2]
        victim.crash_replica(1, notify=False)
        for i in range(12):
            rt4.out(rt4.main_ts, f"mid-{i}", i)
        # replica 1 is down in shard2 only: combined fingerprints skip it
        assert len(rt4.fingerprints()) == 2
        assert rt4.converged()
        victim.recover_replica(1)
        for i in range(12):
            rt4.out(rt4.main_ts, f"post-{i}", i)
        prints = rt4.fingerprints()
        assert len(prints) == 3
        assert len(set(prints)) == 1

    def test_chaos_monkey_targets_named_and_random_shards(self, rt4):
        from repro.chaos import ChaosMonkey

        monkey = ChaosMonkey(rt4, seed=7, shard="shard3")
        assert monkey.group is rt4.shard_groups[3]
        monkey = ChaosMonkey(rt4, seed=7, shard=1)
        assert monkey.group is rt4.shard_groups[1]
        monkey = ChaosMonkey(rt4, seed=7, shard="random")
        assert monkey.group in rt4.shard_groups
        with pytest.raises(ValueError):
            ChaosMonkey(rt4, shard="shard99")


class TestShardedTraces:
    def test_consistency_checker_partitions_by_shard(self):
        tracer = FlightRecorder()
        rt = ThreadedReplicaRuntime(n_replicas=3, shards=2, tracer=tracer)
        try:
            for i in range(24):
                rt.out(rt.main_ts, f"tr-{i}", i)
                rt.in_(rt.main_ts, f"tr-{i}", i)
            rt.quiesce()
        finally:
            rt.shutdown()
        report = check_consistency(tracer)
        assert report.ok, report.summary()
        shards = {t.split("/")[0] for t in report.streams if "/" in t}
        assert shards == {"shard0", "shard1"}
        assert report.compared_slots > 0


class TestShardedMultiproc:
    def test_out_in_and_convergence_across_process_shards(self):
        with MultiprocessRuntime(n_replicas=2, shards=2) as rt:
            for i in range(8):
                rt.out(rt.main_ts, f"mp-{i}", i)
            for i in range(8):
                assert rt.in_(rt.main_ts, f"mp-{i}", formal(int)) == (
                    f"mp-{i}",
                    i,
                )
            assert rt.converged()
