"""Continuous profiling, stage attribution, and the perf-regression harness.

Covers `repro.obs.profile` (deterministically, via the injectable frame
and thread sources), `repro.obs.stages` (budget math on synthetic
metrics), the profiler's integration with both parallel backends
(role-named folded stacks, cross-process merge, crash tolerance, the
structural zero-cost claim for the off path), and the
`repro.bench.runner` schema + comparator the `cli bench` subcommand is
built on.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.bench.runner import (
    DEFAULT_TOLERANCE,
    baseline_path,
    compare,
    load_result,
    make_result,
    metric,
    render_comparison,
    save_result,
    validate_result,
)
from repro.obs.profile import (
    DEFAULT_HZ,
    SamplingProfiler,
    merge_folded,
    register_thread,
    registered_roles,
    role_summary,
    thread_role,
    to_collapsed,
    to_speedscope,
)
from repro.obs.stages import (
    BUDGET_STAGES,
    disable_stage_attribution,
    enable_stage_attribution,
    render_budget,
    stage_budget,
    stages_enabled,
)
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime


# --------------------------------------------------------------------------- #
# deterministic frame/thread fixtures
# --------------------------------------------------------------------------- #


def _frame(mod: str, func: str, back=None):
    """A minimal stand-in for an interpreter frame."""
    return SimpleNamespace(
        f_code=SimpleNamespace(co_name=func),
        f_globals={"__name__": mod},
        f_back=back,
    )


def _chain(*labels: tuple[str, str]):
    """Build a frame chain outermost-first; return the leaf frame."""
    frame = None
    for mod, func in labels:
        frame = _frame(mod, func, back=frame)
    return frame


def _make_sampler(frames_by_ident, roles=None, hz: float = 1000.0):
    """A SamplingProfiler over a fixed, injected view of the world."""
    for ident, role in (roles or {}).items():
        register_thread(role, ident=ident)
    threads = [
        SimpleNamespace(ident=i, name=f"fake-{i}") for i in frames_by_ident
    ]
    return SamplingProfiler(
        hz=hz, frames=lambda: dict(frames_by_ident), threads=lambda: list(threads)
    )


class TestFoldingDeterministic:
    def test_stack_folded_under_role_outermost_first(self):
        leaf = _chain(("mod.outer", "run"), ("mod.inner", "step"))
        sampler = _make_sampler({101: leaf}, roles={101: "sequencer"})
        sampler.sample_once()
        folded = sampler.folded()
        assert folded == {"sequencer;mod.outer:run;mod.inner:step": 1}

    def test_unregistered_thread_falls_back_to_thread_name(self):
        leaf = _chain(("m", "f"))
        sampler = _make_sampler({7: leaf})
        sampler.sample_once()
        assert list(sampler.folded()) == ["fake-7;m:f"]

    def test_repeated_samples_accumulate(self):
        leaf = _chain(("m", "f"))
        sampler = _make_sampler({5: leaf}, roles={5: "replica-0"})
        for _ in range(4):
            sampler.sample_once()
        assert sampler.folded() == {"replica-0;m:f": 4}
        assert sampler.samples == 4

    def test_skip_ident_excludes_the_sampler_itself(self):
        frames = {1: _chain(("a", "f")), 2: _chain(("b", "g"))}
        sampler = _make_sampler(frames, roles={1: "r1", 2: "r2"})
        assert sampler.sample_once(skip_ident=2) == 1
        assert list(sampler.folded()) == ["r1;a:f"]

    def test_role_reregistration_overwrites(self):
        register_thread("old-role", ident=424242)
        register_thread("new-role", ident=424242)
        assert thread_role(424242) == "new-role"


class TestSamplerLifecycle:
    def test_start_stop_idempotent(self):
        sampler = _make_sampler({1: _chain(("m", "f"))}, roles={1: "x"})
        assert not sampler.running
        sampler.start()
        first_thread = sampler._thread
        sampler.start()  # second start is a no-op
        assert sampler._thread is first_thread
        deadline = time.monotonic() + 5.0
        while sampler.samples == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        folded = sampler.stop()
        assert not sampler.running
        assert folded and folded == sampler.stop()  # stop again: same answer

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_ingest_merges_remote_stacks(self):
        sampler = _make_sampler({}, roles={})
        sampler.ingest({"replica-1;m:f": 3})
        sampler.ingest({"replica-1;m:f": 2, "replica-2;m:g": 1})
        assert sampler.folded() == {"replica-1;m:f": 5, "replica-2;m:g": 1}


class TestMergeAndExporters:
    def test_merge_folded_sums_counts(self):
        merged = merge_folded({"a;x": 1, "b;y": 2}, {"a;x": 3}, {"c;z": 4})
        assert merged == {"a;x": 4, "b;y": 2, "c;z": 4}

    def test_role_summary_orders_hottest_first(self):
        rows = role_summary({"seq;a": 6, "seq;b": 4, "rep;c": 10})
        assert [(r[0], r[1]) for r in rows] == [("rep", 10), ("seq", 10)] or [
            (r[0], r[1]) for r in rows
        ] == [("seq", 10), ("rep", 10)]
        assert sum(r[2] for r in rows) == pytest.approx(1.0)

    def test_to_collapsed_round_trips_counts(self):
        text = to_collapsed({"role;m:f": 2, "role;m:g": 1})
        lines = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in text.strip().splitlines()
        )
        assert lines == {"role;m:f": 2, "role;m:g": 1}

    def test_to_speedscope_is_schema_shaped(self):
        doc = to_speedscope({"seq;m:f;m:g": 3, "rep;m:h": 1})
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert prof["endValue"] == 4
        assert len(prof["samples"]) == len(prof["weights"]) == 2
        frames = [f["name"] for f in doc["shared"]["frames"]]
        # every index in every sample resolves to a frame
        for sample in prof["samples"]:
            for idx in sample:
                assert 0 <= idx < len(frames)
        assert "seq" in frames and "rep" in frames


# --------------------------------------------------------------------------- #
# backend integration
# --------------------------------------------------------------------------- #


def _churn(rt, n: int = 30) -> None:
    for k in range(n):
        rt.out(rt.main_ts, "prof-test", k)
        rt.in_(rt.main_ts, "prof-test", k)


class TestBackendProfiling:
    def test_threaded_roles_attributed(self):
        rt = ThreadedReplicaRuntime(n_replicas=2)
        try:
            rt.start_profiling(500.0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _churn(rt, 10)
                roles = {s.split(";", 1)[0] for s in rt.stop_profiling()}
                rt.start_profiling(500.0)
                if {"sequencer", "replica-0", "replica-1"} <= roles:
                    break
            folded = rt.stop_profiling()
        finally:
            rt.shutdown()
        roles = {s.split(";", 1)[0] for s in folded} | roles
        assert "sequencer" in roles
        assert "replica-0" in roles and "replica-1" in roles

    def test_multiproc_cross_process_merge(self):
        rt = MultiprocessRuntime(n_replicas=2)
        try:
            rt.start_profiling(500.0)
            deadline = time.monotonic() + 20.0
            roles: set[str] = set()
            while time.monotonic() < deadline:
                _churn(rt, 10)
                time.sleep(0.05)
                roles |= {s.split(";", 1)[0] for s in rt.stop_profiling()}
                if {"replica-0", "replica-1", "sequencer"} <= roles:
                    break
                rt.start_profiling(500.0)
        finally:
            rt.shutdown()
        # replica roles can only come from the child processes' samplers,
        # so seeing them proves the folded stacks crossed the transport
        assert "replica-0" in roles and "replica-1" in roles
        assert "sequencer" in roles

    def test_multiproc_crash_during_sampling_keeps_survivors(self):
        rt = MultiprocessRuntime(n_replicas=3)
        try:
            rt.start_profiling(500.0)
            _churn(rt, 10)
            rt.crash_replica(2)
            _churn(rt, 10)
            time.sleep(0.05)
            folded = rt.stop_profiling()  # must not raise or wedge
            roles = {s.split(";", 1)[0] for s in folded}
            assert "replica-0" in roles or "replica-1" in roles
        finally:
            rt.shutdown()

    def test_off_path_is_structurally_zero(self):
        """No profiling => no sampler thread, no profiler object, and the
        only residue of the feature is the role registry dict."""
        rt = ThreadedReplicaRuntime(n_replicas=2)
        try:
            _churn(rt, 10)
            names = {t.name for t in threading.enumerate()}
            assert "profile-sampler" not in names
            for g in rt.sharded.groups:
                assert g._profiler is None
            assert rt.sharded._profiler is None
            # the registrations themselves are plain dict entries
            assert any(
                role.endswith("sequencer") for role in registered_roles().values()
            )
        finally:
            rt.shutdown()

    def test_start_stop_profiling_idempotent_on_runtime(self):
        rt = ThreadedReplicaRuntime(n_replicas=2)
        try:
            rt.start_profiling(500.0)
            rt.start_profiling(500.0)  # no-op, not a second sampler
            samplers = [
                t for t in threading.enumerate() if t.name == "profile-sampler"
            ]
            assert len(samplers) == 1
            rt.stop_profiling()
            assert rt.stop_profiling() == {}  # second stop: empty, no error
        finally:
            rt.shutdown()


# --------------------------------------------------------------------------- #
# stage attribution
# --------------------------------------------------------------------------- #


@pytest.fixture
def stages():
    was = stages_enabled()
    enable_stage_attribution()
    yield
    if not was:
        disable_stage_attribution()


def _hist(n, mean, p95=None):
    return {"count": n, "mean": mean, "p95": mean if p95 is None else p95}


class TestStageBudget:
    def test_budget_rows_cover_the_pipeline(self):
        metrics = {
            "histograms": {
                "submit_to_order": _hist(10, 100e-6),
                "stage_broadcast": _hist(10, 20e-6),
                "stage_replica_queue": _hist(10, 50e-6),
                "stage_apply": _hist(10, 30e-6),
                "stage_reply": _hist(10, 40e-6),
                "ags_e2e": _hist(10, 300e-6),
            }
        }
        rows = stage_budget(metrics)
        stages_seen = [r["stage"] for r in rows]
        for label, _metric in BUDGET_STAGES:
            assert label in stages_seen
        assert stages_seen[-1] == "end-to-end"
        e2e = rows[-1]
        assert e2e["mean_s"] == pytest.approx(300e-6)
        unattributed = [r for r in rows if r["stage"] == "unattributed"][0]
        assert unattributed["mean_s"] == pytest.approx(60e-6)

    def test_budget_empty_without_stage_samples(self):
        assert render_budget({"histograms": {}}) == ""
        assert render_budget({}) == ""

    def test_render_budget_panel_shape(self):
        metrics = {
            "histograms": {
                "submit_to_order": _hist(5, 10e-6),
                "stage_broadcast": _hist(5, 5e-6),
                "ags_e2e": _hist(5, 40e-6),
            }
        }
        panel = render_budget(metrics)
        assert "WHERE DOES A MILLISECOND GO" in panel
        assert "broadcast" in panel

    def test_stage_histograms_recorded_end_to_end(self, stages):
        rt = ThreadedReplicaRuntime(n_replicas=2)
        try:
            _churn(rt, 20)
            rt.quiesce()
            hists = rt.metrics_snapshot()["histograms"]
            for name in (
                "stage_broadcast",
                "stage_replica_queue",
                "stage_apply",
                "stage_reply",
            ):
                assert hists[name]["count"] > 0, name
            assert render_budget(rt.metrics_snapshot())
        finally:
            rt.shutdown()

    def test_stage_histograms_absent_when_disabled(self):
        assert not stages_enabled()
        rt = ThreadedReplicaRuntime(n_replicas=2)
        try:
            _churn(rt, 10)
            hists = rt.metrics_snapshot()["histograms"]
            assert "stage_broadcast" not in hists
        finally:
            rt.shutdown()

    def test_queue_depth_gauges_in_snapshot(self):
        rt = ThreadedReplicaRuntime(n_replicas=2)
        try:
            _churn(rt, 10)
            gauges = rt.metrics_snapshot()["gauges"]
            for name in (
                "sequencer_inbox_depth",
                "read_lane_depth",
                "replica_inbox_max_depth",
            ):
                assert name in gauges
        finally:
            rt.shutdown()


# --------------------------------------------------------------------------- #
# the perf-regression harness
# --------------------------------------------------------------------------- #


class TestBenchRunner:
    def test_make_result_schema_valid(self):
        payload = make_result(
            "unit", {"tps": metric(100.0, "higher", unit="ops/s")},
            config={"clients": 2}, quick=True,
        )
        assert validate_result(payload) == []
        assert payload["benchmark"] == "unit"
        assert payload["quick"] is True
        assert payload["metrics"]["tps"]["value"] == 100.0

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            metric(1.0, "sideways")
        with pytest.raises(ValueError):
            metric(1.0, "higher", tolerance=-0.1)

    def test_validate_rejects_malformed(self):
        assert validate_result("nope")
        assert validate_result({"schema": 99, "benchmark": "x"})
        bad = make_result("x", {"m": metric(1.0)})
        bad["metrics"]["m"]["value"] = "fast"
        assert any("non-numeric" in e for e in validate_result(bad))

    def test_compare_within_tolerance_ok(self):
        base = make_result("b", {"tps": metric(100.0)})
        cur = make_result("b", {"tps": metric(100.0 * (1 - DEFAULT_TOLERANCE / 2))})
        rows = compare(cur, base)
        assert rows[0]["verdict"] == "ok"

    def test_compare_flags_regression_by_direction(self):
        base = make_result(
            "b", {"tps": metric(100.0, "higher"), "lat": metric(10.0, "lower")}
        )
        cur = make_result(
            "b", {"tps": metric(50.0, "higher"), "lat": metric(30.0, "lower")}
        )
        verdicts = {r["metric"]: r["verdict"] for r in compare(cur, base)}
        assert verdicts == {"tps": "regressed", "lat": "regressed"}
        # and the same deltas in the *good* direction are improvements
        verdicts = {r["metric"]: r["verdict"] for r in compare(base, cur)}
        assert verdicts == {"tps": "improved", "lat": "improved"}

    def test_compare_per_metric_tolerance_overrides_default(self):
        base = make_result("b", {"m": metric(100.0, tolerance=0.5)})
        cur = make_result("b", {"m": metric(60.0, tolerance=0.5)})
        assert compare(cur, base)[0]["verdict"] == "ok"  # -40% < 50% tol

    def test_compare_new_and_missing_metrics(self):
        base = make_result("b", {"gone": metric(1.0)})
        cur = make_result("b", {"fresh": metric(2.0)})
        verdicts = {r["metric"]: r["verdict"] for r in compare(cur, base)}
        assert verdicts == {"gone": "missing", "fresh": "new"}

    def test_render_comparison_marks_regressions(self):
        base = make_result("b", {"tps": metric(100.0)})
        cur = make_result("b", {"tps": metric(10.0)})
        text = render_comparison("b", compare(cur, base))
        assert "REGRESSION" in text

    def test_save_load_round_trip(self, tmp_path):
        payload = make_result("roundtrip", {"m": metric(1.5)})
        path = save_result(payload, str(tmp_path / "BENCH_roundtrip.json"))
        assert load_result(path) == payload

    def test_baseline_path_shape(self, tmp_path):
        assert baseline_path("x", str(tmp_path)).endswith("BENCH_x.json")


class TestBenchCli:
    """`cli bench compare` exit codes, driven through real files."""

    def _write(self, directory, name, value):
        payload = make_result(name, {"tps": metric(value)})
        save_result(payload, baseline_path(name, str(directory)))

    def test_compare_ok_exit_zero(self, tmp_path):
        from repro.cli import main

        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        self._write(cur, "batching", 100.0)
        self._write(base, "batching", 100.0)
        assert main([
            "bench", "compare", "batching",
            "--current-dir", str(cur), "--baseline-dir", str(base),
        ]) == 0

    def test_compare_regression_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        self._write(cur, "batching", 10.0)
        self._write(base, "batching", 100.0)
        assert main([
            "bench", "compare", "batching",
            "--current-dir", str(cur), "--baseline-dir", str(base),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_regression_allowed_exit_zero(self, tmp_path):
        from repro.cli import main

        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        self._write(cur, "batching", 10.0)
        self._write(base, "batching", 100.0)
        assert main([
            "bench", "compare", "batching", "--allow-regressions",
            "--current-dir", str(cur), "--baseline-dir", str(base),
        ]) == 0

    def test_compare_missing_baseline_is_new_not_fatal(self, tmp_path):
        from repro.cli import main

        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        self._write(cur, "batching", 100.0)
        assert main([
            "bench", "compare", "batching",
            "--current-dir", str(cur), "--baseline-dir", str(base),
        ]) == 0

    def test_compare_missing_current_exit_two(self, tmp_path):
        from repro.cli import main

        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        self._write(base, "batching", 100.0)
        assert main([
            "bench", "compare", "batching",
            "--current-dir", str(cur), "--baseline-dir", str(base),
        ]) == 2

    def test_compare_schema_violation_exit_two(self, tmp_path):
        import json

        from repro.cli import main

        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        with open(baseline_path("batching", str(cur)), "w") as f:
            json.dump({"schema": 99}, f)
        self._write(base, "batching", 100.0)
        assert main([
            "bench", "compare", "batching",
            "--current-dir", str(cur), "--baseline-dir", str(base),
        ]) == 2

    def test_compare_vanished_metric_exit_two(self, tmp_path):
        from repro.cli import main

        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        self._write(cur, "batching", 100.0)
        payload = make_result(
            "batching", {"tps": metric(100.0), "extra": metric(5.0)}
        )
        save_result(payload, baseline_path("batching", str(base)))
        assert main([
            "bench", "compare", "batching",
            "--current-dir", str(cur), "--baseline-dir", str(base),
        ]) == 2

    def test_unknown_benchmark_rejected(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench", "compare", "not-a-bench"])
