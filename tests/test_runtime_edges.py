"""Edge cases of the runtime API and AGS execution semantics."""

import pytest

from repro import (
    AGS,
    AGSResult,
    Branch,
    Guard,
    LocalRuntime,
    Op,
    Resilience,
    Scope,
    ScopeError,
    SpaceError,
    formal,
    ref,
    register_function,
)
from repro.core.ags import Const, Expr
from repro.core.statemachine import CancelRequest, ExecuteAGS, TSStateMachine
from repro.core.spaces import MAIN_TS


@pytest.fixture
def rt():
    return LocalRuntime()


class TestErrorSurfacing:
    def test_wrapper_raises_scope_error(self, rt):
        h = rt.create_space("p", Resilience.STABLE, Scope.PRIVATE, owner=1)
        with pytest.raises(ScopeError):
            rt.view(2).out(h, "x", 1)

    def test_execute_returns_aborted_without_raising(self, rt):
        res = rt.execute(AGS.single(Guard.true(), [Op.in_(MAIN_TS, "missing")]))
        assert res.aborted
        assert not res.succeeded

    def test_destroyed_space_aborts(self, rt):
        h = rt.create_space("tmp")
        rt.destroy_space(h)
        res = rt.execute(AGS.atomic(Op.out(h, "x", 1)))
        assert res.aborted
        assert isinstance(res.error, SpaceError)
        with pytest.raises(SpaceError):
            rt.out(h, "x", 1)

    def test_out_invalid_value_aborts_cleanly(self, rt):
        register_function("edges_make_list", lambda: (1, 2))
        # valid tuple result is fine; now a function producing a list field
        register_function("edges_make_bad", lambda: [1, 2])
        res = rt.execute(AGS.atomic(
            Op.out(MAIN_TS, "v", Expr("edges_make_bad", ()))
        ))
        assert res.aborted
        assert rt.space_size(MAIN_TS) == 0


class TestDynamicSpaceHandles:
    def test_ts_handle_bound_by_guard_used_in_body(self, rt):
        aux = rt.create_space("aux")
        rt.out(MAIN_TS, "where", aux)
        res = rt.execute(AGS.single(
            Guard.rd(MAIN_TS, "where", formal(object, "dest")),
            [Op.out(ref("dest"), "delivered", 1)],
        ))
        assert res.succeeded
        assert rt.space_size(aux) == 1

    def test_move_with_dynamic_destination(self, rt):
        aux = rt.create_space("aux")
        rt.out(MAIN_TS, "target", aux)
        rt.out(MAIN_TS, "item", 1)
        rt.out(MAIN_TS, "item", 2)
        res = rt.execute(AGS.single(
            Guard.in_(MAIN_TS, "target", formal(object, "dst")),
            [Op.move(MAIN_TS, ref("dst"), "item", formal(int))],
        ))
        assert res.succeeded
        assert rt.space_size(aux) == 2

    def test_non_handle_in_ts_position_aborts(self, rt):
        rt.out(MAIN_TS, "where", 42)  # an int, not a handle
        res = rt.execute(AGS.single(
            Guard.rd(MAIN_TS, "where", formal(int, "dest")),
            [Op.out(ref("dest"), "boom", 1)],
        ))
        assert res.aborted


class TestRegisteredFunctions:
    def test_custom_function_in_ags(self, rt):
        register_function("edges_clamp", lambda v, lo, hi: max(lo, min(hi, v)))
        rt.out(MAIN_TS, "v", 150)
        rt.execute(AGS.single(
            Guard.in_(MAIN_TS, "v", formal(int, "x")),
            [Op.out(MAIN_TS, "v", Expr("edges_clamp", (ref("x"), Const(0), Const(100))))],
        ))
        assert rt.rd(MAIN_TS, "v", formal(int)) == ("v", 100)

    def test_builtin_tuple_and_nth(self, rt):
        rt.execute(AGS.atomic(
            Op.out(MAIN_TS, "pair", Expr("tuple", (Const(1), Const(2))))
        ))
        t = rt.in_(MAIN_TS, "pair", formal(tuple))
        assert t[1] == (1, 2)
        rt.execute(AGS.atomic(
            Op.out(MAIN_TS, "first", Expr("nth", (Const((7, 8)), Const(0))))
        ))
        assert rt.in_(MAIN_TS, "first", formal(int)) == ("first", 7)


class TestAGSResultAPI:
    def test_getitem_and_get(self):
        r = AGSResult(0, {"x": 5})
        assert r["x"] == 5
        assert r.get("x") == 5
        assert r.get("y", "dflt") == "dflt"
        with pytest.raises(KeyError):
            r["y"]

    def test_reprs(self):
        assert "no branch" in repr(AGSResult(None))
        assert "branch=1" in repr(AGSResult(1, {"a": 2}))


class TestCancellation:
    def test_cancel_request_removes_blocked(self):
        sm = TSStateMachine()
        sm.apply(ExecuteAGS(1, 0, 0, AGS.single(Guard.in_(MAIN_TS, "never"))))
        assert len(sm.blocked) == 1
        comps = sm.apply(CancelRequest(2, 0, 1))
        assert len(sm.blocked) == 0
        assert comps[0].request_id == 1
        assert comps[0].result.error == "cancelled"

    def test_cancel_missing_is_noop(self):
        sm = TSStateMachine()
        assert sm.apply(CancelRequest(1, 0, 999)) == []

    def test_cancel_is_deterministic_across_replicas(self):
        def run():
            sm = TSStateMachine()
            sm.apply(ExecuteAGS(1, 0, 0, AGS.single(Guard.in_(MAIN_TS, "x"))))
            sm.apply(CancelRequest(2, 0, 1))
            sm.apply(ExecuteAGS(3, 0, 0, AGS.atomic(Op.out(MAIN_TS, "x"))))
            return sm.fingerprint(), len(sm.registry.store(MAIN_TS))

        assert run() == run()
        # the cancelled statement must not have taken the tuple
        _fp, size = run()
        assert size == 1


class TestProcessViewSurface:
    def test_view_exposes_all_ops(self, rt):
        v = rt.view(7)
        v.out(MAIN_TS, "a", 1)
        assert v.rd(MAIN_TS, "a", formal(int)) == ("a", 1)
        assert v.rdp(MAIN_TS, "a", formal(int)) is not None
        assert v.inp(MAIN_TS, "a", formal(int)) == ("a", 1)
        h = v.create_space("mine", scope=Scope.PRIVATE)
        v.out(h, "secret", 1)
        v.move(MAIN_TS, MAIN_TS, "nothing", formal())
        v.copy(MAIN_TS, MAIN_TS, "nothing", formal())
        v.destroy_space(h)
        assert v.main_ts == MAIN_TS
        assert v.process_id == 7

    def test_eval_with_explicit_process_id(self, rt):
        h = rt.eval_(lambda proc: proc.process_id, process_id=1234)
        assert h.join(timeout=10) == 1234

    def test_nested_eval(self, rt):
        def parent(proc):
            child = proc.eval_(lambda p: "grandchild-result")
            return child.join(timeout=10)

        assert rt.eval_(parent).join(timeout=20) == "grandchild-result"


class TestDisjunctionSemantics:
    def test_branch_priority_is_stable_under_blocking(self, rt):
        # both branches become satisfiable simultaneously by one out:
        # the earlier branch must win
        results = []

        def waiter(proc):
            res = proc.execute(AGS([
                Branch(Guard.in_(MAIN_TS, "x", formal(int, "a")), []),
                Branch(Guard.in_(MAIN_TS, "x", formal(int, "b")), []),
            ]))
            results.append(res.fired)

        h = rt.eval_(waiter)
        rt.out(MAIN_TS, "x", 1)
        h.join(timeout=10)
        assert results == [0]

    def test_three_way_disjunction(self, rt):
        rt.out(MAIN_TS, "c", 3)
        res = rt.execute(AGS([
            Branch(Guard.in_(MAIN_TS, "a", formal(int)), []),
            Branch(Guard.in_(MAIN_TS, "b", formal(int)), []),
            Branch(Guard.in_(MAIN_TS, "c", formal(int, "v")), []),
        ]))
        assert res.fired == 2
        assert res["v"] == 3
