"""Property-based tests for the 2PC baseline: it must be *correct*.

E4's comparison is only fair if the baseline actually works: whatever the
interleaving of conflicting coordinators, every update commits exactly
once, replicas converge, and no locks leak.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines import TwoPhaseCluster, TwoPhaseConfig
from repro.core.tuples import Pattern, formal


@st.composite
def scenario(draw):
    n_hosts = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    # each update: (coordinator host, which counter it increments)
    updates = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_hosts - 1),
                st.sampled_from(["c1", "c2"]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return n_hosts, seed, updates


@given(scenario())
@settings(max_examples=40, deadline=None)
def test_all_updates_commit_exactly_once(s):
    n_hosts, seed, updates = s
    cluster = TwoPhaseCluster(TwoPhaseConfig(n_hosts=n_hosts, seed=seed))
    cluster.seed_tuple("c1", 0)
    cluster.seed_tuple("c2", 0)

    def make_puts(name):
        def puts(bindings):
            return [(name, bindings[0]["v"] + 1)]

        return puts

    events = []
    for host, name in updates:
        events.append(
            cluster.update(host, [Pattern((name, formal(int, "v")))],
                           make_puts(name))
        )
    for ev in events:
        cluster.sim.run_until_event(ev, limit=600_000_000)
    cluster.sim.run(until=cluster.sim.now + 300_000)

    expected = {
        "c1": sum(1 for _h, n in updates if n == "c1"),
        "c2": sum(1 for _h, n in updates if n == "c2"),
    }
    for name, count in expected.items():
        m = cluster.store_of(0).find(
            Pattern((name, formal(int, "v"))), remove=False
        )
        assert m is not None
        assert m.binding["v"] == count, (name, updates)
    assert cluster.converged()
    assert cluster.stats.commits == len(updates)
    for replica in cluster.replicas:
        assert replica.locks == {}
        assert replica.granted == {}
