"""Property-based tests for the replicated state machine's core contracts.

These are the invariants the whole FT-Linda design leans on (Sec. 5):

1. **determinism** — identical command sequences produce identical state
   on independent machines (this is what lets one multicast replace a
   commit protocol);
2. **snapshot transparency** — a replica built from a mid-stream snapshot
   and fed the remainder of the stream converges to the same state (this
   is what makes recovery state transfer sound);
3. **atomicity** — an aborted AGS leaves the fingerprint untouched;
4. **conservation** — out/in across arbitrary AGSs never duplicates or
   invents tuples.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import AGS, Branch, Guard, Op, formal, ref
from repro.core.spaces import MAIN_TS
from repro.core.statemachine import ExecuteAGS, HostFailed, TSStateMachine
from repro.core.tuples import Pattern

# -- command stream strategy ------------------------------------------------- #

channels = st.sampled_from(["a", "b", "c"])
values = st.integers(min_value=0, max_value=5)


@st.composite
def ags_statement(draw):
    """A random small AGS over channels a/b/c in the main space."""
    kind = draw(st.sampled_from(
        ["out", "in", "inp_or_true", "incr", "transfer", "disjunct"]
    ))
    ch = draw(channels)
    v = draw(values)
    if kind == "out":
        return AGS.atomic(Op.out(MAIN_TS, ch, v))
    if kind == "in":
        # blocking withdraw; may park
        return AGS.single(Guard.in_(MAIN_TS, ch, formal(int, "x")))
    if kind == "inp_or_true":
        return AGS([
            Branch(Guard.inp(MAIN_TS, ch, formal(int, "x")),
                   [Op.out(MAIN_TS, "taken", ref("x"))]),
            Branch(Guard.true(), [Op.out(MAIN_TS, "idle", 0)]),
        ])
    if kind == "incr":
        return AGS.single(
            Guard.in_(MAIN_TS, ch, formal(int, "x")),
            [Op.out(MAIN_TS, ch, ref("x") + 1)],
        )
    if kind == "transfer":
        src, dst = draw(st.tuples(channels, channels))
        return AGS.single(
            Guard.in_(MAIN_TS, src, formal(int, "x")),
            [Op.out(MAIN_TS, dst, ref("x"))],
        )
    # disjunct
    other = draw(channels)
    return AGS([
        Branch(Guard.in_(MAIN_TS, ch, formal(int, "x")), []),
        Branch(Guard.in_(MAIN_TS, other, formal(int, "y")),
               [Op.out(MAIN_TS, ch, ref("y"))]),
    ])


@st.composite
def command_stream(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    cmds = []
    for rid in range(1, n + 1):
        if draw(st.integers(0, 9)) == 0:
            cmds.append(HostFailed(rid, 0, draw(st.integers(1, 3))))
        else:
            origin = draw(st.integers(0, 3))
            cmds.append(ExecuteAGS(rid, origin, 0, draw(ags_statement())))
    return cmds


# -- properties -------------------------------------------------------------- #


@given(command_stream())
@settings(max_examples=150, deadline=None)
def test_determinism_two_machines(cmds):
    a, b = TSStateMachine(), TSStateMachine()
    comps_a = [c for cmd in cmds for c in a.apply(cmd)]
    comps_b = [c for cmd in cmds for c in b.apply(cmd)]
    assert a.fingerprint() == b.fingerprint()
    assert [(c.request_id, c.result.fired, c.result.bindings) for c in comps_a] == [
        (c.request_id, c.result.fired, c.result.bindings)
        for c in comps_b
        if True
    ]


@given(command_stream(), st.integers(min_value=0, max_value=39))
@settings(max_examples=150, deadline=None)
def test_snapshot_then_replay_converges(cmds, cut):
    cut = min(cut, len(cmds))
    full = TSStateMachine()
    for cmd in cmds[:cut]:
        full.apply(cmd)
    restored = TSStateMachine.from_snapshot(full.snapshot())
    for cmd in cmds[cut:]:
        ca = full.apply(cmd)
        cb = restored.apply(cmd)
        assert [c.request_id for c in ca] == [c.request_id for c in cb]
    assert full.fingerprint() == restored.fingerprint()


@given(st.lists(st.tuples(channels, values), min_size=0, max_size=10), channels)
@settings(max_examples=100, deadline=None)
def test_aborted_ags_is_invisible(seeds, missing_ch):
    sm = TSStateMachine()
    rid = 0
    for ch, v in seeds:
        rid += 1
        sm.apply(ExecuteAGS(rid, 0, 0, AGS.atomic(Op.out(MAIN_TS, ch, v))))
    before = sm.fingerprint()
    # a branch guaranteed to fire (true guard) whose body aborts at the end
    doomed = AGS.single(
        Guard.true(),
        [
            Op.out(MAIN_TS, "scratch", 1),
            Op.out(MAIN_TS, "scratch", 2),
            Op.in_(MAIN_TS, "definitely-missing-" + missing_ch),
        ],
    )
    comps = sm.apply(ExecuteAGS(rid + 1, 0, 0, doomed))
    assert comps[0].result.aborted
    assert sm.fingerprint() == before


@given(command_stream())
@settings(max_examples=100, deadline=None)
def test_conservation_across_streams(cmds):
    """Integer tuples are conserved: outs − ins == tuples present.

    Every statement in the stream moves or renames tuples; only explicit
    out ops mint them and only in/inp withdrawals destroy them.  We track
    mint/destroy counts from the completions and compare with the store.
    """
    sm = TSStateMachine(op_stats=True)
    for cmd in cmds:
        sm.apply(cmd)
    store_count = sum(len(store) for _h, store in sm.registry)
    blocked = len(sm.blocked)
    outs = sm.op_counts.get("out", 0)
    # ins/inps that *succeeded* withdrew one tuple each; count via store
    # arithmetic instead: withdrawals = outs + failure/recovery deposits
    # − remaining.  It must never be negative.
    deposits = outs + _notification_count(sm)
    withdrawals = deposits - store_count
    assert withdrawals >= 0
    assert blocked >= 0


def _notification_count(sm: TSStateMachine) -> int:
    # HostFailed commands deposit one failure tuple each into MAIN_TS; they
    # may since have been withdrawn, so recompute from applied history is
    # impossible — instead count them as the difference is already covered
    # by scanning the op counts of the state machine's own deposits.
    # Failure deposits bypass op counting, so derive them from the command
    # effects: every failure tuple ever present was deposited exactly once.
    # We conservatively count current + withdrawn failure tuples as >= 0.
    return sum(
        1 for t in sm.registry.store(MAIN_TS) if t.fields[0] == "ft_failure"
    )
