"""Property-based tests: the TupleStore against a reference model.

The model is the stupidest possible correct implementation: a list of
(seqno, fields) pairs with linear scans.  Hypothesis drives both with the
same operation sequences; any divergence is an indexing bug.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Pattern, TupleStore, formal
from repro.core.tuples import LindaTuple

# -- strategies -------------------------------------------------------------- #

field_values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["a", "b", "c"]),
    st.booleans(),
)

tuples_ = st.lists(field_values, min_size=1, max_size=3).map(tuple)


def pattern_for(fields: tuple, typed: bool) -> Pattern:
    """A pattern matching *fields* (typed or untyped formals)."""
    pat = []
    for i, v in enumerate(fields):
        if i % 2 == 0:
            pat.append(v)  # actual
        else:
            pat.append(formal(type(v) if typed else object))
    return Pattern(tuple(pat))


class Model:
    """Reference implementation: linear scan, oldest first."""

    def __init__(self) -> None:
        self.items: list[tuple[int, tuple]] = []
        self.next_seq = 0

    def add(self, fields: tuple) -> None:
        self.items.append((self.next_seq, fields))
        self.next_seq += 1

    def find(self, pattern: Pattern, remove: bool):
        for i, (seq, fields) in enumerate(self.items):
            if pattern.matches(LindaTuple(fields)):
                if remove:
                    del self.items[i]
                return fields
        return None

    def find_all(self, pattern: Pattern, remove: bool):
        hits = [
            (seq, f) for seq, f in self.items if pattern.matches(LindaTuple(f))
        ]
        if remove:
            keep = {seq for seq, _f in hits}
            self.items = [(s, f) for s, f in self.items if s not in keep]
        return [f for _s, f in hits]

    def all(self):
        return [f for _s, f in self.items]


ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), tuples_),
        st.tuples(st.just("in"), tuples_, st.booleans()),
        st.tuples(st.just("rd"), tuples_, st.booleans()),
        st.tuples(st.just("in_all"), tuples_, st.booleans()),
    ),
    max_size=60,
)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_store_equals_reference_model(operations):
    store, model = TupleStore(), Model()
    for op in operations:
        if op[0] == "add":
            fields = op[1]
            store.add(LindaTuple(fields))
            model.add(fields)
        elif op[0] in ("in", "rd"):
            _k, probe, typed = op
            pattern = pattern_for(probe, typed)
            remove = op[0] == "in"
            got = store.find(pattern, remove=remove)
            want = model.find(pattern, remove=remove)
            assert (got.tup.fields if got else None) == want
        else:  # in_all
            _k, probe, typed = op
            pattern = pattern_for(probe, typed)
            got = [m.tup.fields for m in store.find_all(pattern, remove=True)]
            want = model.find_all(pattern, remove=True)
            assert got == want
        assert [t.fields for t in store] == model.all()
        assert len(store) == len(model.all())


@given(st.lists(tuples_, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_multiset_conservation(added):
    """in'ing everything back out returns exactly the multiset deposited."""
    store = TupleStore()
    for f in added:
        store.add(LindaTuple(f))
    drained = []
    while len(store):
        arity_probe = None
        for t in store:
            arity_probe = t
            break
        pattern = Pattern(tuple(formal() for _ in range(arity_probe.arity)))
        m = store.find(pattern, remove=True)
        assert m is not None
        drained.append(m.tup.fields)
    assert sorted(map(repr, drained)) == sorted(map(repr, added))


@given(st.lists(tuples_, min_size=0, max_size=30), st.integers(0, 29))
@settings(max_examples=100, deadline=None)
def test_snapshot_roundtrip_mid_history(added, n_removed):
    store = TupleStore()
    for f in added:
        store.add(LindaTuple(f))
    for _ in range(min(n_removed, len(added))):
        t = next(iter(store), None)
        if t is None:
            break
        store.find(Pattern(tuple(formal() for _ in range(t.arity))), remove=True)
    clone = TupleStore.from_snapshot(store.snapshot())
    assert clone.fingerprint() == store.fingerprint()
    assert clone.to_list() == store.to_list()
    # future allocations stay aligned
    a = store.add(LindaTuple(("sync",)))
    b = clone.add(LindaTuple(("sync",)))
    assert a == b


@given(st.lists(tuples_, min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_reinsert_inverts_remove(added):
    """remove + reinsert(seqno) is an exact identity on the store."""
    store = TupleStore()
    for f in added:
        store.add(LindaTuple(f))
    before = store.fingerprint()
    order_before = store.to_list()
    probe = Pattern(tuple(formal() for _ in range(len(added[0]))))
    m = store.find(probe, remove=True)
    if m is not None:
        store.reinsert(m.seqno, m.tup)
    assert store.fingerprint() == before
    assert store.to_list() == order_before
