"""Property-based tests at the cluster level: convergence under chaos.

Hypothesis generates workloads and crash schedules; the property is the
paper's bottom line — all surviving replicas of the stable tuple space
hold identical state, no matter which host crashed when.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import AGS, Guard, Op, formal, ref
from repro.consul import ClusterConfig, SimCluster

LIMIT = 120_000_000.0


@st.composite
def scenario(draw):
    n_hosts = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    # writers: (host, tag, count)
    writers = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_hosts - 1),
                st.sampled_from(["x", "y", "z"]),
                st.integers(1, 6),
            ),
            min_size=1,
            max_size=4,
        )
    )
    crash_host = draw(st.one_of(st.none(), st.integers(0, n_hosts - 1)))
    crash_at = draw(st.integers(5_000, 200_000))
    return n_hosts, seed, writers, crash_host, crash_at


def writer(view, tag, n):
    for i in range(n):
        yield view.out(view.main_ts, tag, i)


@given(scenario())
@settings(max_examples=25, deadline=None)
def test_survivors_converge_despite_crashes(s):
    n_hosts, seed, writers, crash_host, crash_at = s
    c = SimCluster(ClusterConfig(n_hosts=n_hosts, seed=seed))
    procs = []
    for host, tag, n in writers:
        procs.append(c.spawn(host, writer, tag, n))
    if crash_host is not None and n_hosts > 1:
        c.crash(crash_host, at=float(crash_at))
    # run long enough for everything that can finish to finish
    c.run(until=20_000_000)
    live = c.live_hosts()
    assert live, "at most one host was crashed"
    prints = {
        c.replica(h).stable_fingerprint()
        for h in live
        if not c.replica(h).recovering
    }
    assert len(prints) == 1
    # writers on surviving hosts all completed
    for (host, tag, n), p in zip(writers, procs):
        if crash_host is None or host != crash_host:
            assert p.finished.triggered, (host, tag, n)


@given(scenario())
@settings(max_examples=15, deadline=None)
def test_crash_then_recover_converges_everywhere(s):
    n_hosts, seed, writers, crash_host, crash_at = s
    if crash_host is None:
        crash_host = 0
    c = SimCluster(ClusterConfig(n_hosts=n_hosts, seed=seed))
    for host, tag, n in writers:
        c.spawn(host, writer, tag, n)
    c.crash(crash_host, at=float(crash_at))
    c.run(until=5_000_000)
    c.recover(crash_host)
    c.run(until=30_000_000)
    r = c.replica(crash_host)
    assert not r.recovering
    prints = {c.replica(h).stable_fingerprint() for h in c.live_hosts()}
    assert len(prints) == 1


@given(
    st.integers(0, 2**16),
    st.lists(st.integers(0, 2), min_size=1, max_size=12),
)
@settings(max_examples=20, deadline=None)
def test_atomic_increments_from_random_hosts_sum_exactly(seed, hosts):
    c = SimCluster(ClusterConfig(n_hosts=3, seed=seed))

    def init(view):
        yield view.out(view.main_ts, "c", 0)

    def incr(view):
        yield view.execute(AGS.single(
            Guard.in_(view.main_ts, "c", formal(int, "v")),
            [Op.out(view.main_ts, "c", ref("v") + 1)],
        ))

    p = c.spawn(0, init)
    c.run_until(p.finished, limit=LIMIT)
    procs = [c.spawn(h, incr) for h in hosts]
    c.run_until_all(procs, limit=LIMIT)
    c.settle()
    tuples = c.replica(0).space_tuples(c.main_ts)
    assert ("c", len(hosts)) in tuples
