"""The networked telemetry plane: windows, alerts, events, HTTP endpoint.

Four layers under test, bottom-up:

1. sliding-window instruments (:mod:`repro.obs.window`) — the ring of
   per-second slices, with an injectable clock so wraparound, idle
   windows, and clock jumps are exact rather than timing-dependent;
2. the structured event log (:mod:`repro.obs.events`) — ring semantics,
   incremental drains, the NDJSON sink;
3. the alert engine (:mod:`repro.obs.slo`) — fire/resolve hysteresis
   and each built-in rule, driven with synthetic contexts;
4. the HTTP endpoint (:mod:`repro.obs.server`) — all six routes on
   ephemeral ports under both parallel backends, including the
   200→503→200 health flip across a replica kill and recovery.

The acceptance property for windows is asserted directly: after a load
change, the windowed p99 tracks the *new* regime within one window
while the cumulative histogram's p99 still reports the old mass.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.envflags import EnvFlag, int_env, telemetry_port
from repro.obs.events import EventLog, get_log
from repro.obs.metrics import MetricsRegistry, format_snapshot, merged
from repro.obs.slo import AlertEngine, AlertRule, default_rules
from repro.obs.window import SlidingHistogram, SlidingRate, WindowRegistry
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime

BACKENDS = [
    pytest.param(ThreadedReplicaRuntime, id="threaded"),
    pytest.param(MultiprocessRuntime, id="multiproc"),
]


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as r:
            return r.status, r.read()
    except urllib.error.HTTPError as e:
        return e.code, e.read()


# --------------------------------------------------------------------------- #
# sliding windows
# --------------------------------------------------------------------------- #


class TestSlidingHistogram:
    def test_windowed_quantiles_track_load_changes(self):
        """The acceptance property: windowed p99 follows the current
        regime within one window while the cumulative p99 lags."""
        clock = FakeClock()
        cumulative = MetricsRegistry().histogram("ags_e2e")
        h = SlidingHistogram("ags_e2e", clock=clock)
        for _ in range(100):  # slow regime
            h.record(0.1)
            cumulative.record(0.1)
        clock.advance(15)  # past the 10s window
        for _ in range(100):  # fast regime
            h.record(0.001)
            cumulative.record(0.001)
        w = h.window_snapshot(10)
        assert w["count"] == 100  # only the fast samples are in-window
        assert w["p99"] < 0.01  # windowed view reflects the new regime
        assert cumulative.quantile(0.99) >= 0.05  # cumulative still lags
        # the longer windows still see both regimes
        assert h.window_snapshot(60)["count"] == 200

    def test_idle_window_reports_empty(self):
        clock = FakeClock()
        h = SlidingHistogram("h", clock=clock)
        for _ in range(10):
            h.record(0.5)
        clock.advance(11)
        w = h.window_snapshot(10)
        assert w["count"] == 0
        assert w["p99"] == 0.0 and w["rate"] == 0.0
        # the samples are still visible in the longer windows
        assert h.window_snapshot(60)["count"] == 10

    def test_ring_wraparound_recycles_slices(self):
        """Recording > ring-span seconds apart lands in the same slot;
        the stale second must be evicted, not summed."""
        clock = FakeClock()
        h = SlidingHistogram("h", clock=clock)
        h.record(1.0)
        clock.advance(300)  # exactly one full ring later: same slot index
        h.record(2.0)
        w = h.window_snapshot(10)
        assert w["count"] == 1
        assert w["max"] == 2.0

    def test_forward_clock_jump_expires_everything(self):
        clock = FakeClock()
        h = SlidingHistogram("h", clock=clock)
        for _ in range(50):
            h.record(0.2)
        clock.advance(10_000)  # way past the whole ring
        assert h.window_snapshot(300)["count"] == 0
        h.record(0.3)  # still usable after the jump
        assert h.window_snapshot(10)["count"] == 1

    def test_backward_clock_jump_ignores_future_slices(self):
        clock = FakeClock(2000.0)
        h = SlidingHistogram("h", clock=clock)
        h.record(1.0)
        clock.t = 1500.0  # clock steps backwards
        w = h.window_snapshot(300)
        assert w["count"] == 0  # the "future" slice is not counted
        h.record(0.5)  # recording at the earlier time works
        assert h.window_snapshot(10)["count"] == 1

    def test_per_second_rate(self):
        clock = FakeClock()
        h = SlidingHistogram("h", clock=clock)
        for i in range(10):
            for _ in range(5):
                h.record(0.01)
            clock.advance(1)
        assert h.window_snapshot(10)["rate"] == pytest.approx(5.0)

    def test_merge_same_and_different_seconds(self):
        clock = FakeClock()
        a = SlidingHistogram("h", clock=clock)
        b = SlidingHistogram("h", clock=clock)
        a.record(0.1)
        b.record(0.2)  # same second: must sum
        a.merge(b)
        assert a.window_snapshot(10)["count"] == 2
        # b records in a newer second: the newer slice wins a stale slot
        clock.advance(300)  # same slot index, newer stamp
        b2 = SlidingHistogram("h", clock=clock)
        b2.record(0.3)
        a.merge(b2)
        assert a.window_snapshot(10)["count"] == 1

    def test_merge_rejects_different_layouts(self):
        a = SlidingHistogram("a", n_buckets=30)
        b = SlidingHistogram("b", n_buckets=10)
        with pytest.raises(ValueError):
            a.merge(b)


class TestSlidingRate:
    def test_rate_over_windows(self):
        clock = FakeClock()
        r = SlidingRate("ops", clock=clock)
        for _ in range(20):
            r.inc(3)
            clock.advance(1)
        assert r.window_count(10) == 30
        assert r.rate(10) == pytest.approx(3.0)
        assert r.window_count(60) == 60

    def test_idle_then_reuse(self):
        clock = FakeClock()
        r = SlidingRate("ops", clock=clock)
        r.inc(7)
        clock.advance(301)
        assert r.window_count(300) == 0
        r.inc(2)
        assert r.window_count(10) == 2

    def test_merge(self):
        clock = FakeClock()
        a = SlidingRate("ops", clock=clock)
        b = SlidingRate("ops", clock=clock)
        a.inc(1)
        b.inc(2)
        a.merge(b)
        assert a.window_count(10) == 3


class TestWindowRegistry:
    def test_snapshot_shape(self):
        clock = FakeClock()
        reg = WindowRegistry(clock=clock)
        reg.histogram("ags_e2e").record(0.05)
        reg.rate("cmds").inc(4)
        snap = reg.snapshot()
        assert set(snap["histograms"]["ags_e2e"]) == {"10s", "60s", "5m"}
        assert snap["rates"]["cmds"]["10s"]["count"] == 4
        for w in snap["histograms"]["ags_e2e"].values():
            assert {"count", "p50", "p99", "p999", "rate"} <= set(w)

    def test_merge_across_replica_registries(self):
        """ShardedGroup's runtime-wide view: windows merge through
        MetricsRegistry.merge like every cumulative instrument."""
        regs = [MetricsRegistry() for _ in range(3)]
        for i, reg in enumerate(regs):
            reg.windows.histogram("ags_e2e").record(0.01 * (i + 1))
            reg.windows.rate("cmds").inc(10)
        total = merged(regs)
        snap = total.windows.snapshot()
        assert snap["histograms"]["ags_e2e"]["5m"]["count"] == 3
        assert snap["rates"]["cmds"]["5m"]["count"] == 30


# --------------------------------------------------------------------------- #
# p999 satellite
# --------------------------------------------------------------------------- #


class TestP999:
    def test_histogram_snapshot_carries_p999(self):
        h = MetricsRegistry().histogram("h")
        for _ in range(100):
            h.record(0.001)
        h.record(10.0)  # ~1% outlier: beyond the p99.9 target of n=101
        snap = h.snapshot()
        assert snap["p999"] >= snap["p99"] >= snap["p50"]
        assert snap["p999"] > 1.0  # the outlier is visible at p999

    def test_format_snapshot_prints_p999(self):
        reg = MetricsRegistry()
        reg.histogram("ags_e2e").record(0.1)
        assert "p999=" in format_snapshot(reg.snapshot())


# --------------------------------------------------------------------------- #
# structured events
# --------------------------------------------------------------------------- #


class TestEventLog:
    def test_ring_capacity_and_since(self):
        log = EventLog(capacity=4)
        for i in range(6):
            log.emit("tick", n=i)
        events = log.events()
        assert len(events) == 4  # ring dropped the oldest two
        assert [e["n"] for e in events] == [2, 3, 4, 5]
        assert [e["n"] for e in log.events(since=events[1]["seq"])] == [4, 5]

    def test_ndjson_sink(self, tmp_path):
        path = tmp_path / "events.ndjson"
        log = EventLog()
        log.attach_sink(str(path))
        log.emit("chaos_kill_replica", severity="warning", replica=1)
        log.emit("auto_recovered", replica=1)
        log.detach_sink()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["chaos_kill_replica", "auto_recovered"]
        assert rows[0]["severity"] == "warning"

    def test_trace_id_rides_along(self):
        log = EventLog()
        e = log.emit("alert_fired", trace_id="t-17", rule="stall")
        assert e["trace_id"] == "t-17"


# --------------------------------------------------------------------------- #
# alert engine
# --------------------------------------------------------------------------- #


def _ctx(replica_alive=True, stalls=(), metrics=None):
    return {
        "introspection": {"replicas": [{"id": 0, "alive": replica_alive}]},
        "metrics": metrics or {},
        "stalls": list(stalls),
    }


class TestAlertEngine:
    def test_hysteresis_fire_and_resolve(self):
        breaches = [True]
        rule = AlertRule(
            "flappy", lambda ctx: (breaches[0], "detail"),
            fire_after=2, resolve_after=2,
        )
        engine = AlertEngine(rules=[rule], events=EventLog())
        engine.evaluate({})
        assert engine.firing() == []  # one breach is not enough
        engine.evaluate({})
        assert engine.firing() == ["flappy"]
        breaches[0] = False
        engine.evaluate({})
        assert engine.firing() == ["flappy"]  # one clean is not enough
        engine.evaluate({})
        assert engine.firing() == []

    def test_transitions_emit_events_and_gauge(self):
        log = EventLog()
        metrics = MetricsRegistry()
        rule = AlertRule("down", lambda ctx: (ctx["bad"], "x"), fire_after=1,
                         resolve_after=1)
        engine = AlertEngine(rules=[rule], metrics=metrics, events=log)
        engine.evaluate({"bad": True})
        assert metrics.gauge("alerts_firing").value == 1
        engine.evaluate({"bad": False})
        assert metrics.gauge("alerts_firing").value == 0
        kinds = [e["kind"] for e in log.events()]
        assert kinds == ["alert_fired", "alert_resolved"]

    def test_broken_rule_reads_as_clean(self):
        def boom(ctx):
            raise RuntimeError("rule bug")

        engine = AlertEngine(
            rules=[AlertRule("broken", boom, fire_after=1)], events=EventLog()
        )
        engine.evaluate({})
        assert engine.firing() == []

    # ---- the built-in rules: each fires and resolves ---- #

    def test_replica_down_rule(self):
        engine = AlertEngine(rules=default_rules(), events=EventLog())
        engine.evaluate(_ctx(replica_alive=False))
        assert "replica_down" in engine.firing()  # fire_after=1: critical
        assert engine.has_critical()
        engine.evaluate(_ctx(replica_alive=True))
        assert "replica_down" not in engine.firing()

    def test_stall_rule(self):
        engine = AlertEngine(rules=default_rules(), events=EventLog())
        stall = {"request_id": 9, "blocked_for": 6.0}
        for _ in range(2):
            engine.evaluate(_ctx(stalls=[stall]))
        assert "stall" in engine.firing()
        for _ in range(2):
            engine.evaluate(_ctx())
        assert "stall" not in engine.firing()

    def test_slo_burn_rule_uses_windowed_p99(self):
        engine = AlertEngine(
            rules=default_rules(p99_slo_s=0.01), events=EventLog()
        )
        slow = {"windows": {"histograms": {"ags_e2e": {
            "10s": {"count": 100, "p99": 0.5}}}, "rates": {}}}
        fast = {"windows": {"histograms": {"ags_e2e": {
            "10s": {"count": 100, "p99": 0.001}}}, "rates": {}}}
        for _ in range(2):
            engine.evaluate(_ctx(metrics=slow))
        assert "slo_latency_burn" in engine.firing()
        for _ in range(2):
            engine.evaluate(_ctx(metrics=fast))
        assert "slo_latency_burn" not in engine.firing()
        # too few samples must not fire (idle runtime is not burning SLO)
        sparse = {"windows": {"histograms": {"ags_e2e": {
            "10s": {"count": 3, "p99": 9.9}}}, "rates": {}}}
        eng2 = AlertEngine(rules=default_rules(p99_slo_s=0.01),
                           events=EventLog())
        for _ in range(3):
            eng2.evaluate(_ctx(metrics=sparse))
        assert "slo_latency_burn" not in eng2.firing()

    def test_read_fallback_ratio_rule(self):
        def rates(fast, fb):
            return {"windows": {"histograms": {}, "rates": {
                "read_fast": {"10s": {"count": fast, "rate": fast / 10}},
                "read_fallback": {"10s": {"count": fb, "rate": fb / 10}},
            }}}

        engine = AlertEngine(rules=default_rules(), events=EventLog())
        for _ in range(2):
            engine.evaluate(_ctx(metrics=rates(10, 90)))
        assert "read_fallback_ratio" in engine.firing()
        for _ in range(2):
            engine.evaluate(_ctx(metrics=rates(100, 1)))
        assert "read_fallback_ratio" not in engine.firing()

    def test_backpressure_rule(self):
        engine = AlertEngine(
            rules=default_rules(backpressure_depth=100), events=EventLog()
        )
        deep = {"gauges": {"sequencer_inbox_depth": 5000}}
        shallow = {"gauges": {"sequencer_inbox_depth": 3}}
        for _ in range(2):
            engine.evaluate(_ctx(metrics=deep))
        assert "backpressure" in engine.firing()
        for _ in range(2):
            engine.evaluate(_ctx(metrics=shallow))
        assert "backpressure" not in engine.firing()


# --------------------------------------------------------------------------- #
# env flags
# --------------------------------------------------------------------------- #


class TestEnvFlags:
    def test_envflag_roundtrip(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        flag = EnvFlag("REPRO_TEST_FLAG")
        assert not flag.enabled()
        flag.enable()
        assert flag.enabled()
        import os

        assert os.environ["REPRO_TEST_FLAG"] == "1"  # children inherit
        flag.disable()
        assert not flag.enabled()
        assert "REPRO_TEST_FLAG" not in os.environ

    def test_envflag_inherited_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "1")
        assert EnvFlag("REPRO_TEST_FLAG").enabled()  # fresh child state

    def test_int_env_and_telemetry_port(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_port() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "9100")
        assert telemetry_port() == 9100
        monkeypatch.setenv("REPRO_TELEMETRY", "garbage")
        assert telemetry_port() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "99999999")
        assert telemetry_port() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "")
        assert int_env("REPRO_TELEMETRY") is None


# --------------------------------------------------------------------------- #
# the HTTP endpoint, on both parallel backends
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("runtime_cls", BACKENDS)
class TestTelemetryServer:
    def test_all_routes_and_health_flip(self, runtime_cls):
        from repro.obs.tracing import FlightRecorder

        rt = runtime_cls(3, tracer=FlightRecorder())
        try:
            ts = rt.create_space("t")
            for i in range(20):
                rt.out(ts, ("x", i))
                rt.rdp(ts, ("x", i))
            server = rt.serve_telemetry(0, stall_threshold=0.5)
            base = server.url

            status, body = _get(base + "/metrics")
            assert status == 200
            text = body.decode()
            assert "linda_ags_e2e_seconds" in text
            assert 'quantile="0.999"' in text
            assert "linda_window_latency_seconds" in text
            assert "linda_alert_state" in text

            status, body = _get(base + "/health")
            assert status == 200 and json.loads(body)["healthy"]

            status, body = _get(base + "/snapshot")
            assert status == 200
            snap = json.loads(body)
            assert snap["backend"] == runtime_cls.__name__
            assert "windows" in snap["metrics"]
            assert isinstance(snap["alerts"], list)

            status, body = _get(base + "/events")
            assert status == 200 and "events" in json.loads(body)

            status, body = _get(base + "/debug/trace")
            assert status == 200
            assert "traceEvents" in json.loads(body)

            status, body = _get(base + "/unknown")
            assert status == 404

            # the acceptance flip: kill → 503 (unrecovered), recover → 200
            rt.crash_replica(1)
            status, body = _get(base + "/health")
            assert status == 503
            health = json.loads(body)
            assert not health["healthy"] and health["problems"]
            rt.recover_replica(1)
            status, body = _get(base + "/health")
            assert status == 200
        finally:
            rt.shutdown()

    def test_replica_kill_lands_in_event_log(self, runtime_cls):
        before = get_log().last_seq
        rt = runtime_cls(3)
        try:
            server = rt.serve_telemetry(0)
            rt.crash_replica(2)
            status, body = _get(server.url + f"/events?since={before}")
            assert status == 200
            kinds = [e["kind"] for e in json.loads(body)["events"]]
            assert "replica_dead" in kinds
        finally:
            rt.shutdown()


class TestTelemetryServerThreadedOnly:
    """Routes exercised on one backend — behavior is backend-agnostic."""

    def test_debug_profile_returns_speedscope(self):
        rt = ThreadedReplicaRuntime(2)
        try:
            server = rt.serve_telemetry(0)
            ts = rt.create_space("p")
            rt.out(ts, ("y", 1))
            status, body = _get(server.url + "/debug/profile?seconds=0.3")
            assert status == 200
            prof = json.loads(body)
            assert prof["profiles"] and prof["shared"]["frames"]
            status, _ = _get(server.url + "/debug/profile?seconds=abc")
            assert status == 400
        finally:
            rt.shutdown()

    def test_trace_404_without_tracer(self):
        rt = ThreadedReplicaRuntime(2)  # no FlightRecorder configured
        try:
            server = rt.serve_telemetry(0)
            status, _ = _get(server.url + "/debug/trace")
            assert status == 404
        finally:
            rt.shutdown()

    def test_serve_telemetry_is_idempotent_and_closes_on_shutdown(self):
        rt = ThreadedReplicaRuntime(2)
        server = rt.serve_telemetry(0)
        assert rt.serve_telemetry(0) is server  # same endpoint back
        url = server.url
        rt.shutdown()
        assert rt._telemetry is None
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(url + "/health", timeout=2)

    def test_env_auto_serve(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        rt = ThreadedReplicaRuntime(2)
        try:
            assert rt._telemetry is not None
            status, _ = _get(rt._telemetry.url + "/health")
            assert status == 200
        finally:
            rt.shutdown()

    def test_remote_top_renders_from_snapshot(self, capsys):
        from repro import cli

        rt = ThreadedReplicaRuntime(2)
        try:
            ts = rt.create_space("t")
            rt.out(ts, ("z", 1))
            server = rt.serve_telemetry(0)
            rc = cli.main(["top", "--url", server.url, "--once"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "linda top" in out
            assert "ThreadedReplicaRuntime" in out
        finally:
            rt.shutdown()
