"""Tests for FT-lcc program mode (space declarations + named statements)."""

import pytest

from repro import CompileError, LocalRuntime, Resilience, Scope, formal
from repro.lcc import compile_program

WORKER_PROGRAM = """
# the FT bag-of-tasks worker, as a compiled program
space bag     stable shared
space prog    stable shared
space results stable shared

stmt take =
    < in(bag, "task", ?t:int) => out(prog, "task", t) >

stmt finish(t, r) =
    < in(prog, "task", t) => out(results, "result", t, r) >

stmt poll =
    < inp(bag, "task", ?t:int) => out(prog, "task", t)
      or true => out(results, "idle", 1) >
"""


@pytest.fixture
def rt():
    return LocalRuntime()


class TestParsing:
    def test_declarations_collected(self):
        prog = compile_program(WORKER_PROGRAM)
        assert set(prog.space_decls) == {"bag", "prog", "results"}
        assert prog.names() == ["finish", "poll", "take"]
        assert "take" in prog
        assert prog.statement_decls["finish"].params == ["t", "r"]

    def test_space_attributes(self):
        prog = compile_program(
            "space a stable shared\n"
            "space b volatile\n"
            "space c private stable\n"
        )
        assert prog.space_decls["a"].resilience is Resilience.STABLE
        assert prog.space_decls["b"].resilience is Resilience.VOLATILE
        assert prog.space_decls["c"].scope is Scope.PRIVATE

    def test_bad_space_attribute(self):
        with pytest.raises(CompileError):
            compile_program("space a indestructible")

    def test_garbage_line_rejected(self):
        with pytest.raises(CompileError):
            compile_program("blargh foo")

    def test_unclosed_statement_rejected(self):
        with pytest.raises(CompileError):
            compile_program('stmt x = < in(main, "a"')

    def test_multiline_statement(self):
        prog = compile_program(
            "stmt multi =\n"
            "    < in(main, \"a\", ?x:int)\n"
            "      => out(main, \"b\", x + 1);\n"
            "         out(main, \"c\", x) >\n"
        )
        assert "multi" in prog

    def test_comments_and_blanks_ignored(self):
        prog = compile_program("\n# hello\n\nspace a\n# bye\n")
        assert "a" in prog.space_decls


class TestBindingAndExecution:
    def test_bind_creates_spaces(self, rt):
        prog = compile_program(WORKER_PROGRAM).bind(rt)
        assert prog.handles["bag"].stable
        rt.out(prog.handles["bag"], "task", 7)
        res = rt.execute(prog.statement("take"))
        assert res.succeeded and res["t"] == 7
        assert rt.space_size(prog.handles["prog"]) == 1

    def test_parameterized_statement(self, rt):
        prog = compile_program(WORKER_PROGRAM).bind(rt)
        rt.out(prog.handles["prog"], "task", 7)
        res = rt.execute(prog.statement("finish", t=7, r=49))
        assert res.succeeded
        assert rt.inp(prog.handles["results"], "result", 7, 49) is not None

    def test_full_worker_cycle(self, rt):
        prog = compile_program(WORKER_PROGRAM).bind(rt)
        bag = prog.handles["bag"]
        for i in range(5):
            rt.out(bag, "task", i)
        done = []
        while True:
            res = rt.execute(prog.statement("poll"))
            if res.fired == 1:
                break
            t = res["t"]
            rt.execute(prog.statement("finish", t=t, r=t * t))
            done.append(t)
        assert sorted(done) == [0, 1, 2, 3, 4]

    def test_missing_parameter_rejected(self, rt):
        prog = compile_program(WORKER_PROGRAM).bind(rt)
        with pytest.raises(CompileError):
            prog.statement("finish", t=1)

    def test_extra_parameter_rejected(self, rt):
        prog = compile_program(WORKER_PROGRAM).bind(rt)
        with pytest.raises(CompileError):
            prog.statement("take", bogus=1)

    def test_unknown_statement_rejected(self, rt):
        prog = compile_program(WORKER_PROGRAM).bind(rt)
        with pytest.raises(CompileError):
            prog.statement("frobnicate")

    def test_unbound_program_rejected(self):
        prog = compile_program(WORKER_PROGRAM)
        with pytest.raises(CompileError):
            prog.statement("take")

    def test_bind_existing_handle(self, rt):
        h = rt.create_space("mybag")
        prog = compile_program(WORKER_PROGRAM).bind(rt, existing={"bag": h})
        assert prog.handles["bag"] == h

    def test_bind_existing_attribute_mismatch(self, rt):
        h = rt.create_space("v", Resilience.VOLATILE)
        prog = compile_program("space bag stable\nstmt s = out(bag, 1)\n")
        with pytest.raises(CompileError):
            prog.bind(rt, existing={"bag": h})

    def test_statement_cache_memoizes(self, rt):
        prog = compile_program(WORKER_PROGRAM).bind(rt)
        a = prog.statement("finish", t=1, r=1)
        b = prog.statement("finish", t=1, r=1)
        c = prog.statement("finish", t=2, r=4)
        assert a is b
        assert a != c

    def test_parameter_substitution_is_identifier_safe(self, rt):
        prog = compile_program(
            'stmt s(t) = < true => out(main, "total", t) >\n'
        ).bind(rt)
        # "total" contains "t" but must not be mangled
        res = rt.execute(prog.statement("s", t=9))
        assert res.succeeded
        assert rt.inp(rt.main_ts, "total", 9) is not None

    def test_parameter_not_substituted_inside_strings(self, rt):
        prog = compile_program(
            'stmt s(x) = < true => out(main, "x marks", x) >\n'
        ).bind(rt)
        rt.execute(prog.statement("s", x=5))
        assert rt.inp(rt.main_ts, "x marks", 5) is not None

    def test_string_parameter_values(self, rt):
        prog = compile_program(
            'stmt s(who) = < true => out(main, "hello", who) >\n'
        ).bind(rt)
        rt.execute(prog.statement("s", who="world"))
        assert rt.inp(rt.main_ts, "hello", "world") is not None

    def test_signature_catalog_accumulates_across_statements(self, rt):
        prog = compile_program(WORKER_PROGRAM).bind(rt)
        prog.statement("take")
        prog.statement("finish", t=1, r=2)
        # take's and finish's patterns share one signature: deduplicated,
        # exactly as FT-lcc's per-program catalog would
        assert len(prog.catalog) == 1
        prog_b = compile_program(
            'stmt s = < rd(main, "x", ?a:float, ?b:str) >\n'
        ).bind(rt)
        prog_b.statement("s")
        assert ("str", "float", "str") in prog_b.catalog

    def test_private_space_binding_gets_owner(self, rt):
        prog = compile_program(
            "space mine stable private\nstmt s = out(mine, 1)\n"
        ).bind(rt, owner=42)
        view42 = rt.view(42)
        view42.execute(prog.statement("s"))
        from repro import ScopeError

        with pytest.raises(ScopeError):
            rt.view(43).out(prog.handles["mine"], "nope")
