"""Property-based tests: WAL recovery equals the pre-crash state.

The WAL argument is the same determinism argument as replication: replay
is re-execution.  Hypothesis drives random command streams (including
statements that park, probes, disjunctions and failure notifications)
through a logged runtime and checks that recovery from any crash point
reproduces the exact state machine — tuples, counters, parked statements
and all.
"""

from __future__ import annotations

import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.spaces import MAIN_TS
from repro.core.statemachine import ExecuteAGS, HostFailed
from repro.persist import WALRuntime
from tests.test_prop_statemachine import ags_statement


@st.composite
def command_stream(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    cmds = []
    for rid in range(1, n + 1):
        if draw(st.integers(0, 9)) == 0:
            cmds.append(HostFailed(rid, -1, draw(st.integers(1, 3))))
        else:
            cmds.append(ExecuteAGS(rid, -1, 0, draw(ags_statement())))
    return cmds


@given(command_stream(), st.booleans())
@settings(max_examples=60, deadline=None)
def test_recovery_reproduces_any_stream(tmp_path_factory, cmds, compact_midway):
    tmp = tmp_path_factory.mktemp("wal")
    path = str(tmp / "stream.wal")
    rt = WALRuntime(path, fsync=False)
    half = len(cmds) // 2
    for i, cmd in enumerate(cmds):
        rt.state_machine.apply(cmd)
        if compact_midway and i == half:
            rt.compact()
    before = rt._logging_sm._inner.fingerprint()
    blocked_before = len(rt._logging_sm._inner.blocked)
    rt.crash()
    back = WALRuntime.recover(path)
    assert back._logging_sm._inner.fingerprint() == before
    assert len(back._logging_sm._inner.blocked) == blocked_before
    back.close()
    os.remove(path)
