"""Every example program must run clean — they are executable docs."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name
    for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    path = pathlib.Path(__file__).parent.parent / "examples" / name
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"{name} failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{name} printed nothing"


def test_example_inventory():
    # the deliverable: a quickstart plus at least two domain scenarios
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3
