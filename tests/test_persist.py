"""Tests for the write-ahead-logged stable tuple space (the A5 design)."""

import pytest

from repro import AGS, Guard, Op, formal, ref
from repro.core.spaces import MAIN_TS
from repro.persist import WALRuntime


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "ts.wal")


class TestLogging:
    def test_basic_roundtrip_still_works(self, wal_path):
        rt = WALRuntime(wal_path, fsync=False)
        rt.out(MAIN_TS, "x", 1)
        assert rt.in_(MAIN_TS, "x", formal(int)) == ("x", 1)
        assert rt.records_written == 2
        rt.close()

    def test_crash_and_recover_restores_tuples(self, wal_path):
        rt = WALRuntime(wal_path, fsync=False)
        for i in range(5):
            rt.out(MAIN_TS, "data", i)
        rt.in_(MAIN_TS, "data", 2)
        h = rt.create_space("aux")
        rt.out(h, "k", "v")
        before = rt.state_machine.fingerprint()
        rt.crash()

        back = WALRuntime.recover(wal_path)
        assert back.state_machine.fingerprint() == before
        assert sorted(t[1] for t in back.space_tuples(MAIN_TS)) == [0, 1, 3, 4]
        assert back.space_tuples(h) == [("k", "v")]
        back.close()

    def test_parked_statements_survive_recovery(self, wal_path):
        rt = WALRuntime(wal_path, fsync=False)
        # park a statement via the state machine directly (no thread races)
        from repro.core.statemachine import ExecuteAGS

        rt.state_machine.apply(
            ExecuteAGS(999, -1, 0, AGS.single(Guard.in_(MAIN_TS, "later")))
        )
        rt.crash()
        back = WALRuntime.recover(wal_path)
        assert len(back.state_machine.blocked) == 1
        # the parked obligation still consumes the next matching tuple
        back.out(MAIN_TS, "later")
        assert back.space_size(MAIN_TS) == 0
        back.close()

    def test_recovery_after_atomic_updates(self, wal_path):
        rt = WALRuntime(wal_path, fsync=False)
        rt.out(MAIN_TS, "c", 0)
        incr = AGS.single(
            Guard.in_(MAIN_TS, "c", formal(int, "v")),
            [Op.out(MAIN_TS, "c", ref("v") + 1)],
        )
        for _ in range(7):
            rt.execute(incr)
        rt.crash()
        back = WALRuntime.recover(wal_path)
        assert back.rd(MAIN_TS, "c", formal(int)) == ("c", 7)
        back.close()

    def test_recovered_runtime_keeps_logging(self, wal_path):
        rt = WALRuntime(wal_path, fsync=False)
        rt.out(MAIN_TS, "a", 1)
        rt.crash()
        mid = WALRuntime.recover(wal_path, fsync=False)
        mid.out(MAIN_TS, "b", 2)
        mid.crash()
        back = WALRuntime.recover(wal_path)
        names = sorted(t[0] for t in back.space_tuples(MAIN_TS))
        assert names == ["a", "b"]
        back.close()

    def test_torn_final_record_discarded(self, wal_path):
        rt = WALRuntime(wal_path, fsync=False)
        rt.out(MAIN_TS, "a", 1)
        rt.out(MAIN_TS, "b", 2)
        rt.crash()
        # simulate a crash mid-write: truncate the last few bytes
        import os

        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as f:
            f.truncate(size - 3)
        back = WALRuntime.recover(wal_path)
        assert back.replayed == 1
        assert back.space_tuples(MAIN_TS) == [("a", 1)]
        back.close()

    def test_fsync_mode_works(self, wal_path):
        rt = WALRuntime(wal_path, fsync=True)
        rt.out(MAIN_TS, "durable", 1)
        rt.crash()
        back = WALRuntime.recover(wal_path)
        assert back.space_tuples(MAIN_TS) == [("durable", 1)]
        back.close()


class TestCompaction:
    def test_compact_preserves_state(self, wal_path):
        rt = WALRuntime(wal_path, fsync=False)
        for i in range(20):
            rt.out(MAIN_TS, "x", i)
        for i in range(10):
            rt.in_(MAIN_TS, "x", i)
        before = rt.state_machine.fingerprint()
        eliminated = rt.compact()
        assert eliminated == 29  # 30 records became 1 snapshot
        rt.crash()
        back = WALRuntime.recover(wal_path)
        assert back.state_machine.fingerprint() == before
        assert back.replayed == 1
        back.close()

    def test_appends_after_compaction_replay(self, wal_path):
        rt = WALRuntime(wal_path, fsync=False)
        rt.out(MAIN_TS, "old", 1)
        rt.compact()
        rt.out(MAIN_TS, "new", 2)
        rt.crash()
        back = WALRuntime.recover(wal_path)
        names = sorted(t[0] for t in back.space_tuples(MAIN_TS))
        assert names == ["new", "old"]
        back.close()

    def test_timeout_cancellation_through_proxy(self, wal_path):
        # the runtime rewrites _sm.blocked on a timeout; the logging proxy
        # must forward that set to the real machine
        from repro import TimeoutError_

        rt = WALRuntime(wal_path, fsync=False)
        with pytest.raises(TimeoutError_):
            rt.in_(MAIN_TS, "never", timeout=0.05)
        assert len(rt.state_machine.blocked) == 0
        rt.out(MAIN_TS, "never")
        assert rt.inp(MAIN_TS, "never") is not None
        rt.close()
