"""Distributed details: spaces, scoping and volatile semantics on the cluster."""

import pytest

from repro import AGS, Guard, Op, Resilience, Scope, SpaceError, formal, ref
from repro.consul import ClusterConfig, SimCluster
from repro.core.spaces import MAIN_TS

LIMIT = 240_000_000.0


@pytest.fixture
def cluster():
    return SimCluster(ClusterConfig(n_hosts=3, seed=71))


def run_proc(cluster, host, genfn, *args):
    p = cluster.spawn(host, genfn, *args)
    cluster.run_until(p.finished, limit=LIMIT)
    if p.error is not None:
        raise p.error
    return p.finished.value


class TestStableSpacesDistributed:
    def test_destroy_replicated(self, cluster):
        def prog(view):
            h = yield view.create_space("tmp")
            yield view.out(h, "x", 1)
            yield view.destroy_space(h)
            return h

        h = run_proc(cluster, 0, prog)
        cluster.settle()
        for host in range(3):
            assert not cluster.replica(host).sm.registry.exists(h)
        assert cluster.converged()

    def test_op_on_destroyed_space_aborts_identically(self, cluster):
        def prog(view):
            h = yield view.create_space("tmp")
            yield view.destroy_space(h)
            res = yield view.execute(AGS.atomic(Op.out(h, "x", 1)))
            return res

        res = run_proc(cluster, 1, prog)
        assert res.aborted
        cluster.settle()
        assert cluster.converged()  # the abort happened the same way everywhere

    def test_private_stable_space_scoping_across_hosts(self, cluster):
        def owner(view):
            h = yield view.create_space("mine", Resilience.STABLE, Scope.PRIVATE)
            yield view.out(h, "secret", 1)
            yield view.out(view.main_ts, "handle", h)
            return h

        h = run_proc(cluster, 0, owner)

        def intruder(view):
            t = yield view.in_(view.main_ts, "handle", formal())
            res = yield view.execute(AGS.atomic(Op.out(t[1], "spy", 1)))
            return res

        # the intruder runs under a different process id on another host
        p = cluster.spawn(2, intruder, process_id=99999)
        cluster.run_until(p.finished, limit=LIMIT)
        res = p.finished.value
        assert res.aborted  # scope violation, rolled back identically
        cluster.settle()
        assert cluster.converged()
        assert cluster.replica(1).space_size(h) == 1  # only the secret

    def test_handles_travel_in_tuples(self, cluster):
        def creator(view):
            h = yield view.create_space("box")
            yield view.out(view.main_ts, "box-is", h)

        def user(view):
            t = yield view.in_(view.main_ts, "box-is", formal())
            yield view.out(t[1], "content", 9)
            return t[1]

        run_proc(cluster, 0, creator)
        h = run_proc(cluster, 2, user)
        cluster.settle()
        assert cluster.replica(1).space_size(h) == 1


class TestVolatileSemantics:
    def test_volatile_blocking_in_wakes_locally(self, cluster):
        def prog(view):
            h = yield view.create_space("v", Resilience.VOLATILE)
            # start a waiter on the same host
            return h

        h = run_proc(cluster, 1, prog)

        def waiter(view):
            t = yield view.in_(h, "later", formal(int))
            return t

        def sender(view):
            yield view.out(h, "later", 3)

        pw = cluster.spawn(1, waiter)
        cluster.run(until=cluster.sim.now + 50_000)
        cluster.spawn(1, sender)
        cluster.run_until(pw.finished, limit=LIMIT)
        assert pw.finished.value == ("later", 3)

    def test_volatile_ops_cost_no_frames(self, cluster):
        def prog(view):
            h = yield view.create_space("v", Resilience.VOLATILE)
            for i in range(20):
                yield view.out(h, "x", i)
            n = 0
            while True:
                t = yield view.inp(h, "x", formal(int))
                if t is None:
                    break
                n += 1
            return n

        unicast0 = cluster.segment.stats.unicast_frames
        assert run_proc(cluster, 2, prog) == 20
        # nothing but heartbeat broadcasts crossed the wire
        assert cluster.segment.stats.unicast_frames == unicast0

    def test_volatile_handle_from_other_host_aborts(self, cluster):
        def creator(view):
            h = yield view.create_space("v", Resilience.VOLATILE)
            return h

        h = run_proc(cluster, 0, creator)

        def other(view):
            res = yield view.execute(AGS.atomic(Op.out(h, "x", 1)))
            return res

        res = run_proc(cluster, 2, other)
        assert res.aborted  # host 2 has no such volatile space

    def test_volatile_destroy(self, cluster):
        def prog(view):
            h = yield view.create_space("v", Resilience.VOLATILE)
            yield view.out(h, "x", 1)
            yield view.destroy_space(h)
            res = yield view.execute(AGS.atomic(Op.out(h, "y", 1)))
            return res

        res = run_proc(cluster, 1, prog)
        assert res.aborted


class TestBlockedStatementDetails:
    def test_blocked_disjunction_across_hosts(self, cluster):
        def waiter(view):
            from repro.core.ags import Branch

            res = yield view.execute(AGS([
                Branch(Guard.in_(view.main_ts, "alpha", formal(int, "a")), []),
                Branch(Guard.in_(view.main_ts, "beta", formal(int, "b")),
                       [Op.out(view.main_ts, "converted", ref("b"))]),
            ]))
            return res

        pw = cluster.spawn(0, waiter)
        cluster.run(until=300_000)

        def sender(view):
            yield view.out(view.main_ts, "beta", 5)

        cluster.spawn(2, sender)
        cluster.run_until(pw.finished, limit=LIMIT)
        assert pw.finished.value.fired == 1
        cluster.settle()
        assert cluster.converged()
        tuples = cluster.replica(1).space_tuples(MAIN_TS)
        assert ("converted", 5) in tuples

    def test_many_blocked_wake_in_submission_order(self, cluster):
        order = []

        def waiter(view, tag):
            t = yield view.in_(view.main_ts, "token", formal(int))
            order.append((tag, t[1]))

        procs = []
        for i, host in enumerate((0, 1, 2)):
            procs.append(cluster.spawn(host, waiter, i))
            cluster.run(until=cluster.sim.now + 100_000)

        def sender(view):
            for i in range(3):
                yield view.out(view.main_ts, "token", i)

        cluster.spawn(1, sender)
        cluster.run_until_all(procs, limit=LIMIT)
        # oldest blocked statement gets the oldest token
        assert order == [(0, 0), (1, 1), (2, 2)]
