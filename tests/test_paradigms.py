"""Integration tests for the FT-Linda programming paradigms (Sec. 4)."""

import threading

import pytest

from repro import FAILURE_TAG, LocalRuntime, formal
from repro.paradigms import (
    Barrier,
    DistributedVariable,
    ReplicatedServer,
    run_bag_of_tasks,
    run_divide_conquer,
)
from repro.paradigms.divide_conquer import ensure_function


@pytest.fixture
def rt():
    return LocalRuntime()


class TestDistributedVariable:
    def test_init_inspect_destroy(self, rt):
        v = DistributedVariable(rt, rt.main_ts, "count")
        v.init(10)
        assert v.value() == 10
        assert v.exists()
        assert v.destroy() == 10
        assert not v.exists()

    def test_atomic_update_returns_old(self, rt):
        v = DistributedVariable(rt, rt.main_ts, "count")
        v.init(5)
        assert v.add(3) == 5
        assert v.value() == 8
        assert v.set(100) == 8
        assert v.value() == 100

    def test_update_with_expression(self, rt):
        v = DistributedVariable(rt, rt.main_ts, "count")
        v.init(7)
        v.update(lambda old: old * 2 + 1)
        assert v.value() == 15

    def test_compare_and_set(self, rt):
        v = DistributedVariable(rt, rt.main_ts, "flag")
        v.init(0)
        assert v.compare_and_set(0, 1)
        assert not v.compare_and_set(0, 2)
        assert v.value() == 1

    def test_concurrent_atomic_updates_lose_nothing(self, rt):
        v = DistributedVariable(rt, rt.main_ts, "count")
        v.init(0)

        def bump(proc, n):
            inner = DistributedVariable(proc, proc.main_ts, "count")
            for _ in range(n):
                inner.add(1)

        handles = [rt.eval_(bump, 25) for _ in range(4)]
        for h in handles:
            h.join(timeout=30)
        assert v.value() == 100

    def test_unsafe_update_window_loses_variable(self, rt):
        """The Sec. 2.2 failure: crash between in and out loses the variable."""
        v = DistributedVariable(rt, rt.main_ts, "count")
        v.init(1)
        old = v.unsafe_in()  # worker withdrew it...
        # ...and "crashed" here: never calls unsafe_out(old + 1)
        assert v.try_value() is None  # variable is gone for everyone
        del old

    def test_string_variable(self, rt):
        v = DistributedVariable(rt, rt.main_ts, "greeting", vtype=str)
        v.init("hello")
        v.update(lambda old: old + "!")
        assert v.value() == "hello!"


class TestBarrier:
    def test_single_phase(self, rt):
        b = Barrier(rt, rt.main_ts, 4)
        b.setup()
        reached = []

        def party(proc, i):
            gen = b.arrive(proc)
            reached.append((i, gen))

        handles = [rt.eval_(party, i) for i in range(4)]
        for h in handles:
            h.join(timeout=30)
        assert len(reached) == 4
        assert all(gen == 1 for _i, gen in reached)

    def test_multi_phase_reuse(self, rt):
        n, phases = 3, 5
        b = Barrier(rt, rt.main_ts, n)
        b.setup()
        log = []
        lock = threading.Lock()

        def party(proc, i):
            for ph in range(phases):
                gen = b.arrive(proc)
                with lock:
                    log.append((ph, gen, i))

        handles = [rt.eval_(party, i) for i in range(n)]
        for h in handles:
            h.join(timeout=60)
        # every phase completed with the right generation number, and no
        # party raced ahead: generation g only appears with phase g-1
        assert len(log) == n * phases
        for ph, gen, _i in log:
            assert gen == ph + 1

    def test_one_party_barrier(self, rt):
        b = Barrier(rt, rt.main_ts, 1)
        b.setup()
        assert b.arrive() == 1
        assert b.arrive() == 2

    def test_invalid_n(self, rt):
        with pytest.raises(ValueError):
            Barrier(rt, rt.main_ts, 0)


def square(x):
    return x * x


class TestBagOfTasks:
    def test_all_tasks_complete_no_failures(self, rt):
        payloads = list(range(20))
        report = run_bag_of_tasks(rt, payloads, n_workers=4, compute=square)
        assert report["lost"] == 0
        assert sorted(r for _p, r in report["results"]) == sorted(
            p * p for p in payloads
        )

    def test_ft_mode_recovers_crashed_workers_tasks(self, rt):
        payloads = list(range(12))
        report = run_bag_of_tasks(
            rt, payloads, n_workers=3, compute=square,
            ft=True, crash_workers={0: 1, 1: 2},
        )
        assert report["lost"] == 0  # every task completed despite 2 crashes
        assert report["recycled"] == 2  # two workers' state was recycled
        got = sorted(p for p, _r in report["results"])
        assert got == payloads  # each task answered exactly once

    def test_classic_mode_loses_crashed_workers_tasks(self, rt):
        payloads = list(range(12))
        report = run_bag_of_tasks(
            rt, payloads, n_workers=3, compute=square,
            ft=False, crash_workers={0: 1, 1: 2},
        )
        assert report["lost"] == 2  # one task vanished per crashed worker

    def test_single_worker(self, rt):
        report = run_bag_of_tasks(rt, [1, 2, 3], n_workers=1, compute=square)
        assert report["lost"] == 0
        assert len(report["results"]) == 3


class TestDivideConquer:
    def test_range_sum(self, rt):
        # sum 0..63 by splitting ranges
        report = run_divide_conquer(
            rt,
            (0, 64),
            n_workers=4,
            is_small=lambda t: t[1] - t[0] <= 8,
            solve=lambda t: sum(range(t[0], t[1])),
            split=lambda t: [
                (t[0], (t[0] + t[1]) // 2), ((t[0] + t[1]) // 2, t[1])
            ],
            combine_name="dc_add",
            combine=lambda a, b: a + b,
            identity=0,
        )
        assert report["result"] == sum(range(64))

    def test_with_worker_crashes(self, rt):
        report = run_divide_conquer(
            rt,
            (0, 32),
            n_workers=3,
            is_small=lambda t: t[1] - t[0] <= 4,
            solve=lambda t: sum(range(t[0], t[1])),
            split=lambda t: [
                (t[0], (t[0] + t[1]) // 2), ((t[0] + t[1]) // 2, t[1])
            ],
            combine_name="dc_add",
            combine=lambda a, b: a + b,
            identity=0,
            crash_workers={0: 2},
        )
        assert report["result"] == sum(range(32))
        assert report["recycled"] >= 1

    def test_ensure_function_idempotent(self):
        ensure_function("dc_test_fn", lambda a, b: a + b)
        ensure_function("dc_test_fn", lambda a, b: a + b)  # no raise


class TestReplicatedServer:
    def test_serves_requests(self, rt):
        svc = ReplicatedServer(
            rt, "adder", lambda state, x: (state + x, state + x), 0
        )
        hp = rt.eval_(svc.serve, 7)
        got = []

        def client(proc):
            for i in range(5):
                got.append(svc.request(proc, i, 10))

        rt.eval_(client).join(timeout=30)
        svc.shutdown()
        assert hp.join(timeout=30) == 5
        assert got == [10, 20, 30, 40, 50]  # running sums: state persisted

    def test_failover_loses_no_requests(self, rt):
        svc = ReplicatedServer(
            rt, "echo", lambda state, x: (x, state + 1), 0
        )
        report = svc.run_with_failover(
            8, lambda i: i * 100, crash_after=3
        )
        assert report["primary_answered"] == 3
        assert report["backup_answered"] == 5
        assert report["replies"] == {i: i * 100 for i in range(8)}

    def test_state_survives_failover(self, rt):
        # state counts requests; after failover the count continues
        svc = ReplicatedServer(
            rt, "counter", lambda state, x: (state + 1, state + 1), 0
        )
        report = svc.run_with_failover(6, lambda i: i, crash_after=2)
        # replies are 1..6 in some assignment; the last reply equals 6
        assert sorted(report["replies"].values()) == [1, 2, 3, 4, 5, 6]


class TestMonitorRobustness:
    def test_failure_tuple_consumed_after_recovery(self, rt):
        report = run_bag_of_tasks(
            rt, list(range(6)), n_workers=2, compute=square,
            ft=True, crash_workers={0: 0},
        )
        assert report["lost"] == 0
        # monitor withdrew the failure tuple when done
        assert rt.inp(rt.main_ts, FAILURE_TAG, formal(int)) is None
