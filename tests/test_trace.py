"""Tests for the protocol tracer."""

from repro import formal
from repro.consul import ClusterConfig, SimCluster
from repro.sim.trace import Tracer

LIMIT = 240_000_000.0


def writer(view, n):
    for i in range(n):
        yield view.out(view.main_ts, "x", i)


def test_trace_records_sequencing_and_delivery():
    c = SimCluster(ClusterConfig(n_hosts=3, seed=61))
    tracer = Tracer().attach(c)
    p = c.spawn(1, writer, 3)
    c.run_until(p.finished, limit=LIMIT)
    assert tracer.count(layer="ord", event="sequence") == 3
    # every command is delivered on all three hosts
    assert tracer.count(layer="ord", event="deliver_up") == 9
    # deliveries carry their sequence numbers and are in host-local order
    for h in range(3):
        seqnos = [
            int(str(e.detail).split("seqno=")[1].split()[0])
            for e in tracer.select(host=h, layer="ord", event="deliver_up")
        ]
        assert seqnos == sorted(seqnos)


def test_trace_records_failure_lifecycle():
    c = SimCluster(ClusterConfig(n_hosts=3, seed=62))
    tracer = Tracer().attach(c)
    p = c.spawn(0, writer, 2)
    c.run_until(p.finished, limit=LIMIT)
    c.crash(2)
    c.settle(2_000_000)
    assert tracer.count(layer="mem", event="suspect") >= 1
    assert tracer.count(layer="mem", event="deliver_failed") >= 2  # both live hosts
    c.recover(2)
    c.run_until(c.replica(2).recovered_event, limit=LIMIT)
    assert tracer.count(layer="mem", event="deliver_recovered") >= 2
    assert tracer.count(layer="replica", event="maybe_send_snapshot") >= 1
    assert tracer.count(layer="replica", event="install_snapshot") == 1


def test_trace_filters_and_render():
    c = SimCluster(ClusterConfig(n_hosts=2, seed=63))
    tracer = Tracer().attach(c)
    p = c.spawn(0, writer, 2)
    c.run_until(p.finished, limit=LIMIT)
    only_h0 = tracer.select(host=0)
    assert only_h0 and all(e.host == 0 for e in only_h0)
    text = tracer.render(layer="ord", limit=5)
    assert "ord" in text
    assert len(text.splitlines()) <= 5


def test_trace_capacity_bounded():
    c = SimCluster(ClusterConfig(n_hosts=2, seed=64))
    tracer = Tracer(capacity=5).attach(c)
    p = c.spawn(0, writer, 10)
    c.run_until(p.finished, limit=LIMIT)
    assert len(tracer) == 5


def test_tracing_does_not_change_behavior():
    def run(traced):
        c = SimCluster(ClusterConfig(n_hosts=3, seed=65))
        if traced:
            Tracer().attach(c)
        p = c.spawn(1, writer, 5)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(1_000_000)
        return c.replica(0).stable_fingerprint(), c.sim.now

    assert run(False) == run(True)
