"""Unit tests for the Ethernet segment model and xkernel plumbing."""

import pytest

from repro.consul.network import BROADCAST, FRAME_OVERHEAD, EthernetSegment, NIC
from repro.sim import Simulator
from repro.xkernel import Message, Protocol, ProtocolStack
from repro.xkernel.message import payload_size


@pytest.fixture
def sim():
    return Simulator(seed=5)


def collector():
    got = []

    def receive(msg, src):
        got.append((msg.payload, src))

    return got, receive


class TestMessage:
    def test_header_stack_lifo(self):
        m = Message("data")
        m.push_header("a", 1)
        m.push_header("b", 2)
        assert m.pop_header("b") == 2
        assert m.pop_header("a") == 1

    def test_pop_wrong_layer_rejected(self):
        m = Message("data")
        m.push_header("a", 1)
        with pytest.raises(ValueError):
            m.pop_header("b")

    def test_size_includes_headers(self):
        m = Message("data")
        base = m.size
        m.push_header("a", "hdr", size=10)
        assert m.size == base + 10

    def test_payload_size_deterministic(self):
        assert payload_size(("x", 1)) == payload_size(("x", 1))

    def test_copy_shares_payload_but_not_headers(self):
        m = Message(("p",))
        m.push_header("a", 1)
        c = m.copy()
        c.pop_header("a")
        assert m.peek_header("a") == 1


class TestProtocolStack:
    def test_passthrough_composition(self):
        class Tag(Protocol):
            def __init__(self, name):
                super().__init__()
                self.name = name
                self.seen = []

            def from_lower(self, msg, **kw):
                self.seen.append(msg.payload)
                super().from_lower(msg, **kw)

        class Sink(Protocol):
            name = "sink"

            def __init__(self):
                super().__init__()
                self.got = []

            def from_lower(self, msg, **kw):
                self.got.append(msg.payload)

        sink = Sink()
        mid = Tag("mid")
        bottom = Tag("bottom")
        ProtocolStack([sink, mid, bottom])
        bottom.from_lower(Message("hello"))
        assert bottom.seen == ["hello"]
        assert mid.seen == ["hello"]
        assert sink.got == ["hello"]

    def test_find(self):
        class A(Protocol):
            name = "a"

        class B(Protocol):
            name = "b"

        a, b = A(), B()
        stack = ProtocolStack([a, b])
        assert stack.find(A) is a
        with pytest.raises(LookupError):
            stack.find(int)

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            ProtocolStack([])


class TestEthernet:
    def test_unicast_reaches_destination_only(self, sim):
        seg = EthernetSegment(sim)
        got0, recv0 = collector()
        got1, recv1 = collector()
        got2, recv2 = collector()
        seg.attach(NIC(0, recv0))
        seg.attach(NIC(1, recv1))
        seg.attach(NIC(2, recv2))
        seg.transmit(0, 1, Message("hi"))
        sim.run()
        assert got1 == [("hi", 0)]
        assert got0 == [] and got2 == []

    def test_broadcast_reaches_all_but_sender(self, sim):
        seg = EthernetSegment(sim)
        gots = []
        for i in range(4):
            got, recv = collector()
            gots.append(got)
            seg.attach(NIC(i, recv))
        seg.transmit(2, BROADCAST, Message("all"))
        sim.run()
        assert [len(g) for g in gots] == [1, 1, 0, 1]
        assert seg.stats.broadcast_frames == 1
        assert seg.stats.frames == 1

    def test_transmission_delay_scales_with_size(self, sim):
        seg = EthernetSegment(sim, bandwidth_bps=10_000_000, propagation_us=0)
        got, recv = collector()
        seg.attach(NIC(0, lambda m, s: None))
        seg.attach(NIC(1, recv))
        payload = b"x" * 1000
        seg.transmit(0, 1, Message(payload))
        sim.run()
        expected_us = (payload_size(payload) + FRAME_OVERHEAD) * 8 / 10_000_000 * 1e6
        assert sim.now == pytest.approx(expected_us, rel=1e-6)

    def test_medium_serializes_back_to_back_frames(self, sim):
        seg = EthernetSegment(sim, bandwidth_bps=1_000_000, propagation_us=0)
        times = []
        seg.attach(NIC(0, lambda m, s: None))
        seg.attach(NIC(1, lambda m, s: times.append(sim.now)))
        seg.transmit(0, 1, Message(b"a" * 100))
        seg.transmit(0, 1, Message(b"a" * 100))
        sim.run()
        assert len(times) == 2
        # second frame waits for the first to clear the wire
        assert times[1] == pytest.approx(2 * times[0], rel=1e-6)

    def test_crashed_nic_drops_frames(self, sim):
        seg = EthernetSegment(sim)
        got, recv = collector()
        nic = NIC(1, recv)
        seg.attach(NIC(0, lambda m, s: None))
        seg.attach(nic)
        nic.up = False
        seg.transmit(0, 1, Message("lost"))
        sim.run()
        assert got == []

    def test_partition_blocks_cross_group_traffic(self, sim):
        seg = EthernetSegment(sim)
        gots = []
        for i in range(4):
            got, recv = collector()
            gots.append(got)
            seg.attach(NIC(i, recv))
        seg.set_partitions([[0, 1], [2, 3]])
        seg.transmit(0, BROADCAST, Message("a"))
        seg.transmit(2, BROADCAST, Message("b"))
        sim.run()
        assert [m for m, _ in gots[1]] == ["a"]
        assert [m for m, _ in gots[3]] == ["b"]
        assert gots[0] == [] and len(gots[2]) == 0
        seg.set_partitions([])
        seg.transmit(0, BROADCAST, Message("c"))
        sim.run()
        assert [m for m, _ in gots[3]] == ["b", "c"]

    def test_loss_probability_drops_deterministically_with_seed(self):
        def run(seed):
            s = Simulator(seed=seed)
            seg = EthernetSegment(s, loss_probability=0.5)
            got, recv = collector()
            seg.attach(NIC(0, lambda m, x: None))
            seg.attach(NIC(1, recv))
            for i in range(50):
                seg.transmit(0, 1, Message(i))
            s.run()
            return [m for m, _ in got]

        assert run(3) == run(3)
        assert 0 < len(run(3)) < 50

    def test_double_attach_rejected(self, sim):
        seg = EthernetSegment(sim)
        seg.attach(NIC(0, lambda m, s: None))
        with pytest.raises(ValueError):
            seg.attach(NIC(0, lambda m, s: None))
