"""Stress-ish edges: large values, unicode, deep nesting, wide statements."""

import pytest

from repro import AGS, AGSError, Guard, LocalRuntime, Op, formal, ref
from repro.core.spaces import MAIN_TS
from repro.core.tuples import LindaTuple, Pattern
from repro.lcc import compile_ags


@pytest.fixture
def rt():
    return LocalRuntime()


class TestLargeValues:
    def test_megabyte_bytes_field(self, rt):
        blob = b"\xab" * (1 << 20)
        rt.out(MAIN_TS, "blob", blob)
        t = rt.in_(MAIN_TS, "blob", formal(bytes))
        assert t[1] == blob

    def test_unicode_fields(self, rt):
        s = "héllo wörld — 日本語 🧵"
        rt.out(MAIN_TS, s, s * 3)
        assert rt.in_(MAIN_TS, s, formal(str))[1] == s * 3

    def test_deeply_nested_tuple_field(self, rt):
        v = (1,)
        for _ in range(50):
            v = (v, 1)
        rt.out(MAIN_TS, "deep", v)
        assert rt.in_(MAIN_TS, "deep", formal(tuple))[1] == v

    def test_wide_tuple(self, rt):
        fields = ["wide"] + list(range(100))
        rt.out(MAIN_TS, *fields)
        pattern = ["wide"] + [formal(int)] * 100
        t = rt.in_(MAIN_TS, *pattern)
        assert list(t)[1:] == list(range(100))


class TestWideStatements:
    def test_hundred_op_body(self, rt):
        ops = [Op.out(MAIN_TS, "n", i) for i in range(100)]
        res = rt.execute(AGS.atomic(*ops))
        assert res.succeeded
        assert rt.space_size(MAIN_TS) == 100

    def test_many_branch_disjunction(self, rt):
        from repro.core.ags import Branch

        branches = [
            Branch(Guard.in_(MAIN_TS, f"chan{i}", formal(int)), [])
            for i in range(50)
        ]
        rt.out(MAIN_TS, "chan37", 1)
        res = rt.execute(AGS(branches))
        assert res.fired == 37

    def test_long_formal_chain_through_body(self, rt):
        # x0 -> x1 -> ... -> x9, each bound by a body in of the previous out
        body = [Op.out(MAIN_TS, "v0", 1)]
        for i in range(9):
            body.append(Op.in_(MAIN_TS, f"v{i}", formal(int, f"x{i}")))
            body.append(Op.out(MAIN_TS, f"v{i+1}", ref(f"x{i}") + 1))
        res = rt.execute(AGS.single(Guard.true(), body))
        assert res.succeeded
        assert rt.rd(MAIN_TS, "v9", formal(int)) == ("v9", 10)

    def test_rollback_of_hundred_op_body(self, rt):
        before = rt.state_machine.fingerprint()
        ops = [Op.out(MAIN_TS, "n", i) for i in range(100)]
        ops.append(Op.in_(MAIN_TS, "missing"))
        res = rt.execute(AGS.single(Guard.true(), ops))
        assert res.aborted
        assert rt.state_machine.fingerprint() == before


class TestLccEdges:
    def test_long_textual_statement_compiles(self, rt):
        body = "; ".join(f'out(main, "t", {i})' for i in range(60))
        ags = compile_ags(f"< true => {body} >", {"main": MAIN_TS})
        rt.execute(ags)
        assert rt.space_size(MAIN_TS) == 60

    def test_deeply_parenthesized_expression(self, rt):
        expr = "1"
        for _ in range(40):
            expr = f"({expr} + 1)"
        ags = compile_ags(f'< true => out(main, "v", {expr}) >', {"main": MAIN_TS})
        rt.execute(ags)
        assert rt.rd(MAIN_TS, "v", formal(int)) == ("v", 41)

    def test_unicode_string_literal(self, rt):
        ags = compile_ags('< true => out(main, "clé", "значение") >',
                          {"main": MAIN_TS})
        rt.execute(ags)
        assert rt.inp(MAIN_TS, "clé", "значение") is not None


class TestManyTuples:
    def test_ten_thousand_tuples_in_out(self, rt):
        for i in range(10_000):
            rt.out(MAIN_TS, "bulk", i % 97, i)
        assert rt.space_size(MAIN_TS) == 10_000
        # indexed withdraw stays fast enough to do 1000 of them
        for i in range(1000):
            assert rt.inp(MAIN_TS, "bulk", i % 97, formal(int)) is not None
        assert rt.space_size(MAIN_TS) == 9_000

    def test_move_thousand_tuples_atomically(self, rt):
        dst = rt.create_space("dst")
        for i in range(1000):
            rt.out(MAIN_TS, "m", i)
        rt.move(MAIN_TS, dst, "m", formal(int))
        assert rt.space_size(dst) == 1000
        assert rt.space_size(MAIN_TS) == 0
