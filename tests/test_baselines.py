"""Tests for the baseline systems (plain Linda, 2PC replicated TS)."""

import pytest

from repro import AGS, AGSError, Guard, LocalRuntime, Op, formal, ref
from repro.baselines import PlainLindaRuntime, TwoPhaseCluster, TwoPhaseConfig
from repro.core.tuples import Pattern


class TestPlainLinda:
    @pytest.fixture
    def rt(self):
        return PlainLindaRuntime()

    def test_single_ops_work(self, rt):
        rt.out(rt.main_ts, "x", 1)
        assert rt.in_(rt.main_ts, "x", formal(int)) == ("x", 1)

    def test_multi_op_statement_rejected(self, rt):
        with pytest.raises(AGSError):
            rt.execute(AGS.single(
                Guard.in_(rt.main_ts, "c", formal(int, "v")),
                [Op.out(rt.main_ts, "c", ref("v") + 1)],
            ))

    def test_disjunction_rejected(self, rt):
        from repro.core.ags import Branch

        with pytest.raises(AGSError):
            rt.execute(AGS([
                Branch(Guard.in_(rt.main_ts, "a"), []),
                Branch(Guard.in_(rt.main_ts, "b"), []),
            ]))

    def test_guard_plus_body_rejected(self, rt):
        with pytest.raises(AGSError):
            rt.execute(AGS.single(
                Guard.in_(rt.main_ts, "a"), [Op.out(rt.main_ts, "b")]
            ))

    def test_single_guard_only_allowed(self, rt):
        rt.out(rt.main_ts, "a")
        res = rt.execute(AGS.single(Guard.in_(rt.main_ts, "a"), []))
        assert res.succeeded

    def test_no_failure_notification(self, rt):
        with pytest.raises(AGSError):
            rt.inject_failure(3)

    def test_weak_probes_miss_deterministically(self):
        a = PlainLindaRuntime(weak_probe_miss_rate=0.5, seed=9)
        b = PlainLindaRuntime(weak_probe_miss_rate=0.5, seed=9)
        for r in (a, b):
            r.out(r.main_ts, "p", 1)
        seq_a = [a.rdp(a.main_ts, "p", formal(int)) is None for _ in range(40)]
        seq_b = [b.rdp(b.main_ts, "p", formal(int)) is None for _ in range(40)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        assert a.false_negatives == sum(seq_a)

    def test_weak_inp_miss_leaves_tuple(self):
        rt = PlainLindaRuntime(weak_probe_miss_rate=1.0, seed=1)
        rt.out(rt.main_ts, "p", 1)
        assert rt.inp(rt.main_ts, "p", formal(int)) is None
        # the tuple was NOT consumed by the false miss
        rt.weak_probe_miss_rate = 0.0
        assert rt.inp(rt.main_ts, "p", formal(int)) == ("p", 1)

    def test_zero_rate_is_exact(self, rt):
        rt.out(rt.main_ts, "p", 1)
        assert all(
            rt.rdp(rt.main_ts, "p", formal(int)) is not None for _ in range(50)
        )


def _incr_update():
    def puts(bindings):
        return [("count", bindings[0]["v"] + 1)]

    return [Pattern(("count", formal(int, "v")))], puts


class TestTwoPhase:
    def make(self, n=3, seed=0):
        c = TwoPhaseCluster(TwoPhaseConfig(n_hosts=n, seed=seed))
        c.seed_tuple("count", 0)
        return c

    def run_updates(self, c, hosts):
        takes, puts = _incr_update()
        evs = [c.update(h, takes, puts) for h in hosts]
        for ev in evs:
            c.sim.run_until_event(ev, limit=120_000_000)
        c.sim.run(until=c.sim.now + 200_000)

    def test_sequential_updates_converge(self):
        c = self.make()
        for h in (0, 1, 2):
            self.run_updates(c, [h])
        assert c.converged()
        m = c.store_of(1).find(Pattern(("count", formal(int, "v"))), remove=False)
        assert m.binding["v"] == 3

    def test_concurrent_conflicting_updates_all_commit(self):
        c = self.make(seed=4)
        self.run_updates(c, [0, 1, 2, 0, 1, 2])
        assert c.converged()
        m = c.store_of(0).find(Pattern(("count", formal(int, "v"))), remove=False)
        assert m.binding["v"] == 6
        assert c.stats.commits == 6

    def test_conflicts_cause_aborts_and_retries(self):
        c = self.make(seed=1)
        self.run_updates(c, [0, 1, 2] * 3)
        assert c.stats.aborts > 0 or c.stats.retries > 0
        assert c.converged()

    def test_message_cost_grows_with_replicas(self):
        frames = {}
        for n in (2, 4, 8):
            c = TwoPhaseCluster(TwoPhaseConfig(n_hosts=n, seed=2))
            c.seed_tuple("count", 0)
            takes, puts = _incr_update()
            ev = c.update(0, takes, puts)
            c.sim.run_until_event(ev, limit=60_000_000)
            c.sim.run(until=c.sim.now + 200_000)
            frames[n] = c.segment.stats.frames
        # 2 broadcasts + (n-1) votes
        assert frames[2] == 3
        assert frames[4] == 5
        assert frames[8] == 9

    def test_locks_released_after_abort(self):
        c = self.make(seed=7)
        # two concurrent conflicting updates: one aborts and retries; at
        # the end no locks may remain anywhere
        self.run_updates(c, [0, 1])
        for r in c.replicas:
            assert r.locks == {}
            assert r.granted == {}

    def test_multi_take_update(self):
        c = TwoPhaseCluster(TwoPhaseConfig(n_hosts=3, seed=3))
        c.seed_tuple("a", 1)
        c.seed_tuple("b", 2)

        def puts(bindings):
            return [("sum", bindings[0]["x"] + bindings[1]["y"])]

        ev = c.update(
            1,
            [Pattern(("a", formal(int, "x"))), Pattern(("b", formal(int, "y")))],
            puts,
        )
        c.sim.run_until_event(ev, limit=60_000_000)
        c.sim.run(until=c.sim.now + 200_000)
        assert c.converged()
        m = c.store_of(2).find(Pattern(("sum", formal(int, "v"))), remove=False)
        assert m.binding["v"] == 3


class TestRPCClients:
    def test_rpc_client_full_op_set(self):
        from repro.consul import ClusterConfig, SimCluster

        c = SimCluster(ClusterConfig(n_hosts=3, n_clients=2, seed=17))

        def prog(view):
            yield view.out(view.main_ts, "k", 1)
            t1 = yield view.rd(view.main_ts, "k", formal(int))
            t2 = yield view.inp(view.main_ts, "k", formal(int))
            t3 = yield view.inp(view.main_ts, "k", formal(int))
            return t1, t2, t3

        p = c.spawn(4, prog)  # second RPC client (server = replica 1)
        c.run_until(p.finished, limit=120_000_000)
        t1, t2, t3 = p.finished.value
        assert t1 == ("k", 1) and t2 == ("k", 1) and t3 is None

    def test_rpc_client_blocking_in(self):
        from repro.consul import ClusterConfig, SimCluster

        c = SimCluster(ClusterConfig(n_hosts=3, n_clients=1, seed=18))

        def waiter(view):
            t = yield view.in_(view.main_ts, "later", formal(int))
            return t

        def sender(view):
            yield view.out(view.main_ts, "later", 7)

        pw = c.spawn(3, waiter)
        c.run(until=400_000)
        c.spawn(1, sender)
        c.run_until(pw.finished, limit=120_000_000)
        assert pw.finished.value == ("later", 7)

    def test_rpc_client_cannot_create_spaces(self):
        from repro.consul import ClusterConfig, SimCluster

        c = SimCluster(ClusterConfig(n_hosts=2, n_clients=1, seed=19))
        with pytest.raises(NotImplementedError):
            c.view(2).create_space("nope")
