"""Focused token-ring ordering tests (beyond the shared protocol suite)."""

import pytest

from repro import formal
from repro.consul import ClusterConfig, SimCluster
from repro.consul.config import ConsulConfig
from repro.consul.tokenring import TokenRingLayer

LIMIT = 600_000_000.0


def make(n=3, seed=0, **consul):
    return SimCluster(
        ClusterConfig(n_hosts=n, seed=seed, ordering="token",
                      consul=ConsulConfig(**consul))
    )


def writer(view, tag, n):
    for i in range(n):
        yield view.out(view.main_ts, tag, i)


class TestRotation:
    def test_layer_type_installed(self):
        c = make()
        assert isinstance(c.ordering(0), TokenRingLayer)

    def test_token_circulates_when_idle(self):
        c = make(seed=1)
        c.run(until=1_000_000)
        passes = sum(c.ordering(h).tokens_passed for h in range(3))
        assert passes > 10  # the token keeps moving even with no traffic

    def test_all_hosts_get_to_sequence(self):
        c = make(seed=2)
        procs = [c.spawn(h, writer, f"t{h}", 4) for h in range(3)]
        c.run_until_all(procs, limit=LIMIT)
        c.settle(1_000_000)
        assert c.converged()
        # every host passed the token at least once → every host held it
        assert all(c.ordering(h).tokens_passed > 0 for h in range(3))

    def test_single_member_ring_short_circuits(self):
        c = make(n=1, seed=3)
        p = c.spawn(0, writer, "x", 5)
        c.run_until(p.finished, limit=LIMIT)
        assert c.replica(0).space_size(c.main_ts) == 5
        # nobody to pass to: the sole member keeps the token
        assert c.ordering(0).has_token


class TestTokenFailures:
    def test_regeneration_has_higher_epoch(self):
        c = make(seed=4)
        p = c.spawn(1, writer, "pre", 2)
        c.run_until(p.finished, limit=LIMIT)
        c.crash(0)
        p = c.spawn(1, writer, "post", 2)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(2_000_000)
        epochs = {c.ordering(h).token_epoch for h in (1, 2)}
        assert max(epochs) >= 1  # at least one regeneration happened
        assert c.converged()

    def test_two_crashes_sequential(self):
        c = make(n=5, seed=5)
        p = c.spawn(4, writer, "a", 3)
        c.run_until(p.finished, limit=LIMIT)
        c.crash(0)
        c.settle(2_000_000)
        c.crash(1)
        p = c.spawn(4, writer, "b", 3)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(3_000_000)
        assert c.converged()
        live = c.live_hosts()
        tuples = c.replica(live[0]).space_tuples(c.main_ts)
        assert sum(1 for t in tuples if t[0] == "b") == 3

    def test_pending_submissions_survive_token_loss(self):
        c = make(seed=6)
        # submit from host 2 and immediately crash host 0 (likely holder
        # region); the submission must eventually be ordered
        p = c.spawn(2, writer, "x", 3)
        c.run(until=c.sim.now + 2_000)
        c.crash(0)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(2_000_000)
        tuples = c.replica(1).space_tuples(c.main_ts)
        assert sum(1 for t in tuples if t[0] == "x") == 3
        assert c.converged()
