"""Unit/integration tests for the single-host LocalRuntime."""

import threading
import time

import pytest

from repro import (
    AGS,
    Guard,
    LocalRuntime,
    Op,
    Resilience,
    Scope,
    ScopeError,
    TimeoutError_,
    formal,
    ref,
)


@pytest.fixture
def rt():
    return LocalRuntime()


class TestClassicOps:
    def test_out_in_roundtrip(self, rt):
        rt.out(rt.main_ts, "msg", "hello", 1)
        t = rt.in_(rt.main_ts, "msg", formal(str), formal(int))
        assert t == ("msg", "hello", 1)

    def test_rd_leaves_tuple(self, rt):
        rt.out(rt.main_ts, "x", 5)
        assert rt.rd(rt.main_ts, "x", formal(int)) == ("x", 5)
        assert rt.in_(rt.main_ts, "x", formal(int)) == ("x", 5)

    def test_inp_hit_and_miss(self, rt):
        assert rt.inp(rt.main_ts, "x", formal(int)) is None
        rt.out(rt.main_ts, "x", 1)
        assert rt.inp(rt.main_ts, "x", formal(int)) == ("x", 1)
        assert rt.inp(rt.main_ts, "x", formal(int)) is None

    def test_rdp(self, rt):
        assert rt.rdp(rt.main_ts, "x") is None
        rt.out(rt.main_ts, "x")
        assert rt.rdp(rt.main_ts, "x") == ("x",)
        assert rt.rdp(rt.main_ts, "x") == ("x",)

    def test_in_blocks_until_available(self, rt):
        got = []

        def consumer():
            got.append(rt.in_(rt.main_ts, "later", formal(int)))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.05)
        assert got == []
        rt.out(rt.main_ts, "later", 9)
        t.join(timeout=5)
        assert got == [("later", 9)]

    def test_in_timeout(self, rt):
        with pytest.raises(TimeoutError_):
            rt.in_(rt.main_ts, "never", timeout=0.05)
        # the timed-out statement must not linger and steal later tuples
        rt.out(rt.main_ts, "never")
        assert rt.inp(rt.main_ts, "never") is not None

    def test_move_copy(self, rt):
        dst = rt.create_space("dst")
        rt.out(rt.main_ts, "t", 1)
        rt.out(rt.main_ts, "t", 2)
        rt.copy(rt.main_ts, dst, "t", formal(int))
        assert rt.space_size(dst) == 2
        rt.move(rt.main_ts, dst, "t", formal(int))
        assert rt.space_size(dst) == 4
        assert rt.space_size(rt.main_ts) == 0


class TestAGSExecution:
    def test_fetch_and_add(self, rt):
        rt.out(rt.main_ts, "c", 0)
        res = rt.execute(
            AGS.single(
                Guard.in_(rt.main_ts, "c", formal(int, "v")),
                [Op.out(rt.main_ts, "c", ref("v") + 5)],
            )
        )
        assert res.succeeded and res["v"] == 0
        assert rt.rd(rt.main_ts, "c", formal(int)) == ("c", 5)

    def test_concurrent_increments_never_lose_updates(self, rt):
        rt.out(rt.main_ts, "c", 0)
        n_threads, n_iters = 8, 50
        incr = AGS.single(
            Guard.in_(rt.main_ts, "c", formal(int, "v")),
            [Op.out(rt.main_ts, "c", ref("v") + 1)],
        )

        def worker():
            for _ in range(n_iters):
                rt.execute(incr)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rt.rd(rt.main_ts, "c", formal(int)) == ("c", n_threads * n_iters)


class TestEval:
    def test_eval_runs_and_returns(self, rt):
        def child(proc, a, b):
            proc.out(proc.main_ts, "sum", a + b)
            return a + b

        h = rt.eval_(child, 2, 3)
        assert h.join(timeout=5) == 5
        assert rt.in_(rt.main_ts, "sum", formal(int)) == ("sum", 5)

    def test_eval_exception_reraised_on_join(self, rt):
        def bad(proc):
            raise ValueError("boom")

        h = rt.eval_(bad)
        with pytest.raises(ValueError):
            h.join(timeout=5)

    def test_producer_consumer_pipeline(self, rt):
        def producer(proc, n):
            for i in range(n):
                proc.out(proc.main_ts, "item", i)

        def consumer(proc, n):
            return sum(proc.in_(proc.main_ts, "item", formal(int))[1] for _ in range(n))

        hp = rt.eval_(producer, 20)
        hc = rt.eval_(consumer, 20)
        assert hc.join(timeout=10) == sum(range(20))
        hp.join(timeout=5)


class TestSpaces:
    def test_create_and_use_space(self, rt):
        h = rt.create_space("aux", Resilience.VOLATILE)
        rt.out(h, "k", 1)
        assert rt.in_(h, "k", formal(int)) == ("k", 1)

    def test_private_space_scoping(self, rt):
        h = rt.create_space("priv", Resilience.STABLE, Scope.PRIVATE, owner=1)
        view1 = rt.view(1)
        view1.out(h, "secret", 42)
        assert view1.rd(h, "secret", formal(int)) == ("secret", 42)
        view2 = rt.view(2)
        with pytest.raises(ScopeError):
            view2.out(h, "intrusion", 1)

    def test_destroy_space(self, rt):
        h = rt.create_space("tmp")
        rt.destroy_space(h)
        from repro import SpaceError

        with pytest.raises(SpaceError):
            rt.out(h, "x")

    def test_handles_inside_tuples(self, rt):
        h = rt.create_space("inner")
        rt.out(rt.main_ts, "where", h)
        t = rt.in_(rt.main_ts, "where", formal())
        assert t[1] == h
