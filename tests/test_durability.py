"""Durability at scale: segmented WAL, crash points, chunked transfer.

Covers the claims of the segmented durability plane
(:mod:`repro.persist.segments`) and the durable replica-group journal:

- recovery is bounded by the snapshot cadence, not the history;
- a SIGKILL at any planted crash point (mid-record, either side of the
  snapshot rename, before and during prune) recovers to a
  fingerprint-identical state — exercised in real subprocesses via
  ``REPRO_CRASHPOINT``;
- ``read_at`` views are snapshot-isolated no matter how much the live
  space churns;
- chunked state transfer survives a donor dying mid-stream (a *second*
  crash during recovery from the first), on both parallel backends;
- a durable replica group restarted from nothing replays its journal to
  the last fsynced slot.
"""

import os
import signal
import subprocess
import sys

import pytest

from repro import formal
from repro.chaos import ChaosMonkey
from repro.core.spaces import MAIN_TS
from repro.persist import CRASHPOINT_ENV, SegmentedWALRuntime, replay_dir

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: Subprocess victim: phase "populate" builds a clean directory and
#: prints the fingerprint; phase "compact"/"append" re-opens it (with a
#: crash point armed by the parent) and runs the action that crosses it.
_VICTIM = """
import sys
from repro.core.spaces import MAIN_TS
from repro.persist import SegmentedWALRuntime

dir, phase = sys.argv[1], sys.argv[2]
if phase == "populate":
    rt = SegmentedWALRuntime(dir, segment_bytes=512)
    for i in range(60):
        rt.out(MAIN_TS, "seed", i)
    print(rt.state_machine.fingerprint(), flush=True)
    rt.close()
elif phase == "compact":
    rt = SegmentedWALRuntime.recover(dir, segment_bytes=512)
    rt.compact()          # dies at the armed point
    print("survived", flush=True)
elif phase == "append":
    rt = SegmentedWALRuntime.recover(dir, segment_bytes=512)
    rt.out(MAIN_TS, "extra", 1)   # dies mid-record
    print("survived", flush=True)
"""

_CRASH_POINTS = [
    ("segment_mid_record", "append"),
    ("snapshot_before_rename", "compact"),
    ("snapshot_after_rename", "compact"),
    ("manifest_before_prune", "compact"),
    ("prune_partial", "compact"),
]


def _run_victim(tmp_path, phase, crashpoint=None):
    script = tmp_path / "victim.py"
    script.write_text(_VICTIM)
    env = dict(os.environ, PYTHONPATH=_SRC)
    if crashpoint is not None:
        env[CRASHPOINT_ENV] = crashpoint
    else:
        env.pop(CRASHPOINT_ENV, None)
    return subprocess.run(
        [sys.executable, str(script), str(tmp_path / "wal"), phase],
        env=env, capture_output=True, text=True, timeout=60,
    )


class TestSegmentedRuntime:
    def test_rotation_and_recovery(self, tmp_path):
        d = str(tmp_path / "wal")
        rt = SegmentedWALRuntime(d, segment_bytes=512, fsync=False)
        for i in range(80):
            rt.out(MAIN_TS, "x", i)
        before = rt.state_machine.fingerprint()
        assert rt.log.status()["segments"] > 1  # really rotated
        rt.crash()
        back = SegmentedWALRuntime.recover(d, fsync=False)
        assert back.state_machine.fingerprint() == before
        assert back.replayed == 80
        back.close()

    def test_recovery_bounded_by_snapshot(self, tmp_path):
        d = str(tmp_path / "wal")
        rt = SegmentedWALRuntime(d, segment_bytes=512, fsync=False)
        for i in range(100):
            rt.out(MAIN_TS, "x", i)
        assert rt.compact() == 100
        for i in range(7):
            rt.out(MAIN_TS, "delta", i)
        before = rt.state_machine.fingerprint()
        rt.crash()
        back = SegmentedWALRuntime.recover(d, fsync=False)
        # snapshot + 7 delta records — never the 100-command history
        assert back.replayed == 8
        assert back.snapshot_slot == 100
        assert back.state_machine.fingerprint() == before
        back.close()

    def test_compaction_prunes_covered_segments(self, tmp_path):
        d = str(tmp_path / "wal")
        rt = SegmentedWALRuntime(d, segment_bytes=512, fsync=False)
        for i in range(100):
            rt.out(MAIN_TS, "x", i)
        segs_before = rt.log.status()["segments"]
        rt.compact()
        st = rt.wal_status()
        assert st["segments"] < segs_before
        assert st["snapshots"] == 1
        rt.close()

    def test_torn_tail_discarded_and_reported(self, tmp_path):
        d = str(tmp_path / "wal")
        rt = SegmentedWALRuntime(d, segment_bytes=1 << 20, fsync=False)
        for i in range(10):
            rt.out(MAIN_TS, "x", i)
        rt.crash()
        seg = sorted(p for p in os.listdir(d) if p.startswith("segment-"))[-1]
        path = os.path.join(d, seg)
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 3)
        back = SegmentedWALRuntime.recover(d, fsync=False)
        assert back.replayed == 9
        assert back.torn_records == 1
        assert back.torn_bytes > 0
        back.close()

    def test_torn_snapshot_falls_back_to_older_snapshot(self, tmp_path):
        import pickle

        d = str(tmp_path / "wal")
        rt = SegmentedWALRuntime(d, segment_bytes=512, fsync=False)
        for i in range(15):
            rt.out(MAIN_TS, "x", i)
        rt.compact()  # good snapshot at slot 15 (prunes covered segments)
        for i in range(15, 30):
            rt.out(MAIN_TS, "x", i)
        before = rt.state_machine.fingerprint()
        # a newer snapshot lands on disk (no prune), then gets torn —
        # e.g. the machine died while the page cache held its tail
        rt.log.write_snapshot(30, pickle.dumps(rt.state_machine.snapshot()))
        rt.crash()
        snap = sorted(p for p in os.listdir(d) if p.startswith("snapshot-"))[-1]
        path = os.path.join(d, snap)
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) // 2)
        back = SegmentedWALRuntime.recover(d, fsync=False)
        # newest snapshot unreadable → the slot-15 one + delta log win
        assert back.torn_snapshots == 1
        assert back.snapshot_slot == 15
        assert back.state_machine.fingerprint() == before
        back.close()

    def test_background_compactor_count_trigger(self, tmp_path):
        import time

        d = str(tmp_path / "wal")
        rt = SegmentedWALRuntime(
            d, segment_bytes=512, fsync=False, compact_every=20
        )
        for i in range(25):
            rt.out(MAIN_TS, "x", i)
        deadline = time.monotonic() + 10.0
        while rt.snapshots_written == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert rt.snapshots_written >= 1
        assert rt.snapshot_slot >= 20
        rt.close()

    def test_read_at_isolation_under_churn(self, tmp_path):
        d = str(tmp_path / "wal")
        rt = SegmentedWALRuntime(d, fsync=False)
        for i in range(10):
            rt.out(MAIN_TS, "stable", i)
        slot = rt.retain_snapshot()
        view = rt.read_at(slot)
        assert view.count(MAIN_TS, "stable", formal(int)) == 10
        # churn the live space hard: consume everything, add new content
        for i in range(10):
            rt.inp(MAIN_TS, "stable", i)
        for i in range(50):
            rt.out(MAIN_TS, "churn", i)
        # the view is frozen at its slot: same answers as before
        assert view.count(MAIN_TS, "stable", formal(int)) == 10
        assert view.count(MAIN_TS, "churn", formal(int)) == 0
        assert rt.space_size(MAIN_TS) == 50
        rt.close()


class TestCrashPoints:
    @pytest.mark.parametrize("point,phase", _CRASH_POINTS)
    def test_sigkill_then_fingerprint_identical(self, tmp_path, point, phase):
        pop = _run_victim(tmp_path, "populate")
        assert pop.returncode == 0, pop.stderr
        before = int(pop.stdout.strip())

        victim = _run_victim(tmp_path, phase, crashpoint=point)
        assert victim.returncode == -signal.SIGKILL, (
            f"{point}: expected SIGKILL, got rc={victim.returncode} "
            f"out={victim.stdout!r} err={victim.stderr!r}"
        )
        assert "survived" not in victim.stdout

        back = SegmentedWALRuntime.recover(str(tmp_path / "wal"))
        assert back.state_machine.fingerprint() == before, point
        if point == "segment_mid_record":
            assert back.torn_records == 1  # the half-written append
        back.close()

    def test_crash_points_compose(self, tmp_path):
        """Two crashes in a row (mid-compaction, then mid-append) recover."""
        pop = _run_victim(tmp_path, "populate")
        before = int(pop.stdout.strip())
        assert (
            _run_victim(tmp_path, "compact", "snapshot_before_rename").returncode
            == -signal.SIGKILL
        )
        assert (
            _run_victim(tmp_path, "append", "segment_mid_record").returncode
            == -signal.SIGKILL
        )
        res = replay_dir(str(tmp_path / "wal"))
        assert res.snapshot is None  # the rename never happened
        back = SegmentedWALRuntime.recover(str(tmp_path / "wal"))
        assert back.state_machine.fingerprint() == before
        back.close()


class TestDurableGroup:
    def test_restart_recovers_to_last_slot(self, tmp_path):
        from repro.parallel import ThreadedReplicaRuntime

        d = str(tmp_path / "journal")
        rt = ThreadedReplicaRuntime(3, durable_dir=d)
        for i in range(40):
            rt.out(rt.main_ts, "j", i)
        rt.quiesce()
        before = set(rt.fingerprints())
        assert len(before) == 1
        rt.shutdown()

        back = ThreadedReplicaRuntime(3, durable_dir=d)
        back.quiesce()
        assert set(back.fingerprints()) == before
        assert back.group.journal_replayed == 40
        # the recovered group keeps journaling new commands
        back.out(back.main_ts, "post", 1)
        assert back.inp(back.main_ts, "post", 1) is not None
        back.shutdown()

    def test_compacted_journal_restart(self, tmp_path):
        from repro.parallel import ThreadedReplicaRuntime

        d = str(tmp_path / "journal")
        rt = ThreadedReplicaRuntime(3, durable_dir=d)
        for i in range(50):
            rt.out(rt.main_ts, "j", i)
        rt.quiesce()
        assert rt.compact_journal() == [50]
        for i in range(5):
            rt.out(rt.main_ts, "delta", i)
        rt.quiesce()
        before = set(rt.fingerprints())
        rt.shutdown()

        back = ThreadedReplicaRuntime(3, durable_dir=d)
        back.quiesce()
        assert set(back.fingerprints()) == before
        # snapshot + 5 delta records, not the 50-command history
        assert back.group.journal_replayed == 6
        st = back.journal_status()[0]
        assert st["snapshot_slot"] == 50
        assert st["journal_slot"] == 55
        back.shutdown()

    def test_sharded_durable_restart(self, tmp_path):
        from repro.parallel import ThreadedReplicaRuntime

        d = str(tmp_path / "journal")
        rt = ThreadedReplicaRuntime(2, shards=2, durable_dir=d)
        for i in range(30):
            rt.out(rt.main_ts, "s", i)
        rt.quiesce()
        size = rt.space_size(rt.main_ts)
        before = set(rt.fingerprints())
        rt.shutdown()
        assert sorted(os.listdir(d)) == ["shard0", "shard1"]

        back = ThreadedReplicaRuntime(2, shards=2, durable_dir=d)
        back.quiesce()
        assert back.space_size(back.main_ts) == size == 30
        assert set(back.fingerprints()) == before
        assert len(back.journal_status()) == 2
        back.shutdown()

    def test_transfer_interrupted_by_second_crash_threaded(self):
        from repro.parallel import ThreadedReplicaRuntime

        rt = ThreadedReplicaRuntime(3)
        try:
            for i in range(150):
                rt.out(rt.main_ts, "item", i, "pad" * 20)
            rt.quiesce()
            g = rt.group
            g.transfer_chunk_bytes = 1024  # force a multi-chunk transfer
            monkey = ChaosMonkey(rt)
            g.crash_replica(2)  # first crash: the replica being recovered
            fired = monkey.kill_donor_mid_transfer(at_chunk=1)
            g.recover_replica(2)  # second crash fires mid-transfer
            donor = fired()
            assert donor is not None, "transfer finished before the kill"
            assert not g.alive[donor]  # the dead donor was declared
            rt.quiesce()
            assert g.converged()
            # the killed donor is itself recoverable afterwards
            g.recover_replica(donor)
            rt.quiesce()
            assert g.converged()
        finally:
            rt.shutdown()

    def test_transfer_interrupted_by_second_crash_multiproc(self):
        from repro.parallel import MultiprocessRuntime

        with MultiprocessRuntime(3) as rt:
            for i in range(100):
                rt.out(rt.main_ts, "item", i, "pad" * 20)
            rt.quiesce()
            g = rt.group
            g.transfer_chunk_bytes = 1024
            monkey = ChaosMonkey(rt)
            g.crash_replica(2)
            fired = monkey.kill_donor_mid_transfer(at_chunk=1)
            g.recover_replica(2)
            donor = fired()
            assert donor is not None
            assert not g.alive[donor]
            rt.quiesce()
            assert g.converged()
