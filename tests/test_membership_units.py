"""Focused membership-layer tests (leaders, dedup, views, gossip)."""

import pytest

from repro import formal
from repro.consul import ClusterConfig, SimCluster
from repro.consul.config import ConsulConfig
from repro.core.statemachine import FAILURE_TAG, HostFailed

LIMIT = 240_000_000.0


def make(n=3, seed=0, **consul):
    return SimCluster(
        ClusterConfig(n_hosts=n, seed=seed, consul=ConsulConfig(**consul))
    )


class TestLeadership:
    def test_announce_leader_is_lowest_unsuspected(self):
        c = make()
        m = c.membership(2)
        assert m.announce_leader() == 0
        m.suspected.add(0)
        assert m.announce_leader() == 1
        m.suspected.add(1)
        assert m.announce_leader() == 2

    def test_only_leader_announces(self):
        c = make(seed=3)
        c.run(until=200_000)
        # host 2 suspects host 1, but host 0 is the leader: host 2 stays quiet
        before = c.ordering(2).delivered_count
        m2 = c.membership(2)
        m2._suspect(1)
        assert 1 in m2.suspected
        c.run(until=c.sim.now + 300_000)
        # no HostFailed was ordered on host 2's initiative — host 1 is
        # still in everyone's view (host 0 has heard its heartbeats)
        assert 1 in c.membership(0).view
        # and host 2's wrongful suspicion self-heals via heartbeats
        assert 1 not in c.membership(2).suspected


class TestViewChanges:
    def test_duplicate_failure_announcements_ignored(self):
        c = make(seed=5)
        c.run(until=200_000)
        # deliver the same HostFailed twice through the order (two racing
        # announcers).  Host 2 is actually alive, so it will also
        # self-rejoin — the invariants are: ONE failure tuple (dedup) and
        # a clean readmission.
        c.ordering(0).broadcast(HostFailed(0, 0, 2))
        c.ordering(1).broadcast(HostFailed(0, 1, 2))
        c.run(until=c.sim.now + 3_000_000)
        tuples = c.replica(0).space_tuples(c.main_ts)
        assert sum(1 for t in tuples if t[0] == FAILURE_TAG) == 1
        assert sum(1 for t in tuples if t[0] == "ft_recovery") == 1
        assert 2 in c.membership(0).view  # self-rejoin readmitted it
        assert c.converged()

    def test_view_changes_counted(self):
        c = make(seed=7)
        c.run(until=200_000)
        assert c.membership(0).view_changes == 0
        c.crash(2)
        c.settle(2_000_000)
        assert c.membership(0).view_changes == 1
        c.recover(2)
        c.run_until(c.replica(2).recovered_event, limit=LIMIT)
        assert c.membership(0).view_changes == 2

    def test_failure_tuple_in_every_configured_space(self):
        # by default only MAIN_TS receives notifications
        c = make(seed=9)

        def prog(view):
            h = yield view.create_space("other")
            return h

        p = c.spawn(0, prog)
        c.run_until(p.finished, limit=LIMIT)
        h = p.finished.value
        c.crash(1)
        c.settle(2_000_000)
        assert c.replica(0).space_size(h) == 0  # not a failure space
        tuples = c.replica(0).space_tuples(c.main_ts)
        assert any(t[0] == FAILURE_TAG for t in tuples)


class TestGossip:
    def test_heartbeats_carry_high_watermark(self):
        c = make(seed=11)

        def writer(view):
            for i in range(4):
                yield view.out(view.main_ts, "x", i)

        p = c.spawn(0, writer)
        c.run_until(p.finished, limit=LIMIT)
        # after a heartbeat round, everyone's known_high reflects delivery
        c.run(until=c.sim.now + 100_000)
        highs = [c.ordering(h).known_high for h in range(3)]
        assert all(h >= 4 for h in highs)

    def test_lagging_host_catches_up_without_new_traffic(self):
        c = make(seed=13, suspect_timeout_us=100_000_000.0)  # no suspicion
        # host 2 goes deaf (NIC down) while traffic flows, then comes back:
        # with no *new* commands, only gossip can tell it that it lagged
        c.hosts[2].nic.up = False

        def writer(view):
            for i in range(5):
                yield view.out(view.main_ts, "x", i)

        p = c.spawn(0, writer)
        c.run_until(p.finished, limit=LIMIT)
        assert c.replica(2).space_size(c.main_ts) == 0
        c.hosts[2].nic.up = True
        c.run(until=c.sim.now + 2_000_000)  # heartbeats + NACK repair
        assert c.replica(2).space_size(c.main_ts) == 5
        assert c.converged()
