"""Integration tests for the simulated FT-Linda cluster.

These exercise the full stack the paper describes: the FT-Linda library
over Consul's ordered multicast and membership, over the (simulated)
Ethernet — including crash, takeover, recovery and state transfer.
"""

import pytest

from repro import AGS, FAILURE_TAG, Guard, Op, Resilience, Scope, formal, ref
from repro.consul import ClusterConfig, SimCluster
from repro.core.spaces import MAIN_TS

LIMIT = 60_000_000.0  # 60 virtual seconds


@pytest.fixture
def cluster():
    return SimCluster(ClusterConfig(n_hosts=3, seed=11))


def run_proc(cluster, host, genfn, *args):
    p = cluster.spawn(host, genfn, *args)
    cluster.run_until(p.finished, limit=LIMIT)
    if p.error is not None:
        raise p.error
    return p.finished.value


class TestBasicReplication:
    def test_out_replicates_everywhere(self, cluster):
        def prog(view):
            yield view.out(view.main_ts, "x", 1)

        run_proc(cluster, 0, prog)
        cluster.settle()
        for h in range(3):
            assert cluster.replica(h).space_size(MAIN_TS) == 1
        assert cluster.converged()

    def test_in_across_hosts(self, cluster):
        def waiter(view):
            t = yield view.in_(view.main_ts, "d", formal(int))
            return t

        def sender(view):
            yield view.out(view.main_ts, "d", 5)

        pw = cluster.spawn(0, waiter)
        cluster.run(until=200_000)
        cluster.spawn(2, sender)
        cluster.run_until(pw.finished, limit=LIMIT)
        assert pw.finished.value == ("d", 5)

    def test_atomic_increment_from_many_hosts(self, cluster):
        def incr(view, n):
            for _ in range(n):
                yield view.execute(AGS.single(
                    Guard.in_(view.main_ts, "c", formal(int, "v")),
                    [Op.out(view.main_ts, "c", ref("v") + 1)],
                ))

        def init(view):
            yield view.out(view.main_ts, "c", 0)

        run_proc(cluster, 0, init)
        procs = [cluster.spawn(h, incr, 10) for h in range(3)]
        cluster.run_until_all(procs, limit=LIMIT)
        cluster.settle()
        tuples = cluster.replica(1).space_tuples(MAIN_TS)
        assert ("c", 30) in tuples
        assert cluster.converged()

    def test_strong_inp_semantics(self, cluster):
        def prog(view):
            miss = yield view.inp(view.main_ts, "zzz", formal(int))
            yield view.out(view.main_ts, "zzz", 1)
            hit = yield view.inp(view.main_ts, "zzz", formal(int))
            return miss, hit

        miss, hit = run_proc(cluster, 1, prog)
        assert miss is None
        assert hit == ("zzz", 1)

class TestMessageCounting:
    """The paper's headline property: one multicast message per AGS.

    These clusters use a heartbeat period longer than the test horizon so
    the only frames on the wire are the ordering protocol's own.
    """

    def make_quiet_cluster(self):
        # heartbeat period longer than the test horizon: no chatter at all
        from repro.consul.config import ConsulConfig

        cfg = ClusterConfig(
            n_hosts=3,
            seed=2,
            consul=ConsulConfig(
                hb_interval_us=10_000_000.0, suspect_timeout_us=40_000_000.0
            ),
        )
        return SimCluster(cfg)

    def test_ags_from_sequencer_is_one_broadcast(self):
        c = self.make_quiet_cluster()

        def prog(view):
            yield view.out(view.main_ts, "x", 1)

        p = c.spawn(0, prog)
        c.run_until(p.finished, limit=LIMIT)
        s = c.segment.stats
        assert s.broadcast_frames == 1
        assert s.unicast_frames == 0

    def test_ags_from_non_sequencer_is_req_plus_broadcast(self):
        c = self.make_quiet_cluster()

        def prog(view):
            yield view.out(view.main_ts, "x", 1)

        p = c.spawn(2, prog)
        c.run_until(p.finished, limit=LIMIT)
        s = c.segment.stats
        assert s.broadcast_frames == 1
        assert s.unicast_frames == 1  # the REQ to the sequencer

    def test_n_op_ags_still_one_broadcast(self):
        c = self.make_quiet_cluster()

        def prog(view):
            ops = [Op.out(view.main_ts, "t", i) for i in range(10)]
            yield view.execute(AGS.atomic(*ops))

        p = c.spawn(0, prog)
        c.run_until(p.finished, limit=LIMIT)
        assert c.segment.stats.broadcast_frames == 1


class TestFailure:
    def test_failure_tuple_deposited_once(self, cluster):
        def watch(view):
            t = yield view.in_(view.main_ts, FAILURE_TAG, formal(int))
            return t

        p = cluster.spawn(0, watch)
        cluster.run(until=300_000)
        cluster.crash(2)
        cluster.run_until(p.finished, limit=LIMIT)
        assert p.finished.value == (FAILURE_TAG, 2)
        cluster.settle(2_000_000)
        # exactly one failure tuple was deposited (it was consumed above)
        assert cluster.replica(0).space_size(MAIN_TS) == 0

    def test_crashed_hosts_blocked_statement_dropped(self, cluster):
        def waiter(view):
            yield view.in_(view.main_ts, "never", formal(int))

        cluster.spawn(2, waiter)
        cluster.run(until=300_000)
        assert len(cluster.replica(0).sm.blocked) == 1
        cluster.crash(2)
        cluster.settle(2_000_000)
        assert len(cluster.replica(0).sm.blocked) == 0

    def test_sequencer_crash_takeover(self):
        c = SimCluster(ClusterConfig(n_hosts=4, seed=3))

        def producer(view, tag, n):
            for i in range(n):
                yield view.out(view.main_ts, tag, i)

        p1 = c.spawn(1, producer, "a", 8)
        p2 = c.spawn(3, producer, "b", 8)
        c.run(until=30_000)
        c.crash(0)  # the sequencer
        c.run_until_all([p1, p2], limit=LIMIT)
        c.settle(2_000_000)
        assert c.converged()
        live = c.live_hosts()
        assert all(sorted(c.membership(h).view) == [1, 2, 3] for h in live)
        # all 16 producer tuples plus exactly one failure tuple
        assert c.replica(1).space_size(MAIN_TS) == 17

    def test_client_crash_mid_request_no_corruption(self, cluster):
        def spam(view):
            for i in range(100):
                yield view.out(view.main_ts, "s", i)

        cluster.spawn(1, spam)
        cluster.run(until=20_000)
        cluster.crash(1)
        cluster.settle(3_000_000)
        assert cluster.converged()


class TestRecovery:
    def test_state_transfer_restores_everything(self, cluster):
        def writer(view, n):
            for i in range(n):
                yield view.out(view.main_ts, "x", i)

        run_proc(cluster, 0, writer, 3)
        cluster.crash(2)
        cluster.settle(2_000_000)
        run_proc(cluster, 0, writer, 4)  # written while 2 is down
        cluster.recover(2)
        r2 = cluster.replica(2)
        cluster.run_until(r2.recovered_event, limit=LIMIT)
        cluster.settle(2_000_000)
        assert not r2.recovering
        assert cluster.converged()
        assert r2.space_size(MAIN_TS) == cluster.replica(0).space_size(MAIN_TS)

    def test_recovered_host_can_issue_requests(self, cluster):
        cluster.crash(1)
        cluster.settle(2_000_000)
        cluster.recover(1)
        r1 = cluster.replica(1)
        cluster.run_until(r1.recovered_event, limit=LIMIT)

        def prog(view):
            yield view.out(view.main_ts, "back", 1)
            t = yield view.in_(view.main_ts, "back", formal(int))
            return t

        assert run_proc(cluster, 1, prog) == ("back", 1)
        cluster.settle()
        assert cluster.converged()

    def test_recovery_tuple_deposited(self, cluster):
        cluster.crash(2)
        cluster.settle(2_000_000)
        cluster.recover(2)

        def watch(view):
            t = yield view.in_(view.main_ts, "ft_recovery", formal(int))
            return t

        p = cluster.spawn(0, watch)
        cluster.run_until(p.finished, limit=LIMIT)
        assert p.finished.value == ("ft_recovery", 2)

    def test_blocked_statements_survive_recovery_of_other_host(self, cluster):
        def waiter(view):
            t = yield view.in_(view.main_ts, "later", formal(int))
            return t

        p = cluster.spawn(0, waiter)
        cluster.run(until=300_000)
        cluster.crash(2)
        cluster.settle(2_000_000)
        cluster.recover(2)
        r2 = cluster.replica(2)
        cluster.run_until(r2.recovered_event, limit=LIMIT)
        # recovered replica knows about the parked statement via snapshot
        assert len(r2.sm.blocked) == 1

        def sender(view):
            yield view.out(view.main_ts, "later", 7)

        cluster.spawn(1, sender)
        cluster.run_until(p.finished, limit=LIMIT)
        assert p.finished.value == ("later", 7)
        cluster.settle()
        assert cluster.converged()


class TestSpacesDistributed:
    def test_stable_space_created_on_all_replicas(self, cluster):
        def prog(view):
            h = yield view.create_space("jobs")
            yield view.out(h, "j", 1)
            return h

        h = run_proc(cluster, 0, prog)
        cluster.settle()
        for host in range(3):
            assert cluster.replica(host).space_size(h) == 1

    def test_volatile_space_is_host_local_and_free(self, cluster):
        baseline = cluster.segment.stats.frames

        def prog(view):
            h = yield view.create_space("scratch", Resilience.VOLATILE)
            yield view.out(h, "v", 1)
            t = yield view.in_(h, "v", formal(int))
            return h, t

        h, t = run_proc(cluster, 1, prog)
        assert t == ("v", 1)
        # volatile traffic generates no frames beyond membership chatter
        from repro.consul.network import BROADCAST  # noqa: F401

        data_frames = cluster.segment.stats.frames - baseline
        # allow heartbeat frames only: none of them are unicast REQs
        assert cluster.segment.stats.unicast_frames == 0
        assert cluster.replica(1).volatile.registry.exists(h)
        assert not cluster.replica(0).volatile.registry.exists(h)

    def test_mixed_domain_ags_rejected(self, cluster):
        from repro import AGSError

        def prog(view):
            vol = yield view.create_space("v", Resilience.VOLATILE)
            try:
                yield view.execute(AGS.atomic(
                    Op.out(view.main_ts, "a", 1), Op.out(vol, "b", 2)
                ))
            except AGSError:
                return "rejected"
            return "accepted"

        assert run_proc(cluster, 0, prog) == "rejected"

    def test_volatile_spaces_die_with_host(self, cluster):
        def prog(view):
            h = yield view.create_space("scratch", Resilience.VOLATILE)
            yield view.out(h, "v", 1)
            return h

        h = run_proc(cluster, 1, prog)
        assert cluster.replica(1).volatile.registry.exists(h)
        cluster.crash(1)
        cluster.settle(2_000_000)
        cluster.recover(1)
        cluster.run_until(cluster.replica(1).recovered_event, limit=LIMIT)
        assert not cluster.replica(1).volatile.registry.exists(h)


class TestDeterminism:
    def test_same_seed_same_history(self):
        def scenario(seed):
            c = SimCluster(ClusterConfig(n_hosts=3, seed=seed))

            def writer(view, tag):
                for i in range(5):
                    yield view.out(view.main_ts, tag, i)

            procs = [c.spawn(h, writer, f"t{h}") for h in range(3)]
            c.run(until=100_000)
            c.crash(2)
            c.run_until_all([p for p in procs[:2]], limit=LIMIT)
            c.settle(2_000_000)
            return (
                c.replica(0).stable_fingerprint(),
                c.segment.stats.snapshot(),
                c.sim.now,
            )

        assert scenario(9) == scenario(9)
