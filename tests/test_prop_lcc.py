"""Property-based robustness tests for the FT-lcc front end.

A compiler's first obligation is to never die ungracefully: every input,
however mangled, either compiles or raises :class:`CompileError` with a
position.  Hypothesis feeds the lexer/parser/compiler garbage, truncated
valid programs, and randomized valid statements.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import CompileError, LocalRuntime, formal
from repro.core.spaces import MAIN_TS
from repro.lcc import compile_ags, parse_ags, print_ags, tokenize

SPACES = {"main": MAIN_TS}
NAMES = {MAIN_TS: "main"}


@given(st.text(max_size=80))
@settings(max_examples=300, deadline=None)
def test_lexer_total(text):
    """tokenize() either returns tokens or raises CompileError — only."""
    try:
        tokens = tokenize(text)
    except CompileError:
        return
    # positions are sane and non-decreasing in document order
    last = (1, 0)
    for t in tokens:
        assert t.line >= 1 and t.column >= 1
        assert (t.line, t.column) > last or t.line > last[0]
        last = (t.line, t.column)


@given(st.text(max_size=60))
@settings(max_examples=300, deadline=None)
def test_compiler_total_on_garbage(text):
    """compile_ags on arbitrary text never raises anything else."""
    try:
        compile_ags(text, SPACES)
    except CompileError:
        pass


VALID = '< in(main, "count", ?old:int) => out(main, "count", old + 1) >'


@given(st.integers(min_value=0, max_value=len(VALID) - 1))
@settings(max_examples=80, deadline=None)
def test_truncations_fail_cleanly(cut):
    """Every prefix of a valid statement fails with CompileError (or
    compiles, for the rare prefix that is itself well-formed)."""
    try:
        compile_ags(VALID[:cut], SPACES)
    except CompileError:
        pass


_chan = st.sampled_from(["a", "bb", "chan_3"])
_vals = st.one_of(
    st.integers(-99, 99),
    st.floats(min_value=0.25, max_value=8.0).map(lambda f: round(f, 2)),
    st.sampled_from(['"s"', '"two words"', "true", "false"]),
)


@st.composite
def statement_text(draw):
    """Randomized well-formed statement text."""
    ch = draw(_chan)
    kind = draw(st.sampled_from(["out", "incr", "disj", "move"]))
    if kind == "out":
        v = draw(_vals)
        return f'out(main, "{ch}", {v})'
    if kind == "incr":
        d = draw(st.integers(1, 9))
        return (f'< in(main, "{ch}", ?v:int) => '
                f'out(main, "{ch}", v + {d}) >')
    if kind == "disj":
        return (f'< inp(main, "{ch}", ?v:int) => out(main, "got", v) '
                f"or true => out(main, \"idle\", 1) >")
    return f'< true => move(main, main, "{ch}", ?:int) >'


@given(statement_text())
@settings(max_examples=150, deadline=None)
def test_valid_statements_compile_and_roundtrip(src):
    ags = compile_ags(src, SPACES)
    assert compile_ags(print_ags(ags, NAMES), SPACES) == ags


@given(statement_text())
@settings(max_examples=60, deadline=None)
def test_whitespace_and_comments_invariance(src):
    """Extra whitespace/newlines/comments never change the compilation."""
    import re

    spaced = re.sub(r", ", " ,\n   ", src) + "  # trailing comment"
    assert compile_ags(spaced, SPACES) == compile_ags(src, SPACES)


def test_compiled_random_statement_executes():
    rt = LocalRuntime()
    rt.out(MAIN_TS, "a", 1)
    ags = compile_ags('< in(main, "a", ?v:int) => out(main, "a", v + 1) >',
                      SPACES)
    assert rt.execute(ags).succeeded
    assert rt.rd(MAIN_TS, "a", formal(int)) == ("a", 2)
