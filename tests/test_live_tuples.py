"""Live tuples: the original Linda eval semantics (Gelernter 1985)."""

import threading
import time

import pytest

from repro import AGSError, LocalRuntime, formal
from repro.core.spaces import MAIN_TS
from repro.parallel import ThreadedReplicaRuntime


@pytest.fixture
def rt():
    return LocalRuntime()


class TestLiveTuples:
    def test_plain_values_deposit_immediately(self, rt):
        h = rt.eval_out(MAIN_TS, "point", 1, 2)
        assert h.join(timeout=10) == ("point", 1, 2)
        assert rt.rd(MAIN_TS, "point", formal(int), formal(int)) == ("point", 1, 2)

    def test_callable_fields_computed_concurrently(self, rt):
        gate = threading.Barrier(2, timeout=5)

        def left():
            gate.wait()  # both computations must be running at once
            return 6 * 7

        def right():
            gate.wait()
            return "done"

        h = rt.eval_out(MAIN_TS, "result", left, right)
        assert h.join(timeout=10) == ("result", 42, "done")

    def test_tuple_invisible_until_all_fields_resolve(self, rt):
        release = threading.Event()

        def slow():
            release.wait(5)
            return 1

        rt.eval_out(MAIN_TS, "slow", slow)
        time.sleep(0.05)
        # still active: not matchable
        assert rt.rdp(MAIN_TS, "slow", formal(int)) is None
        release.set()
        assert rt.in_(MAIN_TS, "slow", formal(int), timeout=10) == ("slow", 1)

    def test_classic_fibonacci_tree(self, rt):
        # eval-style recursive fib, the canonical 1985 demo
        def fib(n):
            if n < 2:
                return n
            rt.eval_out(MAIN_TS, "fib", n - 1, lambda: fib(n - 1))
            rt.eval_out(MAIN_TS, "fib", n - 2, lambda: fib(n - 2))
            a = rt.in_(MAIN_TS, "fib", n - 1, formal(int), timeout=30)[2]
            b = rt.in_(MAIN_TS, "fib", n - 2, formal(int), timeout=30)[2]
            return a + b

        assert fib(8) == 21

    def test_formals_rejected(self, rt):
        with pytest.raises(AGSError):
            rt.eval_out(MAIN_TS, "bad", formal(int))

    def test_callable_returning_invalid_value_fails_join(self, rt):
        h = rt.eval_out(MAIN_TS, "bad", lambda: [1, 2])
        with pytest.raises(Exception):
            h.join(timeout=10)
        assert rt.rdp(MAIN_TS, "bad", formal()) is None  # nothing deposited

    def test_on_replicated_backend(self):
        rt = ThreadedReplicaRuntime(n_replicas=2)
        try:
            h = rt.eval_out(rt.main_ts, "r", lambda: 5 * 5)
            assert h.join(timeout=10) == ("r", 25)
            rt.quiesce()
            assert rt.converged()
        finally:
            rt.shutdown()
