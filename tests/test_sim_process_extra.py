"""Additional coverage for sim processes and the xkernel header model."""

import pytest

from repro.sim import SimProcess, Simulator, hold
from repro.sim.process import spawn
from repro.xkernel.message import Message, payload_size


class TestSpawnHelper:
    def test_spawn_runs(self):
        sim = Simulator()

        def gen():
            yield hold(5)
            return "done"

        p = spawn(sim, gen(), name="helper")
        assert sim.run_until_event(p.finished) == "done"
        assert p.name == "helper"

    def test_chained_joins(self):
        sim = Simulator()

        def leaf(v):
            yield hold(1)
            return v

        def mid():
            a = yield spawn(sim, leaf(1))
            b = yield spawn(sim, leaf(2))
            return a + b

        def root():
            total = yield spawn(sim, mid())
            return total * 10

        p = spawn(sim, root())
        assert sim.run_until_event(p.finished) == 30

    def test_join_already_finished_process(self):
        sim = Simulator()

        def quick():
            return 7
            yield  # pragma: no cover - makes it a generator

        q = spawn(sim, quick())
        sim.run()
        assert q.finished.triggered

        def late():
            v = yield q
            return v + 1

        p = spawn(sim, late())
        assert sim.run_until_event(p.finished) == 8

    def test_kill_is_idempotent(self):
        sim = Simulator()

        def forever():
            while True:
                yield hold(10)

        p = spawn(sim, forever())
        sim.run(until=25)
        p.kill()
        p.kill()  # second kill is a no-op
        assert not p.alive

    def test_exception_from_joined_process_chains(self):
        sim = Simulator()

        def bad():
            yield hold(1)
            raise KeyError("inner")

        def outer():
            try:
                yield spawn(sim, bad())
            except KeyError:
                return "caught"

        p = spawn(sim, outer())
        assert sim.run_until_event(p.finished) == "caught"


class TestMessageSizes:
    def test_header_sizes_accumulate_and_release(self):
        m = Message("payload")
        base = m.size
        m.push_header("a", ("H", 1), size=10)
        m.push_header("b", ("H", 2), size=20)
        assert m.size == base + 30
        m.pop_header("b")
        assert m.size == base + 10

    def test_auto_header_size_uses_pickle(self):
        m = Message("p")
        m.push_header("a", ("some", "header"))
        assert m.size == payload_size("p") + payload_size(("some", "header"))

    def test_peek_does_not_remove(self):
        m = Message("p")
        m.push_header("a", 1)
        assert m.peek_header("a") == 1
        assert m.pop_header("a") == 1
        with pytest.raises(ValueError):
            m.pop_header("a")
