"""Unit tests for AGS construction, operands and validation."""

import pytest

from repro import (
    AGS,
    AGSError,
    Branch,
    Const,
    Expr,
    FormalBindingError,
    Guard,
    NotDeterministicError,
    Op,
    OpCode,
    formal,
    ref,
    register_function,
)
from repro.core.ags import as_operand
from repro.core.spaces import MAIN_TS


class TestOperands:
    def test_const_evaluates_to_itself(self):
        assert Const(5).evaluate({}) == 5

    def test_const_rejects_invalid_values(self):
        with pytest.raises(AGSError):
            Const([1, 2])

    def test_formal_ref_reads_env(self):
        assert ref("x").evaluate({"x": 9}) == 9

    def test_formal_ref_unbound_raises(self):
        with pytest.raises(FormalBindingError):
            ref("x").evaluate({})

    def test_operator_sugar_builds_exprs(self):
        e = ref("x") + 1
        assert isinstance(e, Expr)
        assert e.evaluate({"x": 4}) == 5

    def test_arithmetic_suite(self):
        env = {"a": 7, "b": 2}
        assert (ref("a") - ref("b")).evaluate(env) == 5
        assert (ref("a") * ref("b")).evaluate(env) == 14
        assert (ref("a") // ref("b")).evaluate(env) == 3
        assert (ref("a") % ref("b")).evaluate(env) == 1
        assert (ref("a") / ref("b")).evaluate(env) == 3.5
        assert (-ref("a")).evaluate(env) == -7
        assert (1 + ref("b")).evaluate(env) == 3
        assert (10 - ref("b")).evaluate(env) == 8

    def test_free_names(self):
        e = (ref("x") + ref("y")) * 2
        assert e.free_names() == {"x", "y"}

    def test_unregistered_function_rejected(self):
        with pytest.raises(NotDeterministicError):
            Expr("launch_missiles", (Const(1),))

    def test_register_function(self):
        register_function("double_for_test", lambda v: v * 2)
        assert Expr("double_for_test", (Const(4),)).evaluate({}) == 8

    def test_register_duplicate_rejected(self):
        with pytest.raises(AGSError):
            register_function("add", lambda a, b: a + b)

    def test_as_operand_coercion(self):
        assert isinstance(as_operand(3), Const)
        r = ref("v")
        assert as_operand(r) is r


class TestOp:
    def test_out_rejects_formals(self):
        with pytest.raises(AGSError):
            Op.out(MAIN_TS, "x", formal(int))

    def test_move_requires_destination(self):
        with pytest.raises(AGSError):
            Op(OpCode.MOVE, MAIN_TS, ("x",))

    def test_single_ts_ops_reject_destination(self):
        with pytest.raises(AGSError):
            Op(OpCode.OUT, MAIN_TS, ("x",), ts2=MAIN_TS)

    def test_move_rejects_named_formals(self):
        with pytest.raises(AGSError):
            Op.move(MAIN_TS, MAIN_TS, "x", formal(int, "v"))

    def test_ops_need_fields(self):
        with pytest.raises(AGSError):
            Op.out(MAIN_TS)

    def test_binds_lists_named_formals(self):
        op = Op.in_(MAIN_TS, "t", formal(int, "a"), formal(str), formal(float, "b"))
        assert op.binds() == ("a", "b")

    def test_reads_collects_operand_names(self):
        op = Op.out(MAIN_TS, "t", ref("a") + ref("b"))
        assert op.reads() == {"a", "b"}

    def test_resolve_pattern_and_values(self):
        op = Op.in_(MAIN_TS, "t", ref("k"), formal(int, "v"))
        pat = op.resolve_pattern({"k": 5})
        assert pat.fields[1] == 5
        out = Op.out(MAIN_TS, "t", ref("v") + 1)
        assert out.resolve_values({"v": 9}) == ("t", 10)


class TestGuard:
    def test_true_guard(self):
        g = Guard.true()
        assert not g.blocking
        assert g.binds() == ()

    def test_in_guard_blocking(self):
        assert Guard.in_(MAIN_TS, "x", formal(int)).blocking
        assert Guard.rd(MAIN_TS, "x").blocking

    def test_probe_guards_not_blocking(self):
        assert not Guard.inp(MAIN_TS, "x").blocking
        assert not Guard.rdp(MAIN_TS, "x").blocking

    def test_out_cannot_guard(self):
        with pytest.raises(AGSError):
            Guard(Guard.true().kind.__class__.OP, Op.out(MAIN_TS, "x"))


class TestBranchValidation:
    def test_body_can_use_guard_formals(self):
        b = Branch(
            Guard.in_(MAIN_TS, "c", formal(int, "v")),
            [Op.out(MAIN_TS, "c", ref("v") + 1)],
        )
        assert b.body[0].reads() == {"v"}

    def test_body_unbound_formal_rejected(self):
        with pytest.raises(FormalBindingError):
            Branch(Guard.true(), [Op.out(MAIN_TS, "c", ref("nope"))])

    def test_guard_cannot_reference_formals(self):
        with pytest.raises(FormalBindingError):
            Branch(Guard.in_(MAIN_TS, "c", ref("x")), [])

    def test_body_in_binds_for_later_ops(self):
        b = Branch(
            Guard.true(),
            [
                Op.in_(MAIN_TS, "a", formal(int, "x")),
                Op.out(MAIN_TS, "b", ref("x")),
            ],
        )
        assert len(b.body) == 2

    def test_rebinding_rejected(self):
        with pytest.raises(AGSError):
            Branch(
                Guard.in_(MAIN_TS, "a", formal(int, "x")),
                [Op.in_(MAIN_TS, "b", formal(int, "x"))],
            )

    def test_use_before_bind_in_body_rejected(self):
        with pytest.raises(FormalBindingError):
            Branch(
                Guard.true(),
                [
                    Op.out(MAIN_TS, "b", ref("x")),
                    Op.in_(MAIN_TS, "a", formal(int, "x")),
                ],
            )


class TestAGS:
    def test_needs_a_branch(self):
        with pytest.raises(AGSError):
            AGS([])

    def test_blocking_iff_all_guards_blocking(self):
        blocking = AGS.single(Guard.in_(MAIN_TS, "x"))
        assert blocking.blocking
        probing = AGS([
            Branch(Guard.in_(MAIN_TS, "x"), []),
            Branch(Guard.true(), []),
        ])
        assert not probing.blocking
        assert not AGS.single(Guard.inp(MAIN_TS, "x")).blocking

    def test_atomic_constructor(self):
        a = AGS.atomic(Op.out(MAIN_TS, "x", 1), Op.out(MAIN_TS, "y", 2))
        assert len(a.branches) == 1
        assert a.branches[0].guard.kind.value == "true"

    def test_bound_names(self):
        a = AGS.single(
            Guard.in_(MAIN_TS, "t", formal(int, "a")),
            [Op.in_(MAIN_TS, "u", formal(str, "b"))],
        )
        assert a.bound_names(0) == ("a", "b")

    def test_value_equality(self):
        mk = lambda: AGS.single(
            Guard.in_(MAIN_TS, "c", formal(int, "v")),
            [Op.out(MAIN_TS, "c", ref("v") + 1)],
        )
        assert mk() == mk()
        assert hash(mk()) == hash(mk())

    def test_picklable(self):
        import pickle

        a = AGS.single(
            Guard.in_(MAIN_TS, "c", formal(int, "v")),
            [Op.out(MAIN_TS, "c", ref("v") + 1)],
        )
        b = pickle.loads(pickle.dumps(a))
        assert b == a
