"""Tests for the consensus and ordered-stream paradigms."""

import threading

import pytest

from repro import LocalRuntime, formal
from repro.paradigms import Consensus, TupleStream


@pytest.fixture
def rt():
    return LocalRuntime()


class TestConsensus:
    def test_single_proposer_decides_own_value(self, rt):
        c = Consensus(rt.main_ts, "k")
        assert c.agree(rt, pid=1, value="alpha") == "alpha"
        assert c.decided_value(rt) == "alpha"

    def test_agreement_among_concurrent_proposers(self, rt):
        c = Consensus(rt.main_ts, "k")
        decided = {}
        barrier = threading.Barrier(5)

        def participant(proc, pid):
            barrier.wait()
            decided[pid] = c.agree(proc, pid, f"value-{pid}")

        handles = [rt.eval_(participant, i) for i in range(5)]
        for h in handles:
            h.join(timeout=30)
        values = set(decided.values())
        assert len(values) == 1  # agreement
        assert values.pop() in {f"value-{i}" for i in range(5)}  # validity

    def test_late_joiner_sees_decision(self, rt):
        c = Consensus(rt.main_ts, "k")
        c.agree(rt, 1, 42)
        # a late participant proposes something else: decision unchanged
        assert c.agree(rt, 2, 99) == 42

    def test_decide_blocks_until_some_proposal(self, rt):
        c = Consensus(rt.main_ts, "k")
        out = []

        def waiter(proc):
            out.append(c.decide(proc))

        h = rt.eval_(waiter)
        import time

        time.sleep(0.05)
        assert out == []  # nothing to decide on yet
        c.propose(rt, 7, "late")
        h.join(timeout=30)
        assert out == ["late"]

    def test_crash_of_decider_candidate_harmless(self, rt):
        # proposer 1 deposits and "crashes" (never calls decide);
        # proposer 2 still reaches a decision — possibly adopting 1's value
        c = Consensus(rt.main_ts, "k")
        c.propose(rt, 1, "from-the-dead")
        got = c.agree(rt, 2, "alive")
        assert got in ("from-the-dead", "alive")
        assert c.decided_value(rt) == got

    def test_independent_instances(self, rt):
        a = Consensus(rt.main_ts, "a")
        b = Consensus(rt.main_ts, "b")
        assert a.agree(rt, 1, "A") == "A"
        assert b.agree(rt, 1, "B") == "B"


class TestTupleStream:
    def test_fifo_single_producer_consumer(self, rt):
        s = TupleStream(rt.main_ts, "s")
        s.create(rt)
        for i in range(5):
            assert s.append(rt, i * 10) == i
        assert [s.pop(rt) for _ in range(5)] == [0, 10, 20, 30, 40]
        assert s.length(rt) == 0

    def test_try_pop_empty(self, rt):
        s = TupleStream(rt.main_ts, "s")
        s.create(rt)
        assert s.try_pop(rt) is None
        s.append(rt, "x")
        assert s.try_pop(rt) == "x"
        assert s.try_pop(rt) is None

    def test_blocking_pop_waits_for_producer(self, rt):
        s = TupleStream(rt.main_ts, "s")
        s.create(rt)
        got = []

        def consumer(proc):
            got.append(s.pop(proc))

        h = rt.eval_(consumer)
        import time

        time.sleep(0.05)
        assert got == []
        s.append(rt, "finally")
        h.join(timeout=30)
        assert got == ["finally"]

    def test_multi_producer_multi_consumer_exactly_once(self, rt):
        s = TupleStream(rt.main_ts, "s")
        s.create(rt)
        n_items = 60
        results = []
        lock = threading.Lock()

        def producer(proc, base):
            for i in range(n_items // 3):
                s.append(proc, base + i)

        def consumer(proc, count):
            for _ in range(count):
                v = s.pop(proc)
                with lock:
                    results.append(v)

        producers = [rt.eval_(producer, b) for b in (0, 100, 200)]
        consumers = [rt.eval_(consumer, n_items // 3) for _ in range(3)]
        for h in producers + consumers:
            h.join(timeout=60)
        assert len(results) == n_items
        assert len(set(results)) == n_items  # exactly once, no duplicates
        assert s.length(rt) == 0

    def test_ordering_preserved_per_append_order(self, rt):
        # appends are serialized by the tail counter: pops see global order
        s = TupleStream(rt.main_ts, "s")
        s.create(rt)
        for i in range(10):
            s.append(rt, i)
        popped = [s.pop(rt) for _ in range(10)]
        assert popped == sorted(popped)

    def test_peek_range(self, rt):
        s = TupleStream(rt.main_ts, "s")
        s.create(rt)
        s.append(rt, "a")
        s.append(rt, "b")
        s.pop(rt)
        assert s.peek_range(rt) == (1, 2)
        assert s.length(rt) == 1

    def test_two_streams_independent(self, rt):
        a = TupleStream(rt.main_ts, "a")
        b = TupleStream(rt.main_ts, "b")
        a.create(rt)
        b.create(rt)
        a.append(rt, 1)
        b.append(rt, 2)
        assert a.pop(rt) == 1
        assert b.pop(rt) == 2
