"""Protocol-level tests for the total-order layers (sequencer + token).

These drive the ordering machinery through its unhappy paths: lossy
links, duplicate suppression, gap repair via NACK, sequencer takeover
sync, token regeneration — the machinery the paper gets from Consul and
relies on for the single-multicast design to be *reliable*, not just
fast.
"""

import pytest

from repro import formal
from repro.consul import ClusterConfig, SimCluster
from repro.consul.config import ConsulConfig
from repro.core.spaces import MAIN_TS

LIMIT = 240_000_000.0


def writer(view, tag, n):
    for i in range(n):
        yield view.out(view.main_ts, tag, i)


def make(n_hosts=3, seed=0, loss=0.0, ordering="sequencer", **consul):
    cfg = ClusterConfig(
        n_hosts=n_hosts,
        seed=seed,
        ordering=ordering,
        loss_probability=loss,
        consul=ConsulConfig(**consul),
    )
    return SimCluster(cfg)


class TestLossRecovery:
    @pytest.mark.parametrize("loss", [0.02, 0.10])
    def test_nack_repair_delivers_everything(self, loss):
        c = make(seed=13, loss=loss)
        procs = [c.spawn(h, writer, f"t{h}", 10) for h in range(3)]
        c.run_until_all(procs, limit=LIMIT)
        c.settle(5_000_000)
        assert c.converged()
        assert c.replica(0).space_size(MAIN_TS) == 30

    def test_total_order_identical_under_loss(self):
        c = make(seed=99, loss=0.05)
        procs = [c.spawn(h, writer, f"t{h}", 8) for h in range(3)]
        c.run_until_all(procs, limit=LIMIT)
        c.settle(5_000_000)
        logs = [c.ordering(h).next_deliver for h in range(3)]
        assert len(set(logs)) == 1  # all delivered the same prefix length
        assert c.converged()

    def test_duplicate_suppression_under_retransmission(self):
        # aggressive client retransmission under heavy loss: duplicates
        # must never double-apply.  (At 15% loss the failure detector also
        # churns — hosts get falsely excluded and rejoin — so the exact
        # invariant is exactly-once delivery of the client's tuples, not a
        # quiet membership.)
        c = make(seed=5, loss=0.15, retrans_timeout_us=10_000.0)
        p = c.spawn(2, writer, "x", 10)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(8_000_000)
        for h in range(3):
            r = c.replica(h)
            if r.recovering:
                continue  # mid-rejoin: judged by its post-snapshot state
            xs = sorted(
                t[1] for t in r.space_tuples(MAIN_TS) if t[0] == "x"
            )
            assert xs == list(range(10)), f"host {h}: {xs}"

    def test_false_exclusion_rejoins_automatically(self):
        # a detector mistake (not a partition): host 1 wrongly suspects
        # host 0 and orders its exclusion.  Host 0 — alive and connected —
        # delivers its own failure notice and must rejoin by itself.
        c = make(seed=6)
        p = c.spawn(1, writer, "pre", 3)
        c.run_until(p.finished, limit=LIMIT)
        c.membership(1)._suspect(0)  # inject the false suspicion
        c.run(until=c.sim.now + 2_000_000)
        assert 0 in c.membership(1).view  # ...readmitted by now
        assert not c.replica(0).recovering
        p = c.spawn(0, writer, "post", 3)  # and fully operational
        c.run_until(p.finished, limit=LIMIT)
        c.settle(2_000_000)
        assert c.converged()


class TestTakeover:
    def test_takeover_sync_continues_numbering(self):
        c = make(n_hosts=4, seed=21)
        p = c.spawn(1, writer, "pre", 5)
        c.run_until(p.finished, limit=LIMIT)
        before = c.ordering(1).next_deliver
        c.crash(0)
        c.settle(2_000_000)
        p = c.spawn(1, writer, "post", 5)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(2_000_000)
        assert c.ordering(1).next_deliver > before
        assert c.converged()
        # every pre and post tuple exists exactly once
        live = c.live_hosts()
        tuples = c.replica(live[0]).space_tuples(MAIN_TS)
        assert sum(1 for t in tuples if t[0] == "pre") == 5
        assert sum(1 for t in tuples if t[0] == "post") == 5

    def test_in_flight_request_survives_sequencer_crash(self):
        # the crash lands between REQ and ORD: client retransmits to the
        # new sequencer, dedup guarantees exactly-once
        c = make(n_hosts=3, seed=8, retrans_timeout_us=30_000.0)
        p = c.spawn(2, writer, "x", 1)
        c.sim.run(until=c.sim.now + 100.0)  # REQ is on the wire / queued
        c.crash(0)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(3_000_000)
        assert c.converged()
        tuples = c.replica(1).space_tuples(MAIN_TS)
        assert sum(1 for t in tuples if t[0] == "x") == 1

    def test_double_takeover(self):
        c = make(n_hosts=4, seed=31)
        p1 = c.spawn(3, writer, "a", 12)
        c.run(until=30_000)
        c.crash(0)
        c.run(until=c.sim.now + 500_000)
        c.crash(1)
        c.run_until(p1.finished, limit=LIMIT)
        c.settle(3_000_000)
        assert c.converged()
        assert c.ordering(2).sequencer() == 2


class TestTokenRing:
    def test_basic_replication(self):
        c = make(seed=3, ordering="token")
        procs = [c.spawn(h, writer, f"t{h}", 5) for h in range(3)]
        c.run_until_all(procs, limit=LIMIT)
        c.settle(2_000_000)
        assert c.converged()
        assert c.replica(0).space_size(MAIN_TS) == 15

    def test_token_regenerated_after_holder_crash(self):
        c = make(seed=7, ordering="token")
        p = c.spawn(1, writer, "pre", 3)
        c.run_until(p.finished, limit=LIMIT)
        c.crash(0)  # whoever holds/receives the token soon, ring heals
        p = c.spawn(1, writer, "post", 3)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(3_000_000)
        assert c.converged()

    def test_token_under_loss(self):
        c = make(seed=11, ordering="token", loss=0.05)
        p = c.spawn(2, writer, "x", 8)
        c.run_until(p.finished, limit=600_000_000.0)
        c.settle(5_000_000)
        assert c.converged()
        assert c.replica(1).space_size(MAIN_TS) == 8

    def test_blocking_in_across_hosts_token_mode(self):
        c = make(seed=15, ordering="token")

        def waiter(view):
            t = yield view.in_(view.main_ts, "d", formal(int))
            return t

        pw = c.spawn(0, waiter)
        c.run(until=500_000)
        c.spawn(2, writer, "d", 1)
        c.run_until(pw.finished, limit=LIMIT)
        assert pw.finished.value == ("d", 0)

    def test_recovery_token_mode(self):
        c = make(seed=19, ordering="token")
        p = c.spawn(0, writer, "x", 5)
        c.run_until(p.finished, limit=LIMIT)
        c.crash(2)
        c.settle(2_000_000)
        p = c.spawn(0, writer, "y", 5)
        c.run_until(p.finished, limit=LIMIT)
        c.recover(2)
        c.run_until(c.replica(2).recovered_event, limit=600_000_000.0)
        c.settle(3_000_000)
        assert c.converged()


class TestPartition:
    """Partition behavior with the opt-in quorum mode.

    The paper's failure model is processor crash, not partition; with
    ``require_quorum=True`` the implementation upgrades to CP behavior:
    the majority side stays available and consistent, the minority stalls
    rather than forking, and a falsely excluded host rejoins on heal.
    """

    def test_majority_side_keeps_serving(self):
        c = make(n_hosts=3, seed=23, suspect_timeout_us=100_000.0,
                 require_quorum=True)
        p = c.spawn(0, writer, "pre", 3)
        c.run_until(p.finished, limit=LIMIT)
        c.partition([0, 1], [2])
        p = c.spawn(0, writer, "maj", 3)
        c.run_until(p.finished, limit=LIMIT)
        c.settle(1_000_000)
        assert c.replica(0).stable_fingerprint() == c.replica(1).stable_fingerprint()
        tuples = c.replica(0).space_tuples(MAIN_TS)
        assert sum(1 for t in tuples if t[0] == "maj") == 3

    def test_minority_stalls_instead_of_forking(self):
        c = make(n_hosts=3, seed=29, suspect_timeout_us=100_000.0,
                 require_quorum=True)
        p = c.spawn(2, writer, "pre", 2)
        c.run_until(p.finished, limit=LIMIT)
        before = c.ordering(2).next_deliver
        c.partition([0, 1], [2])
        c.spawn(2, writer, "minority", 3)  # must NOT be ordered
        c.run(until=c.sim.now + 1_500_000)
        assert c.ordering(2).next_deliver == before  # no solo progress

    def test_excluded_minority_rejoins_after_heal(self):
        c = make(n_hosts=3, seed=31, suspect_timeout_us=100_000.0,
                 require_quorum=True)
        p = c.spawn(1, writer, "pre", 2)
        c.run_until(p.finished, limit=LIMIT)
        c.partition([0, 1], [2])
        c.run(until=c.sim.now + 600_000)
        assert 2 not in c.membership(0).view  # excluded by the majority
        c.heal_partition()
        c.run(until=c.sim.now + 5_000_000)
        assert 2 in c.membership(0).view  # rejoined via self-rejoin protocol
        assert not c.replica(2).recovering
        c.settle(2_000_000)
        assert c.converged()
