"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.figures import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            "Demo", [1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            width=30, height=8,
        )
        lines = chart.splitlines()
        assert lines[0] == "Demo"
        assert "legend: * = a   o = b" in chart
        assert "*" in chart and "o" in chart

    def test_y_axis_starts_at_zero(self):
        chart = ascii_chart("T", [0, 1], {"s": [100.0, 101.0]}, height=8)
        # the bottom tick is 0.00 even though all values are ~100
        assert "     0.00 |" in chart

    def test_crossover_visible(self):
        # two crossing lines both plot across the whole width
        xs = list(range(10))
        chart = ascii_chart(
            "X", xs,
            {"up": [float(x) for x in xs], "down": [float(9 - x) for x in xs]},
            width=40, height=10,
        )
        rows = [l.split("|", 1)[1] for l in chart.splitlines() if "|" in l]
        first_col = min(i for r in rows for i, ch in enumerate(r) if ch != " ")
        last_col = max(i for r in rows for i, ch in enumerate(r) if ch != " ")
        assert first_col == 0
        assert last_col == 39

    def test_x_labels(self):
        chart = ascii_chart("T", [2, 8], {"s": [1.0, 2.0]}, x_label="replicas")
        assert "replicas" in chart
        assert "2" in chart and "8" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("T", [1, 2], {"s": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart("T", [], {})

    def test_all_zero_series(self):
        chart = ascii_chart("T", [1, 2], {"s": [0.0, 0.0]})
        assert "*" in chart  # plotted on the baseline, no div-by-zero
