"""Tests for the benchmark support library (tables, workload drivers)."""

import os

import pytest

from repro.bench import Table, results_dir, save_table
from repro.bench.workloads import (
    ags_latency_samples,
    incr_statement,
    make_cluster,
    mean,
    percentile,
)


class TestTable:
    def test_render_alignment(self):
        t = Table("Demo", ["name", "value"])
        t.add("short", 1)
        t.add("a-much-longer-name", 123456.789)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        # all data rows have equal width
        widths = {len(l) for l in lines[2:]}
        assert len(widths) == 1

    def test_float_formatting(self):
        t = Table("T", ["v"])
        t.add(12345.6)
        t.add(42.0)
        t.add(0.5)
        rows = t.render().splitlines()[4:]  # title, ===, header, separator
        assert "12,346" in rows[0]
        assert "42.0" in rows[1]
        assert "0.500" in rows[2]

    def test_wrong_arity_rejected(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_notes_rendered(self):
        t = Table("T", ["a"])
        t.add(1)
        t.note("context")
        assert "note: context" in t.render()

    def test_save_table_writes_file(self):
        t = Table("Saved", ["x"])
        t.add(1)
        path = save_table(t, "unit_test_artifact")
        try:
            assert os.path.exists(path)
            with open(path) as f:
                assert "Saved" in f.read()
        finally:
            os.remove(path)

    def test_results_dir_is_benchmarks_results(self):
        d = results_dir()
        assert d.endswith(os.path.join("benchmarks", "results"))
        assert os.path.isdir(d)


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_is_nan(self):
        import math

        assert math.isnan(mean([]))

    def test_percentile(self):
        xs = [float(i) for i in range(101)]
        assert percentile(xs, 50) == 50.0
        assert percentile(xs, 90) == 90.0
        assert percentile(xs, 100) == 100.0


class TestWorkloadDrivers:
    def test_quiet_cluster_suppresses_heartbeats(self):
        c = make_cluster(3, seed=1)
        c.run(until=1_000_000)  # one virtual second
        assert c.segment.stats.frames == 0  # genuinely quiet

    def test_latency_samples_driver(self):
        c = make_cluster(3, seed=2)

        def init(view):
            yield view.out(view.main_ts, "count", 0)

        p = c.spawn(0, init)
        c.run_until(p.finished, limit=60_000_000)
        samples = ags_latency_samples(c, 1, incr_statement, 5)
        assert len(samples) == 5
        assert all(s > 0 for s in samples)
