"""Property-based paradigm invariants (threads, small sizes — real races)."""

from __future__ import annotations

import threading

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import LocalRuntime
from repro.paradigms import Barrier, Consensus, DistributedVariable, TupleStream


@given(
    n=st.integers(min_value=1, max_value=5),
    phases=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_barrier_no_phase_skew(n, phases):
    """No party observes another party more than one phase ahead."""
    rt = LocalRuntime()
    b = Barrier(rt, rt.main_ts, n)
    b.setup()
    observations = []
    lock = threading.Lock()
    phase_of = [0] * n

    def party(proc, i):
        for ph in range(phases):
            gen = b.arrive(proc)
            with lock:
                phase_of[i] = gen
                spread = max(phase_of) - min(phase_of)
                observations.append(spread)

    handles = [rt.eval_(party, i) for i in range(n)]
    for h in handles:
        h.join(timeout=60)
    assert phase_of == [phases] * n
    assert all(s <= 1 for s in observations)


@given(
    n_producers=st.integers(min_value=1, max_value=3),
    n_consumers=st.integers(min_value=1, max_value=3),
    per_producer=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_stream_exactly_once(n_producers, n_consumers, per_producer):
    rt = LocalRuntime()
    s = TupleStream(rt.main_ts, "s")
    s.create(rt)
    total = n_producers * per_producer
    # distribute consumption across consumers
    quota = [total // n_consumers] * n_consumers
    quota[0] += total - sum(quota)
    results: list[int] = []
    lock = threading.Lock()

    def producer(proc, base):
        for i in range(per_producer):
            s.append(proc, base * 1000 + i)

    def consumer(proc, count):
        for _ in range(count):
            v = s.pop(proc)
            with lock:
                results.append(v)

    handles = [rt.eval_(producer, b) for b in range(n_producers)]
    handles += [rt.eval_(consumer, q) for q in quota]
    for h in handles:
        h.join(timeout=60)
    assert len(results) == total
    assert len(set(results)) == total  # nothing duplicated, nothing lost
    assert s.length(rt) == 0


@given(
    n_participants=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_consensus_agreement_and_validity(n_participants, seed):
    rt = LocalRuntime()
    c = Consensus(rt.main_ts, "k")
    decided: dict[int, object] = {}
    barrier = threading.Barrier(n_participants)

    def participant(proc, pid):
        barrier.wait()
        decided[pid] = c.agree(proc, pid, f"v{pid}")

    handles = [rt.eval_(participant, i) for i in range(n_participants)]
    for h in handles:
        h.join(timeout=60)
    values = set(decided.values())
    assert len(values) == 1
    assert values.pop() in {f"v{i}" for i in range(n_participants)}


@given(
    deltas=st.lists(st.integers(-5, 5), min_size=1, max_size=20),
    n_threads=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_distvar_sum_exact_under_concurrency(deltas, n_threads):
    rt = LocalRuntime()
    v = DistributedVariable(rt, rt.main_ts, "acc")
    v.init(0)

    def worker(proc):
        inner = DistributedVariable(proc, proc.main_ts, "acc")
        for d in deltas:
            inner.add(d)

    handles = [rt.eval_(worker) for _ in range(n_threads)]
    for h in handles:
        h.join(timeout=60)
    assert v.value() == sum(deltas) * n_threads
