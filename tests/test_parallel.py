"""Backend-specific tests for the real-parallelism runtimes.

The semantics shared by every backend (Linda ops, AGS atomicity, crash
tolerance, convergence, metrics) live in ``test_backend_contract.py``;
this file keeps only behaviour unique to one backend — ordered
cancellation, cross-process pickling, snapshot recovery — plus coverage
of the unbatched sequencing path.
"""

import pytest

from repro import AGS, Guard, Op, TimeoutError_, formal, ref
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime


class TestThreadedReplicas:
    @pytest.fixture
    def rt(self):
        rt = ThreadedReplicaRuntime(n_replicas=3)
        yield rt
        rt.shutdown()

    def test_timeout_via_ordered_cancel(self, rt):
        with pytest.raises(TimeoutError_):
            rt.in_(rt.main_ts, "never", timeout=0.1)
        # the cancelled statement must not consume later tuples
        rt.out(rt.main_ts, "never")
        assert rt.inp(rt.main_ts, "never") is not None

    def test_crash_origin_replica(self, rt):
        rt.crash_replica(0)
        rt.out(rt.main_ts, "alive", 1)
        assert rt.in_(rt.main_ts, "alive", formal(int)) == ("alive", 1)

    def test_unbatched_sequencing(self):
        rt = ThreadedReplicaRuntime(n_replicas=3, batching=False)
        try:
            def worker(proc):
                for i in range(15):
                    proc.out(proc.main_ts, "u", i)

            handles = [rt.eval_(worker) for _ in range(3)]
            for h in handles:
                h.join(timeout=30)
            assert rt.space_size(rt.main_ts) == 45
            assert rt.converged()
            snap = rt.metrics_snapshot()
            # without batching every command ships as its own batch
            assert snap["histograms"]["batch_size"]["max"] == 1
        finally:
            rt.shutdown()


class TestMultiprocess:
    @pytest.fixture
    def rt(self):
        with MultiprocessRuntime(n_replicas=3) as rt:
            yield rt

    def test_ags_pickles_across_process_boundary(self, rt):
        rt.out(rt.main_ts, "c", 10)
        res = rt.execute(AGS.single(
            Guard.in_(rt.main_ts, "c", formal(int, "v")),
            [Op.out(rt.main_ts, "c", ref("v") * 3)],
        ))
        assert res.succeeded and res["v"] == 10
        assert rt.rd(rt.main_ts, "c", formal(int)) == ("c", 30)

    def test_timeout(self, rt):
        with pytest.raises(TimeoutError_):
            rt.in_(rt.main_ts, "never", timeout=0.1)

    def test_kill_then_recover_replica(self, rt):
        for i in range(5):
            rt.out(rt.main_ts, "pre", i)
        rt.crash_replica(1)
        for i in range(5):
            rt.out(rt.main_ts, "mid", i)
        rt.recover_replica(1)
        for i in range(3):
            rt.out(rt.main_ts, "post", i)
        assert rt.converged()
        assert len(rt.fingerprints()) == 3  # all three replicas live again
        # recovery tuple deposited, like on the simulated cluster
        assert rt.inp(rt.main_ts, "ft_recovery", 1) is not None

    def test_recovered_replica_blocked_statements_work(self, rt):
        rt.crash_replica(2)
        rt.recover_replica(2)
        h = rt.eval_(lambda proc: proc.in_(proc.main_ts, "later", formal(int)))
        rt.out(rt.main_ts, "later", 4)
        assert h.join(timeout=30) == ("later", 4)
        assert rt.converged()

    def test_unbatched_sequencing(self):
        with MultiprocessRuntime(n_replicas=3, batching=False) as rt:
            for i in range(10):
                rt.out(rt.main_ts, "u", i)
            assert rt.space_size(rt.main_ts) == 10
            assert rt.converged()
            assert rt.metrics_snapshot()["histograms"]["batch_size"]["max"] == 1
