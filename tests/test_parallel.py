"""Tests for the real-parallelism backends (threads and processes)."""

import pytest

from repro import AGS, FAILURE_TAG, Guard, Op, TimeoutError_, formal, ref
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime


class TestThreadedReplicas:
    @pytest.fixture
    def rt(self):
        rt = ThreadedReplicaRuntime(n_replicas=3)
        yield rt
        rt.shutdown()

    def test_roundtrip(self, rt):
        rt.out(rt.main_ts, "x", 1)
        assert rt.in_(rt.main_ts, "x", formal(int)) == ("x", 1)

    def test_replicas_converge_under_concurrency(self, rt):
        def worker(proc, tag):
            for i in range(30):
                proc.out(proc.main_ts, tag, i)

        handles = [rt.eval_(worker, f"t{i}") for i in range(4)]
        for h in handles:
            h.join(timeout=30)
        rt.quiesce()
        prints = rt.fingerprints()
        assert len(prints) == 3
        assert len(set(prints)) == 1

    def test_atomic_increment_with_real_threads(self, rt):
        rt.out(rt.main_ts, "c", 0)
        incr = AGS.single(
            Guard.in_(rt.main_ts, "c", formal(int, "v")),
            [Op.out(rt.main_ts, "c", ref("v") + 1)],
        )

        def worker(proc):
            for _ in range(20):
                proc.execute(incr)

        handles = [rt.eval_(worker) for _ in range(5)]
        for h in handles:
            h.join(timeout=60)
        assert rt.rd(rt.main_ts, "c", formal(int)) == ("c", 100)
        rt.quiesce()
        assert rt.converged()

    def test_blocking_in_across_threads(self, rt):
        h = rt.eval_(lambda proc: proc.in_(proc.main_ts, "later", formal(int)))
        rt.out(rt.main_ts, "later", 9)
        assert h.join(timeout=30) == ("later", 9)

    def test_timeout_via_ordered_cancel(self, rt):
        with pytest.raises(TimeoutError_):
            rt.in_(rt.main_ts, "never", timeout=0.1)
        # the cancelled statement must not consume later tuples
        rt.out(rt.main_ts, "never")
        assert rt.inp(rt.main_ts, "never") is not None

    def test_crash_replica_group_continues(self, rt):
        rt.out(rt.main_ts, "pre", 1)
        rt.crash_replica(1)
        rt.out(rt.main_ts, "post", 2)
        assert rt.in_(rt.main_ts, "post", formal(int)) == ("post", 2)
        rt.quiesce()
        assert len(rt.fingerprints()) == 2
        assert rt.converged()
        # the failure tuple for the dead replica is visible
        assert rt.inp(rt.main_ts, FAILURE_TAG, 1) is not None

    def test_crash_origin_replica(self, rt):
        rt.crash_replica(0)
        rt.out(rt.main_ts, "alive", 1)
        assert rt.in_(rt.main_ts, "alive", formal(int)) == ("alive", 1)

    def test_spaces(self, rt):
        h = rt.create_space("jobs")
        rt.out(h, "j", 1)
        assert rt.space_size(h) == 1
        rt.destroy_space(h)
        from repro import SpaceError

        with pytest.raises(SpaceError):
            rt.out(h, "k", 2)


class TestMultiprocess:
    @pytest.fixture
    def rt(self):
        with MultiprocessRuntime(n_replicas=3) as rt:
            yield rt

    def test_roundtrip_across_processes(self, rt):
        rt.out(rt.main_ts, "x", 42)
        assert rt.in_(rt.main_ts, "x", formal(int)) == ("x", 42)

    def test_replicas_converge(self, rt):
        for i in range(20):
            rt.out(rt.main_ts, "n", i)
        assert rt.converged()
        assert rt.space_size(rt.main_ts) == 20

    def test_ags_pickles_across_process_boundary(self, rt):
        rt.out(rt.main_ts, "c", 10)
        res = rt.execute(AGS.single(
            Guard.in_(rt.main_ts, "c", formal(int, "v")),
            [Op.out(rt.main_ts, "c", ref("v") * 3)],
        ))
        assert res.succeeded and res["v"] == 10
        assert rt.rd(rt.main_ts, "c", formal(int)) == ("c", 30)

    def test_blocking_across_processes(self, rt):
        h = rt.eval_(lambda proc: proc.in_(proc.main_ts, "later", formal(int)))
        rt.out(rt.main_ts, "later", 5)
        assert h.join(timeout=30) == ("later", 5)

    def test_concurrent_clients(self, rt):
        rt.out(rt.main_ts, "c", 0)
        incr = AGS.single(
            Guard.in_(rt.main_ts, "c", formal(int, "v")),
            [Op.out(rt.main_ts, "c", ref("v") + 1)],
        )

        def worker(proc):
            for _ in range(10):
                proc.execute(incr)

        handles = [rt.eval_(worker) for _ in range(4)]
        for h in handles:
            h.join(timeout=60)
        assert rt.rd(rt.main_ts, "c", formal(int)) == ("c", 40)
        assert rt.converged()

    def test_kill_replica_group_continues(self, rt):
        rt.out(rt.main_ts, "pre", 1)
        rt.crash_replica(2)
        rt.out(rt.main_ts, "post", 2)
        assert rt.rdp(rt.main_ts, "post", formal(int)) == ("post", 2)
        assert rt.converged()
        assert rt.inp(rt.main_ts, FAILURE_TAG, 2) is not None

    def test_timeout(self, rt):
        with pytest.raises(TimeoutError_):
            rt.in_(rt.main_ts, "never", timeout=0.1)

    def test_move_between_spaces(self, rt):
        h = rt.create_space("dst")
        rt.out(rt.main_ts, "t", 1)
        rt.out(rt.main_ts, "t", 2)
        rt.move(rt.main_ts, h, "t", formal(int))
        assert rt.space_size(h) == 2
        assert rt.converged()

    def test_kill_then_recover_replica(self, rt):
        for i in range(5):
            rt.out(rt.main_ts, "pre", i)
        rt.crash_replica(1)
        for i in range(5):
            rt.out(rt.main_ts, "mid", i)
        rt.recover_replica(1)
        for i in range(3):
            rt.out(rt.main_ts, "post", i)
        assert rt.converged()
        assert len(rt.fingerprints()) == 3  # all three replicas live again
        # recovery tuple deposited, like on the simulated cluster
        assert rt.inp(rt.main_ts, "ft_recovery", 1) is not None

    def test_recovered_replica_blocked_statements_work(self, rt):
        rt.crash_replica(2)
        rt.recover_replica(2)
        h = rt.eval_(lambda proc: proc.in_(proc.main_ts, "later", formal(int)))
        rt.out(rt.main_ts, "later", 4)
        assert h.join(timeout=30) == ("later", 4)
        assert rt.converged()
