"""Tests for tuple-space synchronization primitives (semaphore/mutex/RW)."""

import threading
import time

import pytest

from repro import LocalRuntime
from repro.paradigms.sync import Mutex, RWLock, Semaphore


@pytest.fixture
def rt():
    return LocalRuntime()


class TestSemaphore:
    def test_acquire_release_roundtrip(self, rt):
        s = Semaphore(rt.main_ts, "s", 2)
        s.create(rt)
        assert s.available(rt) == 2
        s.acquire(rt, holder=1)
        assert s.available(rt) == 1
        s.release(rt, holder=1)
        assert s.available(rt) == 2

    def test_try_acquire(self, rt):
        s = Semaphore(rt.main_ts, "s", 1)
        s.create(rt)
        assert s.try_acquire(rt, 1)
        assert not s.try_acquire(rt, 2)
        s.release(rt, 1)
        assert s.try_acquire(rt, 2)

    def test_blocking_acquire_waits(self, rt):
        s = Semaphore(rt.main_ts, "s", 1)
        s.create(rt)
        s.acquire(rt, 1)
        got = []

        def waiter(proc):
            s.acquire(proc, 2)
            got.append("acquired")

        h = rt.eval_(waiter)
        time.sleep(0.05)
        assert got == []
        s.release(rt, 1)
        h.join(timeout=10)
        assert got == ["acquired"]

    def test_mutual_exclusion_bound(self, rt):
        s = Semaphore(rt.main_ts, "s", 3)
        s.create(rt)
        inside = []
        peak = []
        lock = threading.Lock()

        def worker(proc, wid):
            for _ in range(5):
                s.acquire(proc, wid)
                with lock:
                    inside.append(wid)
                    peak.append(len(inside))
                time.sleep(0.001)
                with lock:
                    inside.remove(wid)
                s.release(proc, wid)

        handles = [rt.eval_(worker, w) for w in range(6)]
        for h in handles:
            h.join(timeout=30)
        assert max(peak) <= 3  # never more than `permits` inside

    def test_crashed_holder_recovered_by_monitor(self, rt):
        s = Semaphore(rt.main_ts, "s", 2)
        s.create(rt)
        s.acquire(rt, holder=7)
        s.acquire(rt, holder=7)
        assert s.available(rt) == 0
        # holder 7 "crashes"; the monitor action releases its permits
        recovered = s.release_holder(rt, 7)
        assert recovered == 2
        assert s.available(rt) == 2

    def test_release_holder_idempotent(self, rt):
        s = Semaphore(rt.main_ts, "s", 1)
        s.create(rt)
        assert s.release_holder(rt, 9) == 0

    def test_invalid_permits(self, rt):
        with pytest.raises(ValueError):
            Semaphore(rt.main_ts, "s", 0)


class TestMutex:
    def test_is_binary(self, rt):
        m = Mutex(rt.main_ts, "m")
        m.create(rt)
        assert m.try_acquire(rt, 1)
        assert not m.try_acquire(rt, 2)
        m.release(rt, 1)

    def test_critical_section_exclusive(self, rt):
        m = Mutex(rt.main_ts, "m")
        m.create(rt)
        counter = {"v": 0}

        def worker(proc, wid):
            for _ in range(20):
                m.acquire(proc, wid)
                v = counter["v"]  # unprotected read-modify-write...
                time.sleep(0)  # ...made safe only by the mutex
                counter["v"] = v + 1
                m.release(proc, wid)

        handles = [rt.eval_(worker, w) for w in range(4)]
        for h in handles:
            h.join(timeout=30)
        assert counter["v"] == 80


class TestRWLock:
    def test_readers_share(self, rt):
        rw = RWLock(rt.main_ts, "rw", max_readers=4)
        rw.create(rt)
        concurrent = []
        inside = []
        lock = threading.Lock()
        barrier = threading.Barrier(3)

        def reader(proc, rid):
            rw.acquire_read(proc, rid)
            with lock:
                inside.append(rid)
                concurrent.append(len(inside))
            barrier.wait(5)  # all three must be inside simultaneously
            with lock:
                inside.remove(rid)
            rw.release_read(proc, rid)

        handles = [rt.eval_(reader, r) for r in range(3)]
        for h in handles:
            h.join(timeout=30)
        assert max(concurrent) == 3

    def test_writer_excludes_everyone(self, rt):
        rw = RWLock(rt.main_ts, "rw", max_readers=3)
        rw.create(rt)
        log = []
        lock = threading.Lock()

        def writer(proc):
            rw.acquire_write(proc, 100)
            with lock:
                log.append("w-in")
            time.sleep(0.02)
            with lock:
                log.append("w-out")
            rw.release_write(proc, 100)

        def reader(proc, rid):
            rw.acquire_read(proc, rid)
            with lock:
                log.append(f"r{rid}")
            rw.release_read(proc, rid)

        hw = rt.eval_(writer)
        time.sleep(0.005)
        readers = [rt.eval_(reader, r) for r in range(3)]
        hw.join(timeout=30)
        for h in readers:
            h.join(timeout=30)
        w_in, w_out = log.index("w-in"), log.index("w-out")
        # no reader event between the writer's entry and exit
        assert all(not (w_in < log.index(f"r{r}") < w_out) for r in range(3))

    def test_write_then_read_sequential(self, rt):
        rw = RWLock(rt.main_ts, "rw", max_readers=2)
        rw.create(rt)
        rw.acquire_write(rt, 1)
        rw.release_write(rt, 1)
        rw.acquire_read(rt, 2)
        rw.release_read(rt, 2)
        rw.acquire_write(rt, 3)
        rw.release_write(rt, 3)

    def test_writer_waits_for_active_readers(self, rt):
        rw = RWLock(rt.main_ts, "rw", max_readers=2)
        rw.create(rt)
        rw.acquire_read(rt, 1)
        order = []

        def writer(proc):
            rw.acquire_write(proc, 9)
            order.append("writer")
            rw.release_write(proc, 9)

        h = rt.eval_(writer)
        time.sleep(0.05)
        order.append("release-read")
        rw.release_read(rt, 1)
        h.join(timeout=30)
        assert order == ["release-read", "writer"]
