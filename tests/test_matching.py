"""Unit tests for the signature-indexed TupleStore."""

import pytest

from repro import Pattern, TupleStore, formal
from repro.core.tuples import make_tuple


@pytest.fixture
def store():
    return TupleStore()


class TestAddFind:
    def test_add_and_find(self, store):
        store.add(make_tuple("a", 1))
        m = store.find(Pattern(("a", formal(int, "v"))), remove=False)
        assert m is not None
        assert m.tup == ("a", 1)
        assert m.binding == {"v": 1}

    def test_find_remove_withdraws(self, store):
        store.add(make_tuple("a", 1))
        assert store.find(Pattern(("a", 1)), remove=True) is not None
        assert store.find(Pattern(("a", 1)), remove=False) is None
        assert len(store) == 0

    def test_find_rd_does_not_withdraw(self, store):
        store.add(make_tuple("a", 1))
        assert store.find(Pattern(("a", 1)), remove=False) is not None
        assert len(store) == 1

    def test_no_match_returns_none(self, store):
        store.add(make_tuple("a", 1))
        assert store.find(Pattern(("b", formal(int))), remove=False) is None

    def test_multiset_semantics(self, store):
        store.add(make_tuple("a", 1))
        store.add(make_tuple("a", 1))
        assert len(store) == 2
        store.find(Pattern(("a", 1)), remove=True)
        assert len(store) == 1
        assert store.find(Pattern(("a", 1)), remove=False) is not None


class TestOldestFirst:
    def test_oldest_match_wins_within_signature(self, store):
        store.add(make_tuple("a", 1))
        store.add(make_tuple("a", 2))
        m = store.find(Pattern(("a", formal(int, "v"))), remove=True)
        assert m.binding["v"] == 1
        m = store.find(Pattern(("a", formal(int, "v"))), remove=True)
        assert m.binding["v"] == 2

    def test_oldest_match_across_signatures_with_untyped_formal(self, store):
        store.add(make_tuple("a", "old"))
        store.add(make_tuple("a", 1))
        m = store.find(Pattern(("a", formal(object, "v"))), remove=False)
        assert m.binding["v"] == "old"

    def test_oldest_first_skips_nonmatching_older(self, store):
        store.add(make_tuple("a", 5))
        store.add(make_tuple("a", 1))
        m = store.find(Pattern(("a", 1)), remove=False)
        assert m.tup == ("a", 1)

    def test_reinsert_restores_priority(self, store):
        s1 = store.add(make_tuple("a", 1))
        store.add(make_tuple("a", 2))
        m = store.find(Pattern(("a", formal(int, "v"))), remove=True)
        assert m.binding["v"] == 1
        store.reinsert(s1, m.tup)
        m2 = store.find(Pattern(("a", formal(int, "v"))), remove=False)
        assert m2.binding["v"] == 1  # reinserted tuple is oldest again


class TestIndexing:
    def test_first_field_index_used_for_exact_patterns(self, store):
        for i in range(100):
            store.add(make_tuple(f"chan{i}", i))
        m = store.find(Pattern(("chan37", formal(int, "v"))), remove=False)
        assert m.binding["v"] == 37

    def test_untyped_formal_scans_compatible_buckets(self, store):
        store.add(make_tuple("a", 1))
        store.add(make_tuple("a", "s"))
        store.add(make_tuple("b", 2.0))
        hits = store.find_all(Pattern(("a", formal())), remove=False)
        assert len(hits) == 2

    def test_untyped_formal_skips_buckets_by_first_field(self, store):
        # Bound first field + untyped formal: buckets that hold no tuple
        # with that first-field constant must be skipped via the key index.
        for i in range(50):
            store.add(make_tuple("noise", i))
        store.add(make_tuple("chan", 7))
        store.add(make_tuple("chan", "s"))
        hits = store.find_all(Pattern(("chan", formal())), remove=False)
        assert [h.tup.fields for h in hits] == [("chan", 7), ("chan", "s")]
        m = store.find(Pattern(("chan", formal(object, "v"))), remove=True)
        assert m is not None and m.binding["v"] == 7
        assert store.count(Pattern(("chan", formal()))) == 1
        assert store.find(Pattern(("absent", formal())), remove=False) is None

    def test_formal_in_first_position(self, store):
        store.add(make_tuple("x", 1))
        store.add(make_tuple("y", 2))
        hits = store.find_all(Pattern((formal(str), formal(int))), remove=False)
        assert len(hits) == 2


class TestFindAll:
    def test_find_all_in_seqno_order(self, store):
        for i in (3, 1, 2):
            store.add(make_tuple("t", i))
        hits = store.find_all(Pattern(("t", formal(int, "v"))), remove=False)
        assert [h.binding["v"] for h in hits] == [3, 1, 2]

    def test_find_all_remove_empties(self, store):
        for i in range(5):
            store.add(make_tuple("t", i))
        store.add(make_tuple("other", "x"))
        hits = store.find_all(Pattern(("t", formal(int))), remove=True)
        assert len(hits) == 5
        assert len(store) == 1

    def test_count_and_contains(self, store):
        store.add(make_tuple("t", 1))
        store.add(make_tuple("t", 2))
        assert store.count(Pattern(("t", formal(int)))) == 2
        assert store.contains(Pattern(("t", 2)))
        assert not store.contains(Pattern(("t", 3)))


class TestSnapshots:
    def test_snapshot_roundtrip_preserves_order_and_seqnos(self, store):
        for i in range(10):
            store.add(make_tuple("t", i))
        store.find(Pattern(("t", 0)), remove=True)
        snap = store.snapshot()
        clone = TupleStore.from_snapshot(snap)
        assert clone.to_list() == store.to_list()
        assert clone.fingerprint() == store.fingerprint()
        # new adds continue from the same counter
        a = store.add(make_tuple("t", 100))
        b = clone.add(make_tuple("t", 100))
        assert a == b

    def test_fingerprint_differs_on_content(self, store):
        store.add(make_tuple("t", 1))
        other = TupleStore()
        other.add(make_tuple("t", 2))
        assert store.fingerprint() != other.fingerprint()

    def test_iteration_in_deposit_order(self, store):
        vals = [5, 3, 8, 1]
        for v in vals:
            store.add(make_tuple("z", v))
        assert [t[1] for t in store] == vals
