"""Tests for checkpoint/recovery and adaptive (Piranha) parallelism."""

import pytest

from repro import LocalRuntime, Resilience, formal
from repro.paradigms.adaptive import AdaptiveBag, run_adaptive
from repro.paradigms.checkpoint import (
    Checkpoint,
    checkpoint_space,
    run_with_recovery,
)


@pytest.fixture
def rt():
    return LocalRuntime()


class TestCheckpoint:
    def test_save_load_roundtrip(self, rt):
        c = Checkpoint(rt.main_ts, "job")
        assert c.load(rt) is None
        c.save(rt, 0, (10, 20))
        assert c.load(rt) == (0, (10, 20))

    def test_save_replaces_atomically(self, rt):
        c = Checkpoint(rt.main_ts, "job")
        for step in range(5):
            c.save(rt, step, step * 100)
        assert c.load(rt) == (4, 400)
        # exactly one checkpoint tuple exists
        assert rt.space_size(rt.main_ts) == 1

    def test_clear(self, rt):
        c = Checkpoint(rt.main_ts, "job")
        assert not c.clear(rt)
        c.save(rt, 1, "s")
        assert c.clear(rt)
        assert c.load(rt) is None

    def test_requires_stable_space(self, rt):
        vol = rt.create_space("v", Resilience.VOLATILE)
        with pytest.raises(ValueError):
            Checkpoint(vol, "job")

    def test_independent_names(self, rt):
        a = Checkpoint(rt.main_ts, "a")
        b = Checkpoint(rt.main_ts, "b")
        a.save(rt, 1, "A")
        b.save(rt, 2, "B")
        assert a.load(rt) == (1, "A")
        assert b.load(rt) == (2, "B")


class TestRunWithRecovery:
    @staticmethod
    def step(i, state):
        return state + (i + 1)

    def test_no_crash(self, rt):
        report = run_with_recovery(rt, "sum", self.step, 0, 6)
        assert report["result"] == sum(range(1, 7))
        assert report["steps_executed"] == list(range(6))
        assert report["recovered_from"] is None

    def test_crash_and_resume_recomputes_only_tail(self, rt):
        report = run_with_recovery(rt, "sum", self.step, 0, 8, crash_at=3)
        assert report["result"] == sum(range(1, 9))
        assert report["recovered_from"] == 3
        # steps 0..3 once, then 4..7 once: no step twice, none skipped
        assert report["steps_executed"] == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_crash_at_last_step(self, rt):
        report = run_with_recovery(rt, "sum", self.step, 0, 4, crash_at=3)
        assert report["result"] == sum(range(1, 5))
        # successor loads step 3 and finds nothing left to do
        assert report["steps_executed"] == [0, 1, 2, 3]


class TestCheckpointSpace:
    def test_snapshot_replaces_atomically(self, rt):
        scratch = rt.create_space("scratch", Resilience.STABLE)
        stable = rt.create_space("saved", Resilience.STABLE)
        rt.out(scratch, "k", 1)
        rt.out(scratch, "k", 2)
        checkpoint_space(rt, scratch, stable, "k", formal(int))
        assert rt.space_size(stable) == 2
        # scratch evolves; snapshot again: old snapshot fully replaced
        rt.in_(scratch, "k", 1)
        rt.out(scratch, "k", 3)
        checkpoint_space(rt, scratch, stable, "k", formal(int))
        vals = sorted(t[1] for t in rt.space_tuples(stable))
        assert vals == [2, 3]


def square(x):
    return x * x


class TestAdaptive:
    def test_plain_run_completes(self, rt):
        report = run_adaptive(rt, list(range(12)), square, initial_workers=3)
        assert sorted(p for p, _r in report["results"]) == list(range(12))
        assert all(r == p * p for p, r in report["results"])

    def test_workers_join_mid_run(self, rt):
        report = run_adaptive(
            rt, list(range(16)), square,
            initial_workers=1, join_after=(0.01, 0.01),
        )
        assert sorted(p for p, _r in report["results"]) == list(range(16))

    def test_retreat_loses_nothing(self, rt):
        report = run_adaptive(
            rt, list(range(16)), square,
            initial_workers=3, retreat_first_after=0.01,
        )
        assert sorted(p for p, _r in report["results"]) == list(range(16))
        assert len(report["retreated"]) == 1

    def test_retreat_returns_in_progress_task_to_bag(self, rt):
        import threading

        gate = threading.Event()

        def slow_once(x):
            if x == 0:
                gate.wait(5)  # the first task hangs until we let it go
            return x

        bag = AdaptiveBag(rt, slow_once)
        bag.seed([0])
        wid = bag.join()
        import time

        time.sleep(0.05)  # worker has taken task 0 and is stuck in it
        # we can't retreat a worker mid-compute in this cooperative model,
        # so check the bookkeeping instead: its in-progress tuple exists
        assert rt.space_size(bag.bag) == 0
        gate.set()
        got = bag.collect(1)
        assert got == [(0, 0)]
        bag.shutdown()

    def test_all_retreat_then_rejoin(self, rt):
        bag = AdaptiveBag(rt, square)
        bag.seed(list(range(6)))
        w1 = bag.join()
        import time

        time.sleep(0.03)
        done_first = bag.retreat(w1)
        # pool is empty now; remaining tasks wait in the bag
        remaining = 6 - done_first
        bag.join()
        results = bag.collect(remaining if remaining > 0 else 0)
        total = done_first + len(results)
        assert total == 6
        bag.shutdown()
