"""Unit tests for the tuple/pattern data model."""

import pytest

from repro import Formal, LindaTuple, MatchTypeError, Pattern, TupleError, formal
from repro.core.spaces import MAIN_TS, TSHandle
from repro.core.tuples import is_valid_field, match, make_tuple, signature_of


class TestLindaTuple:
    def test_fields_and_arity(self):
        t = make_tuple("count", 3)
        assert t.arity == 2
        assert t[0] == "count"
        assert t[1] == 3
        assert list(t) == ["count", 3]

    def test_signature_uses_exact_types(self):
        assert make_tuple("a", 1).signature == ("str", "int")
        assert make_tuple("a", 1.0).signature == ("str", "float")
        assert make_tuple(True).signature == ("bool",)
        assert make_tuple(b"x").signature == ("bytes",)
        assert make_tuple(None).signature == ("NoneType",)

    def test_bool_is_not_int_in_signature(self):
        assert make_tuple(True).signature != make_tuple(1).signature

    def test_equality_and_hash_are_value_based(self):
        assert make_tuple("a", 1) == make_tuple("a", 1)
        assert hash(make_tuple("a", 1)) == hash(make_tuple("a", 1))
        assert make_tuple("a", 1) != make_tuple("a", 2)

    def test_equality_with_raw_tuple(self):
        assert make_tuple("a", 1) == ("a", 1)

    def test_nested_tuples_allowed(self):
        t = make_tuple("point", (1, 2, (3, "x")))
        assert t[1] == (1, 2, (3, "x"))

    def test_ts_handles_are_valid_fields(self):
        t = make_tuple("space", MAIN_TS)
        assert t[1] is MAIN_TS

    def test_empty_tuple_rejected(self):
        with pytest.raises(TupleError):
            LindaTuple(())

    def test_mutable_fields_rejected(self):
        with pytest.raises(TupleError):
            make_tuple("xs", [1, 2])
        with pytest.raises(TupleError):
            make_tuple("d", {"a": 1})

    def test_nested_mutable_rejected(self):
        with pytest.raises(TupleError):
            make_tuple("xs", (1, [2]))

    def test_formal_in_tuple_rejected(self):
        with pytest.raises(TupleError):
            make_tuple("a", formal(int))


class TestFormal:
    def test_typed_formal_matches_only_its_type(self):
        f = formal(int)
        assert f.matches_value(5)
        assert not f.matches_value(5.0)
        assert not f.matches_value(True)  # bool is not int here

    def test_untyped_formal_matches_anything(self):
        f = formal()
        assert f.matches_value(5)
        assert f.matches_value("x")
        assert f.matches_value(None)
        assert not f.typed

    def test_invalid_formal_type_rejected(self):
        with pytest.raises(MatchTypeError):
            Formal(list)

    def test_formal_equality(self):
        assert formal(int, "x") == formal(int, "x")
        assert formal(int, "x") != formal(int, "y")
        assert formal(int) != formal(float)


class TestPattern:
    def test_all_actuals_matches_exact_tuple(self):
        p = Pattern(("count", 3))
        assert p.matches(make_tuple("count", 3))
        assert not p.matches(make_tuple("count", 4))

    def test_arity_mismatch(self):
        p = Pattern(("count", formal(int)))
        assert not p.matches(make_tuple("count", 3, 4))
        assert not p.matches(make_tuple("count"))

    def test_actual_type_must_match_exactly(self):
        p = Pattern(("count", 1))
        assert not p.matches(make_tuple("count", 1.0))
        assert not p.matches(make_tuple("count", True))

    def test_typed_formal_position(self):
        p = Pattern(("count", formal(int)))
        assert p.matches(make_tuple("count", 7))
        assert not p.matches(make_tuple("count", "7"))

    def test_binding_of_named_formals(self):
        p = Pattern(("job", formal(int, "id"), formal(str, "name")))
        t = make_tuple("job", 4, "sort")
        assert p.bind(t) == {"id": 4, "name": "sort"}

    def test_anonymous_formals_do_not_bind(self):
        p = Pattern(("job", formal(int)))
        assert p.bind(make_tuple("job", 1)) == {}

    def test_duplicate_formal_names_rejected(self):
        with pytest.raises(TupleError):
            Pattern((formal(int, "x"), formal(int, "x")))

    def test_signature_includes_formal_types(self):
        p = Pattern(("a", formal(int)))
        assert p.signature == ("str", "int")
        assert p.exact_signature

    def test_untyped_formal_makes_signature_inexact(self):
        p = Pattern(("a", formal()))
        assert not p.exact_signature
        assert p.signature == ("str", "?")

    def test_first_actual(self):
        assert Pattern(("a", 1)).first_actual == "a"
        assert Pattern((formal(str), 1)).first_actual is None

    def test_match_helper_returns_binding_or_none(self):
        p = Pattern(("c", formal(int, "v")))
        assert match(p, make_tuple("c", 2)) == {"v": 2}
        assert match(p, make_tuple("d", 2)) is None

    def test_empty_pattern_rejected(self):
        with pytest.raises(TupleError):
            Pattern(())


class TestSignatures:
    def test_signature_of_values(self):
        assert signature_of(["a", 1, 2.0]) == ("str", "int", "float")

    def test_is_valid_field(self):
        assert is_valid_field(1)
        assert is_valid_field("x")
        assert is_valid_field((1, (2, "a")))
        assert not is_valid_field([1])
        assert not is_valid_field(object())
        assert is_valid_field(TSHandle(5, "t", MAIN_TS.resilience, MAIN_TS.scope))
