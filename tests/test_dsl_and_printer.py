"""The three AGS front ends (builder, DSL, text) must agree exactly."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import AGS, AGSError, Guard, LocalRuntime, Op, formal, ref
from repro.core.spaces import MAIN_TS
from repro.dsl import atomic, copy, in_, inp, move, out, rd, rdp, true, var, when
from repro.lcc import compile_ags, print_ags

NAMES = {MAIN_TS: "main"}
SPACES = {"main": MAIN_TS}


class TestDSL:
    def test_simple_increment_equals_builder(self):
        dsl = (
            when(in_(MAIN_TS, "count", ("old", int)))
            .do(out(MAIN_TS, "count", var("old") + 1))
            .build()
        )
        built = AGS.single(
            Guard.in_(MAIN_TS, "count", formal(int, "old")),
            [Op.out(MAIN_TS, "count", ref("old") + 1)],
        )
        assert dsl == built

    def test_equals_text_front_end(self):
        dsl = (
            when(in_(MAIN_TS, "count", ("old", int)))
            .do(out(MAIN_TS, "count", var("old") + 1))
            .build()
        )
        text = compile_ags(
            '< in(main, "count", ?old:int) => out(main, "count", old + 1) >',
            SPACES,
        )
        assert dsl == text

    def test_disjunction(self):
        stmt = (
            when(inp(MAIN_TS, "job", ("j", int)))
            .do(out(MAIN_TS, "taken", var("j")))
            .orelse(true().do(out(MAIN_TS, "idle", 1)))
            .build()
        )
        assert len(stmt.branches) == 2
        rt = LocalRuntime()
        assert rt.execute(stmt).fired == 1
        rt.out(MAIN_TS, "job", 5)
        assert rt.execute(stmt).fired == 0

    def test_anonymous_formals_by_bare_type(self):
        stmt = when(in_(MAIN_TS, "x", int)).do().build()
        rt = LocalRuntime()
        rt.out(MAIN_TS, "x", 3)
        assert rt.execute(stmt).succeeded

    def test_move_copy(self):
        rt = LocalRuntime()
        dst = rt.create_space("dst")
        rt.out(MAIN_TS, "t", 1)
        rt.execute(atomic(copy(MAIN_TS, dst, "t", int)))
        rt.execute(atomic(move(MAIN_TS, dst, "t", int)))
        assert rt.space_size(dst) == 2
        assert rt.space_size(MAIN_TS) == 0

    def test_rd_and_rdp_guards(self):
        rt = LocalRuntime()
        rt.out(MAIN_TS, "x", 1)
        assert rt.execute(when(rd(MAIN_TS, "x", int)).do().build()).succeeded
        assert rt.execute(when(rdp(MAIN_TS, "x", int)).do().build()).succeeded
        assert rt.space_size(MAIN_TS) == 1  # both left the tuple in place

    def test_out_cannot_guard(self):
        with pytest.raises(AGSError):
            when(out(MAIN_TS, "x", 1))

    def test_empty_builder_rejected(self):
        from repro.dsl import AGSBuilder

        with pytest.raises(AGSError):
            AGSBuilder().build()


class TestPrinter:
    CASES = [
        '< true => out(main, "x", 1) >',
        '< in(main, "count", ?old:int) => out(main, "count", old + 1) >',
        '< rd(main, "cfg", ?v:float) >',
        '< inp(main, "job", ?j:int) => out(main, "taken", j) '
        "or true => out(main, \"idle\", 1) >",
        '< true => move(main, main, "t", ?:int) >',
        '< in(main, "a", ?x:int) => out(main, "b", x * 2 + 1); '
        'out(main, "c", max(x, 0)) >',
        '< in(main, ?tag:str, ?v) => out(main, tag, v) >',
    ]

    @pytest.mark.parametrize("src", CASES)
    def test_roundtrip_fixed_cases(self, src):
        ags = compile_ags(src, SPACES)
        printed = print_ags(ags, NAMES)
        again = compile_ags(printed, SPACES)
        assert again == ags, printed

    def test_negative_literal_roundtrip(self):
        ags = AGS.atomic(Op.out(MAIN_TS, "x", -5))
        again = compile_ags(print_ags(ags, NAMES), SPACES)
        assert again == ags

    def test_string_escapes_roundtrip(self):
        ags = AGS.atomic(Op.out(MAIN_TS, 'quote"back\\slash', "tab\there"))
        again = compile_ags(print_ags(ags, NAMES), SPACES)
        assert again == ags

    def test_precedence_preserved(self):
        src = '< true => out(main, "v", (1 + 2) * 3) >'
        ags = compile_ags(src, SPACES)  # folds to 9 at compile time
        again = compile_ags(print_ags(ags, NAMES), SPACES)
        assert again == ags

    def test_unfolded_precedence(self):
        ags = AGS.single(
            Guard.in_(MAIN_TS, "n", formal(int, "x")),
            [Op.out(MAIN_TS, "m", (ref("x") + 1) * 2)],
        )
        printed = print_ags(ags, NAMES)
        assert "(" in printed  # parenthesization required and produced
        assert compile_ags(printed, SPACES) == ags


# -- property-based roundtrip ------------------------------------------------ #

_channels = st.sampled_from(["a", "b", "chan"])
_ints = st.integers(-50, 50)
_strs = st.sampled_from(["s", "hello world", 'tricky"quote'])


@st.composite
def simple_ags(draw):
    """Random increment/transfer-shaped statements over main."""
    ch = draw(_channels)
    kind = draw(st.sampled_from(["out", "incr", "probe_or_idle", "move"]))
    if kind == "out":
        val = draw(st.one_of(_ints, _strs, st.booleans()))
        return AGS.atomic(Op.out(MAIN_TS, ch, val))
    if kind == "incr":
        delta = draw(_ints)
        return AGS.single(
            Guard.in_(MAIN_TS, ch, formal(int, "v")),
            [Op.out(MAIN_TS, ch, ref("v") + delta)],
        )
    if kind == "probe_or_idle":
        from repro.core.ags import Branch

        return AGS([
            Branch(Guard.inp(MAIN_TS, ch, formal(int, "v")),
                   [Op.out(MAIN_TS, "taken", ref("v"))]),
            Branch(Guard.true(), [Op.out(MAIN_TS, "idle", draw(_ints))]),
        ])
    return AGS.atomic(Op.move(MAIN_TS, MAIN_TS, ch, formal(int)))


@given(simple_ags())
@settings(max_examples=150, deadline=None)
def test_print_compile_roundtrip_property(ags):
    printed = print_ags(ags, NAMES)
    assert compile_ags(printed, SPACES) == ags
