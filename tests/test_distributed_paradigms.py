"""The Sec. 4 paradigms on the full distributed stack.

Unlike tests/test_paradigms.py (threads + injected failure tuples), these
run over the simulated replica group where the failure tuple comes from
the *real* chain: host crash → heartbeat silence → suspicion → ordered
HostFailed → state machine deposits the tuple.  This is the paper's
actual end-to-end story.  The worker/monitor/collector roles come from
:mod:`repro.paradigms.simstyle`.
"""

import pytest

from repro import AGS, Guard, Op, formal, ref
from repro.consul import ClusterConfig, SimCluster
from repro.paradigms import simstyle
from repro.sim.process import hold

LIMIT = 600_000_000.0


def make(n_hosts=4, seed=0):
    return SimCluster(ClusterConfig(n_hosts=n_hosts, seed=seed))


def seed_tasks(cluster, payloads):
    p = cluster.spawn(0, simstyle.seed_bag, payloads)
    cluster.run_until(p.finished, limit=LIMIT)
    return p.finished.value


def stop_workers(cluster, bag, n):
    cluster.spawn(0, simstyle.poison, bag, n)


class TestDistributedBagOfTasks:
    def test_no_failures_all_tasks_complete(self):
        c = make(seed=41)
        bag = seed_tasks(c, list(range(8)))
        workers = [c.spawn(h, simstyle.ft_worker, bag, h) for h in (1, 2, 3)]
        pc = c.spawn(0, simstyle.collector, 8)
        c.run_until(pc.finished, limit=LIMIT)
        results = pc.finished.value
        assert sorted(p for p, _ in results) == list(range(8))
        assert all(r == p * p for p, r in results)
        stop_workers(c, bag, 3)
        c.run_until_all(workers, limit=LIMIT)
        c.settle(2_000_000)
        assert c.converged()

    def test_host_crash_recycles_in_progress_task(self):
        c = make(seed=43)
        bag = seed_tasks(c, list(range(8)))
        pm = c.spawn(0, simstyle.failure_monitor, bag, 1)
        # worker on host 3 freezes holding its second task; we then crash
        # host 3 — the REAL membership protocol produces the failure tuple
        c.spawn(3, lambda v: simstyle.ft_worker(v, bag, 30, freeze_after=1),
                name="doomed")
        live_workers = [c.spawn(h, simstyle.ft_worker, bag, h) for h in (1, 2)]
        pc = c.spawn(0, simstyle.collector, 8)
        c.run(until=c.sim.now + 80_000)
        c.crash(3)
        c.run_until(pc.finished, limit=LIMIT)
        results = pc.finished.value
        assert sorted(p for p, _ in results) == list(range(8))  # nothing lost
        assert pm.finished.triggered or not pm.error
        stop_workers(c, bag, 2)
        c.run_until_all(live_workers, limit=LIMIT)
        c.settle(3_000_000)
        assert c.converged()

    def test_two_host_crashes(self):
        c = make(n_hosts=5, seed=47)
        bag = seed_tasks(c, list(range(10)))
        c.spawn(0, simstyle.failure_monitor, bag, 2)
        c.spawn(3, lambda v: simstyle.ft_worker(v, bag, 30, freeze_after=0))
        c.spawn(4, lambda v: simstyle.ft_worker(v, bag, 40, freeze_after=1))
        survivors = [c.spawn(h, simstyle.ft_worker, bag, h) for h in (1, 2)]
        pc = c.spawn(0, simstyle.collector, 10)
        c.run(until=c.sim.now + 60_000)
        c.crash(3)
        c.run(until=c.sim.now + 400_000)
        c.crash(4)
        c.run_until(pc.finished, limit=LIMIT)
        results = pc.finished.value
        assert sorted(p for p, _ in results) == list(range(10))
        stop_workers(c, bag, 2)
        c.run_until_all(survivors, limit=LIMIT)
        c.settle(3_000_000)
        assert c.converged()

    def test_custom_compute_function(self):
        c = make(seed=49)
        bag = seed_tasks(c, [2, 3, 4])
        w = c.spawn(
            1, lambda v: simstyle.ft_worker(v, bag, 1, compute=lambda t: t + 100)
        )
        pc = c.spawn(0, simstyle.collector, 3)
        c.run_until(pc.finished, limit=LIMIT)
        assert sorted(r for _p, r in pc.finished.value) == [102, 103, 104]
        stop_workers(c, bag, 1)
        c.run_until(w.finished, limit=LIMIT)
        assert w.finished.value == 3


class TestDistributedConsensusShape:
    """The consensus construction, sim-side, across hosts."""

    @staticmethod
    def _participant(view, pid, name="agree"):
        from repro.core.ags import Branch as B

        yield view.out(view.main_ts, name, "proposal", pid, pid * 100)
        res = yield view.execute(AGS([
            B(Guard.rd(view.main_ts, name, "decision",
                       formal(object, "d")), []),
            B(Guard.in_(view.main_ts, name, "proposal",
                        formal(int, "pid"), formal(object, "v")),
              [Op.out(view.main_ts, name, "decision", ref("v"))]),
        ]))
        return res["d"] if res.fired == 0 else res["v"]

    def test_agreement_across_hosts(self):
        c = make(seed=51)
        procs = [c.spawn(h, self._participant, h) for h in range(3)]
        c.run_until_all(procs, limit=LIMIT)
        values = {p.finished.value for p in procs}
        assert len(values) == 1
        assert values.pop() in {0, 100, 200}

    def test_agreement_survives_proposer_crash(self):
        c = make(seed=53)

        def proposer_only(view, pid):
            yield view.out(view.main_ts, "agree", "proposal", pid, pid * 100)
            yield hold(10_000_000_000.0)  # never decides

        c.spawn(2, proposer_only, 2)
        c.run(until=c.sim.now + 50_000)
        c.crash(2)  # the first proposer dies before deciding
        p = c.spawn(1, self._participant, 1)
        c.run_until(p.finished, limit=LIMIT)
        assert p.finished.value in (100, 200)  # someone's proposal won
        c.settle(3_000_000)
        assert c.converged()
