"""Unit tests for the deterministic TS state machine."""

import pytest

from repro import AGS, Branch, Guard, Op, formal, ref
from repro.core.spaces import MAIN_TS, Resilience, Scope
from repro.core.statemachine import (
    FAILURE_TAG,
    CreateSpace,
    DestroySpace,
    ExecuteAGS,
    HostFailed,
    HostRecovered,
    TSStateMachine,
)
from repro.core.tuples import Pattern


@pytest.fixture
def sm():
    return TSStateMachine()


def run_ags(sm, ags, rid=1, host=0, pid=0):
    return sm.apply(ExecuteAGS(rid, host, pid, ags))


def store(sm, handle=MAIN_TS):
    return sm.registry.store(handle)


class TestBasicOps:
    def test_out_deposits(self, sm):
        comps = run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "x", 1)))
        assert len(comps) == 1
        assert comps[0].result.succeeded
        assert store(sm).to_list() == [("x", 1)]

    def test_in_withdraws_and_binds(self, sm):
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "x", 42)))
        comps = run_ags(sm, AGS.single(Guard.in_(MAIN_TS, "x", formal(int, "v"))), rid=2)
        assert comps[0].result.bindings == {"v": 42}
        assert len(store(sm)) == 0

    def test_rd_does_not_withdraw(self, sm):
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "x", 42)))
        comps = run_ags(sm, AGS.single(Guard.rd(MAIN_TS, "x", formal(int, "v"))), rid=2)
        assert comps[0].result.bindings == {"v": 42}
        assert len(store(sm)) == 1

    def test_blocking_in_parks_until_out(self, sm):
        comps = run_ags(sm, AGS.single(Guard.in_(MAIN_TS, "x", formal(int, "v"))))
        assert comps == []
        assert len(sm.blocked) == 1
        comps = run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "x", 5)), rid=2)
        rids = {c.request_id for c in comps}
        assert rids == {1, 2}
        assert sm.blocked == []

    def test_probe_guard_never_blocks(self, sm):
        comps = run_ags(sm, AGS.single(Guard.inp(MAIN_TS, "x", formal(int))))
        assert len(comps) == 1
        assert not comps[0].result.succeeded
        assert comps[0].result.fired is None

    def test_wake_order_is_fifo(self, sm):
        run_ags(sm, AGS.single(Guard.in_(MAIN_TS, "x", formal(int, "v"))), rid=1)
        run_ags(sm, AGS.single(Guard.in_(MAIN_TS, "x", formal(int, "v"))), rid=2)
        comps = run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "x", 7)), rid=3)
        woken = [c.request_id for c in comps if c.request_id != 3]
        assert woken == [1]  # oldest blocked statement gets the tuple

    def test_one_out_wakes_chain(self, sm):
        # stmt1 waits for a->outs b ; stmt2 waits for b
        run_ags(
            sm,
            AGS.single(Guard.in_(MAIN_TS, "a"), [Op.out(MAIN_TS, "b")]),
            rid=1,
        )
        run_ags(sm, AGS.single(Guard.in_(MAIN_TS, "b")), rid=2)
        comps = run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "a")), rid=3)
        assert {c.request_id for c in comps} == {1, 2, 3}


class TestAtomicity:
    def test_fetch_and_increment(self, sm):
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "c", 0)))
        for i in range(10):
            run_ags(
                sm,
                AGS.single(
                    Guard.in_(MAIN_TS, "c", formal(int, "v")),
                    [Op.out(MAIN_TS, "c", ref("v") + 1)],
                ),
                rid=10 + i,
            )
        m = store(sm).find(Pattern(("c", formal(int, "v"))), remove=False)
        assert m.binding["v"] == 10

    def test_body_in_abort_rolls_back_everything(self, sm):
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "a", 1)))
        before = sm.fingerprint()
        comps = run_ags(
            sm,
            AGS.single(
                Guard.in_(MAIN_TS, "a", formal(int, "x")),
                [
                    Op.out(MAIN_TS, "b", 2),
                    Op.in_(MAIN_TS, "missing", formal(int, "y")),
                    Op.out(MAIN_TS, "c", 3),
                ],
            ),
            rid=2,
        )
        res = comps[0].result
        assert res.aborted
        assert not res.succeeded
        assert sm.fingerprint() == before  # guard withdraw also rolled back

    def test_rollback_restores_matching_priority(self, sm):
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "a", 1)))
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "a", 2)), rid=2)
        run_ags(
            sm,
            AGS.single(
                Guard.in_(MAIN_TS, "a", formal(int, "x")),
                [Op.in_(MAIN_TS, "nope")],
            ),
            rid=3,
        )
        m = store(sm).find(Pattern(("a", formal(int, "v"))), remove=False)
        assert m.binding["v"] == 1

    def test_body_probe_failure_does_not_abort(self, sm):
        comps = run_ags(
            sm,
            AGS.single(
                Guard.true(),
                [
                    Op.inp(MAIN_TS, "maybe", formal(int)),
                    Op.out(MAIN_TS, "done", 1),
                ],
            ),
        )
        res = comps[0].result
        assert res.succeeded
        assert res.probe_results == {0: False}
        assert store(sm).contains(Pattern(("done", 1)))

    def test_body_probe_binding_used_later_aborts_when_missed(self, sm):
        comps = run_ags(
            sm,
            AGS.single(
                Guard.true(),
                [
                    Op.inp(MAIN_TS, "maybe", formal(int, "v")),
                    Op.out(MAIN_TS, "copy", ref("v")),
                ],
            ),
        )
        assert comps[0].result.aborted
        assert len(store(sm)) == 0


class TestDisjunction:
    def test_branch_order_priority(self, sm):
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "a", 1), Op.out(MAIN_TS, "b", 2)))
        ags = AGS([
            Branch(Guard.in_(MAIN_TS, "a", formal(int, "x")), []),
            Branch(Guard.in_(MAIN_TS, "b", formal(int, "y")), []),
        ])
        comps = run_ags(sm, ags, rid=2)
        assert comps[0].result.fired == 0

    def test_second_branch_fires_when_first_blocked(self, sm):
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "b", 2)))
        ags = AGS([
            Branch(Guard.in_(MAIN_TS, "a", formal(int, "x")), []),
            Branch(Guard.in_(MAIN_TS, "b", formal(int, "y")), []),
        ])
        comps = run_ags(sm, ags, rid=2)
        assert comps[0].result.fired == 1
        assert comps[0].result.bindings == {"y": 2}

    def test_probe_or_default_pattern(self, sm):
        ags = AGS([
            Branch(Guard.inp(MAIN_TS, "job", formal(int, "j")), []),
            Branch(Guard.true(), [Op.out(MAIN_TS, "idle", 1)]),
        ])
        comps = run_ags(sm, ags)
        assert comps[0].result.fired == 1
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "job", 9)), rid=2)
        comps = run_ags(sm, ags, rid=3)
        assert comps[0].result.fired == 0
        assert comps[0].result.bindings == {"j": 9}

    def test_all_blocking_disjunction_parks(self, sm):
        ags = AGS([
            Branch(Guard.in_(MAIN_TS, "a"), []),
            Branch(Guard.in_(MAIN_TS, "b"), []),
        ])
        assert run_ags(sm, ags) == []
        comps = run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "b")), rid=2)
        woken = [c for c in comps if c.request_id == 1]
        assert woken and woken[0].result.fired == 1


class TestMoveCopy:
    def test_move_transfers_all_matches(self, sm):
        h = sm.registry.create("dst")
        for i in range(4):
            run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "t", i)), rid=i)
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "other", 1)), rid=10)
        run_ags(sm, AGS.atomic(Op.move(MAIN_TS, h, "t", formal(int))), rid=11)
        assert len(store(sm)) == 1
        assert [t[1] for t in store(sm, h).to_list()] == [0, 1, 2, 3]

    def test_copy_preserves_source(self, sm):
        h = sm.registry.create("dst")
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "t", 1)))
        run_ags(sm, AGS.atomic(Op.copy(MAIN_TS, h, "t", formal(int))), rid=2)
        assert len(store(sm)) == 1
        assert len(store(sm, h)) == 1

    def test_move_wakes_blocked_statements(self, sm):
        h = sm.registry.create("dst")
        run_ags(sm, AGS.single(Guard.in_(h, "t", formal(int, "v"))), rid=1)
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "t", 3)), rid=2)
        comps = run_ags(sm, AGS.atomic(Op.move(MAIN_TS, h, "t", formal(int))), rid=3)
        assert any(c.request_id == 1 for c in comps)


class TestSpaceCommands:
    def test_create_space_returns_handle(self, sm):
        comps = sm.apply(CreateSpace(1, 0, "s", Resilience.STABLE, Scope.SHARED, None))
        h = comps[0].result
        assert sm.registry.exists(h)

    def test_destroy_space(self, sm):
        h = sm.registry.create("s")
        comps = sm.apply(DestroySpace(1, 0, h))
        assert comps[0].result is True
        assert not sm.registry.exists(h)


class TestFailureCommands:
    def test_host_failed_deposits_failure_tuple(self, sm):
        sm.apply(HostFailed(1, 0, 2))
        assert store(sm).contains(Pattern((FAILURE_TAG, 2)))

    def test_host_failed_wakes_failure_watchers(self, sm):
        run_ags(sm, AGS.single(Guard.in_(MAIN_TS, FAILURE_TAG, formal(int, "h"))))
        comps = sm.apply(HostFailed(2, 0, 5))
        assert comps and comps[0].result.bindings == {"h": 5}

    def test_host_failed_drops_dead_hosts_blocked_statements(self, sm):
        sm.apply(ExecuteAGS(1, 3, 0, AGS.single(Guard.in_(MAIN_TS, "never"))))
        assert len(sm.blocked) == 1
        sm.apply(HostFailed(2, 0, 3))
        assert sm.blocked == []

    def test_host_recovered_deposits_recovery_tuple(self, sm):
        sm.apply(HostRecovered(1, 0, 2))
        assert store(sm).contains(Pattern(("ft_recovery", 2)))


class TestDeterminismAndSnapshots:
    def test_identical_command_streams_converge(self):
        cmds = [
            ExecuteAGS(1, 0, 0, AGS.atomic(Op.out(MAIN_TS, "x", 1))),
            ExecuteAGS(2, 1, 0, AGS.single(Guard.in_(MAIN_TS, "x", formal(int, "v")),
                                           [Op.out(MAIN_TS, "x", ref("v") + 1)])),
            HostFailed(3, 0, 2),
            ExecuteAGS(4, 0, 0, AGS.atomic(Op.out(MAIN_TS, "y", 2))),
        ]
        a, b = TSStateMachine(), TSStateMachine()
        for c in cmds:
            a.apply(c)
        for c in cmds:
            b.apply(c)
        assert a.fingerprint() == b.fingerprint()

    def test_snapshot_roundtrip_includes_blocked(self, sm):
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "x", 1)))
        run_ags(sm, AGS.single(Guard.in_(MAIN_TS, "never")), rid=2)
        clone = TSStateMachine.from_snapshot(sm.snapshot())
        assert clone.fingerprint() == sm.fingerprint()
        # the cloned blocked statement wakes identically
        c1 = sm.apply(ExecuteAGS(3, 0, 0, AGS.atomic(Op.out(MAIN_TS, "never"))))
        c2 = clone.apply(ExecuteAGS(3, 0, 0, AGS.atomic(Op.out(MAIN_TS, "never"))))
        assert [c.request_id for c in c1] == [c.request_id for c in c2]
        assert sm.fingerprint() == clone.fingerprint()

    def test_op_stats(self):
        sm = TSStateMachine(op_stats=True)
        run_ags(sm, AGS.atomic(Op.out(MAIN_TS, "x", 1)))
        run_ags(sm, AGS.single(Guard.in_(MAIN_TS, "x", formal(int, "v"))), rid=2)
        assert sm.op_counts["out"] == 1
        assert sm.op_counts["in"] == 1
