"""Unit tests for the discrete-event kernel and processes."""

import pytest

from repro.sim import SimEvent, SimProcess, Simulator, hold
from repro.sim.kernel import MS


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestScheduling:
    def test_callbacks_run_in_time_order(self, sim):
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 30

    def test_ties_break_by_schedule_order(self, sim):
        order = []
        for tag in "abc":
            sim.schedule(5, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_cancel(self, sim):
        hits = []
        h = sim.schedule(10, hits.append, 1)
        h.cancel()
        sim.run()
        assert hits == []

    def test_run_until_stops_clock(self, sim):
        sim.schedule(100, lambda: None)
        sim.run(until=50)
        assert sim.now == 50
        sim.run()
        assert sim.now == 100

    def test_nested_scheduling(self, sim):
        hits = []

        def outer():
            hits.append(sim.now)
            sim.schedule(5, hits.append, sim.now + 5)

        sim.schedule(10, outer)
        sim.run()
        assert hits == [10, 15]

    def test_determinism_same_seed(self):
        def run(seed):
            s = Simulator(seed=seed)
            vals = []
            def tick(n):
                if n:
                    vals.append(s.rng.random())
                    s.schedule(s.rng.uniform(1, 10), tick, n - 1)
            tick(20)
            s.run()
            return vals, s.now

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestEvents:
    def test_wait_then_trigger(self, sim):
        ev = sim.event("e")
        got = []
        ev.add_waiter(got.append)
        sim.schedule(10, ev.succeed, 42)
        sim.run()
        assert got == [42]

    def test_wait_after_trigger_fires_immediately(self, sim):
        ev = sim.event()
        ev.succeed("v")
        got = []
        ev.add_waiter(got.append)
        sim.run()
        assert got == ["v"]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_run_until_event(self, sim):
        ev = sim.event()
        sim.schedule(25, ev.succeed, "done")
        assert sim.run_until_event(ev) == "done"
        assert sim.now == 25

    def test_run_until_event_deadlock_detected(self, sim):
        ev = sim.event("never")
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run_until_event(ev)


class TestProcesses:
    def test_hold_advances_time(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield hold(100)
            trace.append(sim.now)

        SimProcess(sim, proc())
        sim.run()
        assert trace == [0, 100]

    def test_return_value_via_finished(self, sim):
        def proc():
            yield hold(1)
            return "answer"

        p = SimProcess(sim, proc())
        assert sim.run_until_event(p.finished) == "answer"

    def test_wait_on_event(self, sim):
        ev = sim.event()

        def proc():
            value = yield ev
            return value * 2

        p = SimProcess(sim, proc())
        sim.schedule(10, ev.succeed, 21)
        assert sim.run_until_event(p.finished) == 42

    def test_join_other_process(self, sim):
        def child():
            yield hold(50)
            return "child-result"

        def parent():
            c = SimProcess(sim, child())
            result = yield c
            return f"got {result}"

        p = SimProcess(sim, parent())
        assert sim.run_until_event(p.finished) == "got child-result"
        assert sim.now == 50

    def test_exception_propagates_to_joiner(self, sim):
        def bad():
            yield hold(1)
            raise ValueError("inner")

        def parent():
            b = SimProcess(sim, bad())
            yield b

        p = SimProcess(sim, parent())
        sim.run()
        assert isinstance(p.error, ValueError)

    def test_kill_stops_process(self, sim):
        trace = []

        def proc():
            trace.append("start")
            yield hold(100)
            trace.append("end")  # must never run

        p = SimProcess(sim, proc())
        sim.run(until=50)
        p.kill()
        sim.run()
        assert trace == ["start"]
        assert not p.alive
        assert not p.finished.triggered

    def test_invalid_yield_raises(self, sim):
        def proc():
            yield "nonsense"

        p = SimProcess(sim, proc())
        sim.run()
        assert isinstance(p.error, TypeError)

    def test_two_processes_interleave(self, sim):
        trace = []

        def proc(tag, step):
            for _ in range(3):
                yield hold(step)
                trace.append((tag, sim.now))

        SimProcess(sim, proc("a", 10))
        SimProcess(sim, proc("b", 15))
        sim.run()
        # at the t=30 tie, b resumes first: its wakeup was scheduled at
        # t=15, before a's at t=20 (FIFO among equal times)
        assert trace == [
            ("a", 10), ("b", 15), ("a", 20), ("b", 30), ("a", 30), ("b", 45)
        ]

    def test_ms_constant(self):
        assert MS == 1000.0
