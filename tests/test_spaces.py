"""Unit tests for tuple-space attributes, handles and the registry."""

import pytest

from repro import Resilience, Scope, ScopeError, SpaceError, SpaceRegistry
from repro.core.spaces import MAIN_TS
from repro.core.tuples import make_tuple


@pytest.fixture
def reg():
    return SpaceRegistry()


class TestLifecycle:
    def test_main_exists_by_default(self, reg):
        assert reg.exists(MAIN_TS)
        assert reg.store(MAIN_TS) is not None

    def test_create_allocates_sequential_ids(self, reg):
        a = reg.create("a")
        b = reg.create("b")
        assert b.id == a.id + 1
        assert a != b

    def test_create_attributes(self, reg):
        h = reg.create("scratch", Resilience.VOLATILE, Scope.SHARED)
        assert not h.stable
        assert h.shared

    def test_private_requires_owner(self, reg):
        with pytest.raises(SpaceError):
            reg.create("p", Resilience.STABLE, Scope.PRIVATE)
        h = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=7)
        assert not h.shared

    def test_destroy(self, reg):
        h = reg.create("tmp")
        reg.destroy(h)
        assert not reg.exists(h)
        with pytest.raises(SpaceError):
            reg.store(h)

    def test_destroy_twice_raises(self, reg):
        h = reg.create("tmp")
        reg.destroy(h)
        with pytest.raises(SpaceError):
            reg.destroy(h)

    def test_main_cannot_be_destroyed(self, reg):
        with pytest.raises(SpaceError):
            reg.destroy(MAIN_TS)

    def test_destroy_owned_by(self, reg):
        reg.create("p1", Resilience.STABLE, Scope.PRIVATE, owner=3)
        reg.create("p2", Resilience.STABLE, Scope.PRIVATE, owner=3)
        keep = reg.create("p3", Resilience.STABLE, Scope.PRIVATE, owner=4)
        doomed = reg.destroy_owned_by(3)
        assert len(doomed) == 2
        assert reg.exists(keep)

    def test_destroy_owned_by_spares_shared_spaces(self, reg):
        # owner is normalized to None for shared spaces at creation, so a
        # process's exit must never take a shared space down with it
        shared = reg.create("s", Resilience.STABLE, Scope.SHARED, owner=3)
        private = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        doomed = reg.destroy_owned_by(3)
        assert doomed == [private]
        assert reg.exists(shared)
        assert not reg.exists(private)

    def test_destroy_owned_by_unknown_owner_is_noop(self, reg):
        reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        assert reg.destroy_owned_by(99) == []
        assert len(reg) == 2

    def test_destroy_owned_by_returns_destroyable_handles(self, reg):
        # returned handles must already be dead: destroying them again
        # (e.g. a double process-exit notification) raises, not corrupts
        reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        (h,) = reg.destroy_owned_by(3)
        with pytest.raises(SpaceError):
            reg.destroy(h)


class TestScope:
    def test_private_access_by_owner_ok(self, reg):
        h = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        assert reg.store(h, accessor=3) is not None

    def test_private_access_by_other_rejected(self, reg):
        h = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        with pytest.raises(ScopeError):
            reg.store(h, accessor=4)

    def test_runtime_internal_access_bypasses_scope(self, reg):
        h = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        assert reg.store(h, accessor=None) is not None


class TestEnumeration:
    def test_handles_in_creation_order(self, reg):
        a = reg.create("a")
        b = reg.create("b")
        assert reg.handles() == [MAIN_TS, a, b]

    def test_stable_handles_filter(self, reg):
        reg.create("v", Resilience.VOLATILE)
        s = reg.create("s", Resilience.STABLE)
        assert s in reg.stable_handles()
        assert all(h.stable for h in reg.stable_handles())

    def test_len_and_iter(self, reg):
        reg.create("a")
        assert len(reg) == 2
        pairs = list(reg)
        assert pairs[0][0] == MAIN_TS


class TestSnapshot:
    def test_roundtrip(self, reg):
        h = reg.create("data")
        reg.store(h).add(make_tuple("x", 1))
        reg.store(MAIN_TS).add(make_tuple("y", 2))
        snap = reg.snapshot(stable_only=False)
        clone = SpaceRegistry.from_snapshot(snap)
        assert clone.fingerprint() == reg.fingerprint()
        assert clone.store(h).to_list() == [("x", 1)]
        # id allocation continues identically
        assert clone.create("z") == reg.create("z")

    def test_stable_only_excludes_volatile(self, reg):
        v = reg.create("v", Resilience.VOLATILE)
        reg.store(v).add(make_tuple("x", 1))
        snap = reg.snapshot(stable_only=True)
        clone = SpaceRegistry.from_snapshot(snap)
        assert not clone.exists(v)

    def test_first_id_partitioning(self):
        vol = SpaceRegistry(create_main=False, first_id=1_000_000)
        h = vol.create("v", Resilience.VOLATILE)
        assert h.id == 1_000_000

    def test_roundtrip_with_volatile_spaces(self, reg):
        v = reg.create("scratch", Resilience.VOLATILE)
        p = reg.create("priv", Resilience.VOLATILE, Scope.PRIVATE, owner=9)
        reg.store(v).add(make_tuple("v", 1))
        reg.store(p, accessor=9).add(make_tuple("p", 2))
        clone = SpaceRegistry.from_snapshot(reg.snapshot(stable_only=False))
        assert clone.fingerprint() == reg.fingerprint()
        assert clone.store(v).to_list() == [("v", 1)]
        # ownership survives the round trip: scope still enforced
        with pytest.raises(ScopeError):
            clone.store(p, accessor=4)
        assert clone.store(p, accessor=9).to_list() == [("p", 2)]

    def test_roundtrip_preserves_id_gaps_no_reuse(self, reg):
        # destroy punches a hole in the id sequence; the snapshot must
        # carry next_id so the clone can never re-mint the dead id for a
        # different space (stale handles would silently resolve to it)
        a = reg.create("a")
        dead = reg.create("doomed")
        reg.destroy(dead)
        clone = SpaceRegistry.from_snapshot(reg.snapshot(stable_only=False))
        assert not clone.exists(dead)
        fresh = clone.create("fresh")
        assert fresh.id > dead.id
        assert fresh == reg.create("fresh")  # allocation stays deterministic
        assert clone.exists(a)

    def test_roundtrip_after_owner_exit(self, reg):
        # reused-process-id scenario: pid 3 dies (spaces reaped), a new
        # process with the same pid creates more; the round trip must keep
        # the survivor set and ownership exact
        reg.create("old", Resilience.STABLE, Scope.PRIVATE, owner=3)
        reg.destroy_owned_by(3)
        new = reg.create("new", Resilience.STABLE, Scope.PRIVATE, owner=3)
        clone = SpaceRegistry.from_snapshot(reg.snapshot(stable_only=False))
        assert [h.name for h in clone.handles()] == ["main", "new"]
        assert clone.destroy_owned_by(3) == [new]
