"""Unit tests for tuple-space attributes, handles and the registry."""

import pytest

from repro import Resilience, Scope, ScopeError, SpaceError, SpaceRegistry
from repro.core.spaces import MAIN_TS
from repro.core.tuples import make_tuple


@pytest.fixture
def reg():
    return SpaceRegistry()


class TestLifecycle:
    def test_main_exists_by_default(self, reg):
        assert reg.exists(MAIN_TS)
        assert reg.store(MAIN_TS) is not None

    def test_create_allocates_sequential_ids(self, reg):
        a = reg.create("a")
        b = reg.create("b")
        assert b.id == a.id + 1
        assert a != b

    def test_create_attributes(self, reg):
        h = reg.create("scratch", Resilience.VOLATILE, Scope.SHARED)
        assert not h.stable
        assert h.shared

    def test_private_requires_owner(self, reg):
        with pytest.raises(SpaceError):
            reg.create("p", Resilience.STABLE, Scope.PRIVATE)
        h = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=7)
        assert not h.shared

    def test_destroy(self, reg):
        h = reg.create("tmp")
        reg.destroy(h)
        assert not reg.exists(h)
        with pytest.raises(SpaceError):
            reg.store(h)

    def test_destroy_twice_raises(self, reg):
        h = reg.create("tmp")
        reg.destroy(h)
        with pytest.raises(SpaceError):
            reg.destroy(h)

    def test_main_cannot_be_destroyed(self, reg):
        with pytest.raises(SpaceError):
            reg.destroy(MAIN_TS)

    def test_destroy_owned_by(self, reg):
        reg.create("p1", Resilience.STABLE, Scope.PRIVATE, owner=3)
        reg.create("p2", Resilience.STABLE, Scope.PRIVATE, owner=3)
        keep = reg.create("p3", Resilience.STABLE, Scope.PRIVATE, owner=4)
        doomed = reg.destroy_owned_by(3)
        assert len(doomed) == 2
        assert reg.exists(keep)


class TestScope:
    def test_private_access_by_owner_ok(self, reg):
        h = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        assert reg.store(h, accessor=3) is not None

    def test_private_access_by_other_rejected(self, reg):
        h = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        with pytest.raises(ScopeError):
            reg.store(h, accessor=4)

    def test_runtime_internal_access_bypasses_scope(self, reg):
        h = reg.create("p", Resilience.STABLE, Scope.PRIVATE, owner=3)
        assert reg.store(h, accessor=None) is not None


class TestEnumeration:
    def test_handles_in_creation_order(self, reg):
        a = reg.create("a")
        b = reg.create("b")
        assert reg.handles() == [MAIN_TS, a, b]

    def test_stable_handles_filter(self, reg):
        reg.create("v", Resilience.VOLATILE)
        s = reg.create("s", Resilience.STABLE)
        assert s in reg.stable_handles()
        assert all(h.stable for h in reg.stable_handles())

    def test_len_and_iter(self, reg):
        reg.create("a")
        assert len(reg) == 2
        pairs = list(reg)
        assert pairs[0][0] == MAIN_TS


class TestSnapshot:
    def test_roundtrip(self, reg):
        h = reg.create("data")
        reg.store(h).add(make_tuple("x", 1))
        reg.store(MAIN_TS).add(make_tuple("y", 2))
        snap = reg.snapshot(stable_only=False)
        clone = SpaceRegistry.from_snapshot(snap)
        assert clone.fingerprint() == reg.fingerprint()
        assert clone.store(h).to_list() == [("x", 1)]
        # id allocation continues identically
        assert clone.create("z") == reg.create("z")

    def test_stable_only_excludes_volatile(self, reg):
        v = reg.create("v", Resilience.VOLATILE)
        reg.store(v).add(make_tuple("x", 1))
        snap = reg.snapshot(stable_only=True)
        clone = SpaceRegistry.from_snapshot(snap)
        assert not clone.exists(v)

    def test_first_id_partitioning(self):
        vol = SpaceRegistry(create_main=False, first_id=1_000_000)
        h = vol.create("v", Resilience.VOLATILE)
        assert h.id == 1_000_000
