"""The read fast path and the replication core's timeout/leak fixes.

Covers the read-only classifier, read-your-writes through the fast lane,
every rung of the fallback ladder (miss, crash, ordered timeout), and the
regression suite for the bookkeeping leaks: ``_waiters``, ``_reads`` and
``_queries`` must be empty after every way a call or query can end.
"""

import threading

import pytest

from repro import AGS, Guard, Op, TimeoutError_, formal
from repro.core.spaces import MAIN_TS
from repro.core.statemachine import CancelRequest, ExecuteAGS
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime
from repro.replication.group import CLIENT_ORIGIN

BACKENDS = {
    "threaded": ThreadedReplicaRuntime,
    "multiproc": MultiprocessRuntime,
}


@pytest.fixture(params=sorted(BACKENDS))
def rt(request):
    rt = BACKENDS[request.param](n_replicas=3)
    yield rt
    rt.shutdown()


@pytest.fixture
def trt():
    rt = ThreadedReplicaRuntime(n_replicas=3)
    yield rt
    rt.shutdown()


def assert_clean(group):
    """The leak regression: no registration survives its call."""
    assert not group._waiters
    assert not group._reads
    assert not group._queries


class TestReadOnlyClassifier:
    def test_rd_and_rdp_forms_are_read_only(self):
        assert AGS.single(Guard.rd(MAIN_TS, "x", formal(int))).read_only
        assert AGS.single(Guard.rdp(MAIN_TS, "x", formal(int))).read_only
        assert AGS.single(
            Guard.rd(MAIN_TS, "x", formal(int, "v")),
            [Op.rd(MAIN_TS, "y", formal(int)), Op.rdp(MAIN_TS, "z")],
        ).read_only

    def test_consuming_and_writing_forms_are_not(self):
        assert not AGS.single(Guard.in_(MAIN_TS, "x", formal(int))).read_only
        assert not AGS.single(Guard.inp(MAIN_TS, "x")).read_only
        assert not AGS.single(
            Guard.rd(MAIN_TS, "x", formal(int)), [Op.out(MAIN_TS, "y", 1)]
        ).read_only
        assert not AGS.single(
            Guard.rd(MAIN_TS, "x", formal(int)), [Op.in_(MAIN_TS, "y")]
        ).read_only
        # an unconditional write: TRUE guard does not make it read-only
        assert not AGS.atomic(Op.out(MAIN_TS, "x", 1)).read_only

    def test_disjunction_read_only_iff_every_branch_is(self):
        ro = AGS(
            [
                AGS.single(Guard.rd(MAIN_TS, "a")).branches[0],
                AGS.single(Guard.rdp(MAIN_TS, "b")).branches[0],
            ]
        )
        assert ro.read_only
        mixed = AGS(
            [
                AGS.single(Guard.rd(MAIN_TS, "a")).branches[0],
                AGS.single(Guard.in_(MAIN_TS, "b")).branches[0],
            ]
        )
        assert not mixed.read_only


class TestFastPathSemantics:
    def test_read_your_writes(self, rt):
        for k in range(20):
            rt.out(rt.main_ts, "ryw", k)
            assert rt.rd(rt.main_ts, "ryw", k) == ("ryw", k)
        counters = rt.metrics_snapshot()["counters"]
        assert counters.get("read_fastpath", 0) >= 20
        assert_clean(rt.group)

    def test_rdp_takes_fast_path(self, rt):
        rt.out(rt.main_ts, "probe", 1)
        assert rt.rdp(rt.main_ts, "probe", formal(int)) == ("probe", 1)
        assert rt.rdp(rt.main_ts, "absent") is None
        counters = rt.metrics_snapshot()["counters"]
        assert counters.get("read_fastpath", 0) >= 2
        assert_clean(rt.group)

    def test_blocking_read_falls_back_to_ordered_park(self, rt):
        """A rd whose guard cannot fire locally must not spin or hang."""
        waiter = rt.eval_(
            lambda proc: proc.rd(proc.main_ts, "later", formal(int))
        )
        rt.out(rt.main_ts, "later", 7)
        assert waiter.join(timeout=30) == ("later", 7)
        counters = rt.metrics_snapshot()["counters"]
        assert counters.get("read_fallback", 0) >= 1
        assert_clean(rt.group)

    def test_reads_never_mutate_state(self, rt):
        rt.out(rt.main_ts, "keep", 1)
        for _ in range(10):
            assert rt.rd(rt.main_ts, "keep", formal(int)) == ("keep", 1)
        rt.quiesce()
        assert rt.space_size(rt.main_ts) == 1
        assert rt.converged()

    def test_escape_hatch_forces_ordered(self):
        rt = ThreadedReplicaRuntime(n_replicas=3, read_fastpath=False)
        try:
            rt.out(rt.main_ts, "x", 1)
            assert rt.rd(rt.main_ts, "x", formal(int)) == ("x", 1)
            counters = rt.metrics_snapshot()["counters"]
            assert counters.get("read_fastpath", 0) == 0
        finally:
            rt.shutdown()


class TestTimeoutBookkeeping:
    def test_fast_read_timeout_leaves_no_registrations(self, rt):
        with pytest.raises(TimeoutError_):
            rt.rd(rt.main_ts, "never", timeout=0.2)
        assert_clean(rt.group)
        # the timed-out read consumed nothing and blocks nothing
        rt.out(rt.main_ts, "never")
        assert rt.inp(rt.main_ts, "never") is not None
        assert_clean(rt.group)

    def test_ordered_timeout_leaves_no_registrations(self, rt):
        with pytest.raises(TimeoutError_):
            rt.in_(rt.main_ts, "never", timeout=0.2)
        assert_clean(rt.group)
        # satellite regression: the cancelled `in` never consumes a tuple
        rt.out(rt.main_ts, "never")
        assert rt.inp(rt.main_ts, "never") is not None
        assert_clean(rt.group)

    def test_unresponsive_group_pops_waiter(self, trt, monkeypatch):
        """The cancel-grace expiry must not leak the waiter (satellite 1)."""
        monkeypatch.setattr(
            "repro.replication.group._CANCEL_GRACE_S", 0.2
        )
        for i in range(3):
            trt.crash_replica(i, notify=False)
        with pytest.raises(TimeoutError_, match="unresponsive"):
            trt.in_(trt.main_ts, "never", timeout=0.1)
        assert_clean(trt.group)

    def test_completion_racing_cancel_returns_result(self, rt):
        """Satellite 4: a completion that lands between the guard timeout
        and the CancelRequest being sequenced is the call's result — the
        client must return the tuple, not raise."""
        group = rt.group
        orig_post = group.post
        fired = []

        def post(cmd):
            if isinstance(cmd, CancelRequest) and not fired:
                fired.append(True)
                # sequence a matching out *ahead* of the cancel: the in_
                # fires first, so the cancel arrives after completion
                orig_post(
                    ExecuteAGS(
                        group.next_request_id(),
                        CLIENT_ORIGIN,
                        0,
                        AGS.atomic(Op.out(rt.main_ts, "late", 1)),
                    )
                )
            orig_post(cmd)

        rt.group.post = post
        try:
            assert rt.in_(rt.main_ts, "late", formal(int), timeout=0.3) == (
                "late",
                1,
            )
        finally:
            rt.group.post = orig_post
        rt.quiesce()
        # consumed exactly once, by the call that returned it
        assert rt.inp(rt.main_ts, "late", formal(int)) is None
        assert_clean(rt.group)
        assert rt.converged()


class TestQueryBookkeeping:
    def test_query_fails_fast_on_crashed_replica(self, trt):
        trt.crash_replica(1)
        with pytest.raises(TimeoutError_, match="crashed"):
            trt.group.query(1, "applied")
        assert_clean(trt.group)

    def test_crash_answers_pending_queries(self, trt, monkeypatch):
        """A query in flight when its replica dies ends promptly, and the
        registration is reaped (satellite 2)."""
        transport = trt.group.transport
        orig_send = transport.send
        dropped = []

        def send(replica_id, item):
            if item[0] == "QUERY" and replica_id == 0 and not dropped:
                dropped.append(item)  # swallow it: the query now hangs
                return
            orig_send(replica_id, item)

        monkeypatch.setattr(transport, "send", send)
        failer = threading.Timer(0.3, trt.crash_replica, (0,))
        failer.start()
        try:
            with pytest.raises(TimeoutError_):
                trt.group.query(0, "applied", timeout=10.0)
        finally:
            failer.cancel()
        assert_clean(trt.group)

    def test_query_timeout_reaps_registration(self, trt, monkeypatch):
        transport = trt.group.transport
        orig_send = transport.send

        def send(replica_id, item):
            if item[0] == "QUERY":
                return  # never delivered: force the timeout path
            orig_send(replica_id, item)

        monkeypatch.setattr(transport, "send", send)
        with pytest.raises(TimeoutError_, match="did not answer"):
            trt.group.query(2, "applied", timeout=0.2)
        assert_clean(trt.group)

    def test_fingerprints_tolerate_mid_iteration_crash(self, trt):
        group = trt.group
        orig_query = group.query

        def query(replica_id, what, arg=None, timeout=30.0):
            if replica_id == 1 and group.alive[1]:
                group.crash_replica(1, notify=False)
            return orig_query(replica_id, what, arg, timeout=timeout)

        group.query = query
        try:
            prints = group.fingerprints()
        finally:
            group.query = orig_query
        assert len(prints) == 2  # replica 1 skipped, not an error
        assert len(set(prints)) == 1


class TestCrashRaces:
    def test_read_racing_crash_completes_via_fallback(self, trt):
        """A read sent to a replica that dies mid-flight is rerouted
        through the total order — it completes, it never hangs."""
        trt.out(trt.main_ts, "r", 1)
        transport = trt.group.transport
        orig_send = transport.send
        crashed = []

        def send(replica_id, item):
            if item[0] == "READS" and not crashed:
                crashed.append(replica_id)
                trt.group.crash_replica(replica_id, notify=False)
            orig_send(replica_id, item)

        transport.send = send
        try:
            assert trt.rd(trt.main_ts, "r", formal(int)) == ("r", 1)
        finally:
            transport.send = orig_send
        assert crashed, "the crash injection never ran"
        counters = trt.metrics_snapshot()["counters"]
        assert counters.get("read_fallback", 0) >= 1
        assert_clean(trt.group)

    def test_crash_replica_is_idempotent(self, trt):
        trt.crash_replica(0)
        trt.crash_replica(0)  # second call: silent no-op under the lock
        assert trt.group.alive == [False, True, True]
        trt.out(trt.main_ts, "still", 1)
        assert trt.rd(trt.main_ts, "still", formal(int)) == ("still", 1)
        assert trt.converged()

    def test_reads_in_flight_across_crash_and_recovery(self):
        """converged() after a mixed read/write run with a crash and a
        recovery injected mid-stream (the acceptance scenario)."""
        with MultiprocessRuntime(n_replicas=3) as rt:
            mid = threading.Event()

            def body(c):
                for k in range(30):
                    rt.out(rt.main_ts, "mix", c, k)
                    assert rt.rd(rt.main_ts, "mix", c, formal(int)) is not None
                    if k == 15:
                        mid.set()

            def fault():
                mid.wait(30.0)
                rt.crash_replica(2)
                rt.recover_replica(2)

            clients = [
                threading.Thread(target=body, args=(c,)) for c in range(3)
            ]
            injector = threading.Thread(target=fault)
            injector.start()
            for t in clients:
                t.start()
            for t in clients:
                t.join(60.0)
                assert not t.is_alive()
            injector.join(60.0)
            rt.quiesce()
            assert rt.converged()
            assert len(rt.fingerprints()) == 3
            assert_clean(rt.group)
