"""End-to-end AGS tracing: flight recorder, Chrome export, checker.

Covers the observability tentpole across every layer it touches: the
ring-buffer recorder itself, trace-id propagation through the sequencer
batch and the pickling multiproc transport, the Chrome trace-event
exporter, the unified sim-tracer schema, and the trace-driven
replica-consistency checker — including its ability to flag a
deliberately forked apply order in a fault-injection run.
"""

import json
import os

import pytest

from repro import formal
from repro.consul import ClusterConfig, SimCluster
from repro.core.runtime import LocalRuntime
from repro.obs.check import (
    apply_streams,
    check_apply_streams,
    check_consistency,
)
from repro.obs.tracing import (
    FlightRecorder,
    SpanEvent,
    render_events,
    to_chrome_trace,
)
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime
from repro.sim.trace import Tracer


def span(ts, track, name, **args):
    return SpanEvent(ts, track, "test", name, dur=0.001, args=args)


class TestFlightRecorder:
    def test_records_in_order(self):
        rec = FlightRecorder()
        for i in range(5):
            rec.record(span(float(i), "t", "e", i=i))
        assert [e.args["i"] for e in rec.events()] == [0, 1, 2, 3, 4]

    def test_ring_keeps_most_recent(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(span(float(i), "t", "e", i=i))
        assert len(rec) == 4
        assert [e.args["i"] for e in rec.events()] == [6, 7, 8, 9]

    def test_spans_filter(self):
        rec = FlightRecorder()
        rec.record_span(0.0, "a", "c", "x", trace_id=1)
        rec.record_span(1.0, "b", "c", "y", trace_id=2)
        assert len(rec.spans("x")) == 1
        assert len(rec.spans(track="b")) == 1
        assert len(rec.spans(trace_id=2)) == 1
        rec.clear()
        assert len(rec) == 0

    def test_trace_ids_unique(self):
        rec = FlightRecorder()
        ids = [rec.next_trace_id() for _ in range(100)]
        assert len(set(ids)) == 100


class TestChromeExport:
    def test_export_shape_and_units(self):
        rec = FlightRecorder()
        rec.record_span(0.5, "client:main", "client", "e2e", dur=0.25, trace_id=7)
        rec.record_span(0.6, "replica-0", "membership", "crash")  # instant
        doc = rec.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        evs = doc["traceEvents"]
        names = {e["args"]["name"] for e in evs if e["name"] == "thread_name"}
        assert names == {"client:main", "replica-0"}
        complete = [e for e in evs if e["ph"] == "X"]
        assert complete[0]["ts"] == pytest.approx(0.5e6)
        assert complete[0]["dur"] == pytest.approx(0.25e6)
        assert complete[0]["args"]["trace_id"] == 7
        instants = [e for e in evs if e["ph"] == "i"]
        assert len(instants) == 1
        json.dumps(doc)  # must be serializable as-is

    def test_track_ordering_client_sequencer_replicas(self):
        rec = FlightRecorder()
        for track in ("replica-1", "sequencer", "client:main", "replica-0"):
            rec.record_span(0.0, track, "c", "x", dur=0.1)
        doc = rec.to_chrome()
        rows = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert rows["client:main"] < rows["sequencer"] < rows["replica-0"]
        assert rows["replica-0"] < rows["replica-1"]

    def test_render_events_text(self):
        rec = FlightRecorder()
        rec.record_span(0.0, "client:main", "client", "e2e", dur=0.1, trace_id=3)
        text = render_events(rec.events())
        assert "e2e" in text and "trace=3" in text


class TestLocalRuntimeTracing:
    def test_spans_recorded_per_ags(self):
        tracer = FlightRecorder()
        rt = LocalRuntime(tracer=tracer)
        rt.out(rt.main_ts, "x", 1)
        rt.in_(rt.main_ts, "x", formal(int))
        for name in ("submit_to_order", "apply", "e2e"):
            assert len(tracer.spans(name)) == 2
        # all three spans of one AGS share its trace id
        tid = tracer.spans("e2e")[0].trace_id
        assert {e.name for e in tracer.spans(trace_id=tid)} == {
            "submit_to_order", "apply", "e2e",
        }
        assert check_consistency(tracer).ok

    def test_tracing_disabled_is_default(self):
        rt = LocalRuntime()
        rt.out(rt.main_ts, "x", 1)
        assert rt.tracer is None


class TestThreadedTracing:
    def test_spans_nest_under_one_trace(self):
        tracer = FlightRecorder()
        rt = ThreadedReplicaRuntime(3, tracer=tracer)
        try:
            rt.out(rt.main_ts, "k", 1)
            rt.in_(rt.main_ts, "k", formal(int))
            rt.quiesce()
        finally:
            rt.shutdown()
        e2e = tracer.spans("e2e")
        assert len(e2e) == 2
        for ev in e2e:
            related = tracer.spans(trace_id=ev.trace_id)
            names = sorted(e.name for e in related)
            # 3 replica applies + e2e + submit, all under one trace id
            assert names == ["apply", "apply", "apply", "e2e", "submit_to_order"]
            sub = next(e for e in related if e.name == "submit_to_order")
            # client spans nest: e2e starts with submit and outlasts it
            assert sub.ts == ev.ts and sub.dur <= ev.dur
            assert {e.track for e in related if e.name == "apply"} == {
                "replica-0", "replica-1", "replica-2",
            }
        # the batch broadcast span names the traced commands it carried
        broadcast = tracer.spans("broadcast")
        assert broadcast and all(e.track == "sequencer" for e in broadcast)
        carried = {t for e in broadcast for t in e.args["trace_ids"]}
        assert {e.trace_id for e in e2e} <= carried

    def test_consistency_ok_under_concurrency_and_crash(self):
        tracer = FlightRecorder()
        rt = ThreadedReplicaRuntime(3, tracer=tracer)
        try:
            def worker(proc):
                for i in range(10):
                    proc.out(proc.main_ts, "w", i)

            handles = [rt.eval_(worker) for _ in range(3)]
            rt.crash_replica(1)
            for h in handles:
                h.join(timeout=30)
            rt.quiesce()
        finally:
            rt.shutdown()
        report = check_consistency(tracer)
        assert report.ok, report.summary()
        # the crashed replica stops mid-stream: fewer applies, no forks
        streams = report.streams
        assert len(streams.get("replica-1", [])) <= len(streams["replica-0"])
        assert tracer.spans("crash", track="replica-1")

    def test_no_tracer_means_no_trace_ids(self):
        rt = ThreadedReplicaRuntime(2)
        try:
            rt.out(rt.main_ts, "x", 1)
            rt.quiesce()
            assert rt.tracer is None
        finally:
            rt.shutdown()


class TestMultiprocTracing:
    """Trace-id propagation across the pickling transport + export."""

    def test_trace_ids_survive_pickled_batch_blob(self, tmp_path):
        tracer = FlightRecorder()
        with MultiprocessRuntime(3, tracer=tracer) as rt:
            for k in range(5):
                rt.out(rt.main_ts, "mp", k)
            rt.in_(rt.main_ts, "mp", 0)
            rt.quiesce()
            events = tracer.events()
            # every e2e trace id comes back from all three OS processes,
            # proving the id rode inside the pickled batch blob and back
            # through each replica's result queue
            for ev in tracer.spans("e2e"):
                applies = [
                    e for e in events
                    if e.name == "apply" and e.trace_id == ev.trace_id
                ]
                assert {e.track for e in applies} == {
                    "replica-0", "replica-1", "replica-2",
                }
                rids = {e.args["request_id"] for e in applies}
                assert rids == {ev.args["request_id"]}
            report = check_consistency(tracer)
            assert report.ok and report.compared_slots >= 6
            # replicas agree on each slot, so slot->rid maps are consistent
            out = tmp_path / "trace.json"
            artifact_dir = os.environ.get("TRACE_ARTIFACT_DIR")
            if artifact_dir:
                os.makedirs(artifact_dir, exist_ok=True)
                out = os.path.join(artifact_dir, "trace_multiproc.json")
            with open(out, "w") as f:
                json.dump(to_chrome_trace(events), f)
            reloaded = json.load(open(out))
            assert any(e["ph"] == "X" for e in reloaded["traceEvents"])

    def test_checker_across_crash_and_recovery(self):
        tracer = FlightRecorder()
        with MultiprocessRuntime(3, tracer=tracer) as rt:
            for k in range(6):
                rt.out(rt.main_ts, "pre", k)
            rt.crash_replica(2)
            for k in range(6):
                rt.out(rt.main_ts, "mid", k)
            rt.recover_replica(2)
            for k in range(6):
                rt.out(rt.main_ts, "post", k)
            rt.quiesce()
            assert rt.converged()
            report = check_consistency(tracer)
            assert report.ok, report.summary()
            # the recovered replica rejoined the slot numbering where the
            # donor stood: its post-recovery slots overlap the others'
            assert tracer.spans("recover", track="replica-2")
            post = apply_streams(tracer.events())["replica-2"]
            assert post, "recovered replica recorded no applies"

    def test_forked_apply_order_is_flagged(self):
        """A synthetically reordered apply stream provably fails the check."""
        tracer = FlightRecorder()
        with MultiprocessRuntime(3, tracer=tracer) as rt:
            for k in range(8):
                rt.out(rt.main_ts, "f", k)
            rt.quiesce()
        streams = apply_streams(tracer.events())
        assert check_apply_streams(streams).ok
        # fork replica-1: swap the request ids of two adjacent slots, as a
        # replica applying commands out of order would record them
        seq = streams["replica-1"]
        (s0, r0), (s1, r1) = seq[2], seq[3]
        seq[2], seq[3] = (s0, r1), (s1, r0)
        report = check_apply_streams(streams)
        assert not report.ok
        assert any("forked" in v for v in report.violations)
        assert len(report.violations) == 2  # both touched slots disagree


class TestCheckerUnits:
    def test_empty_trace_is_vacuously_ok(self):
        report = check_consistency([])
        assert report.ok and report.compared_slots == 0
        assert "OK" in report.summary()

    def test_gaps_from_crashed_replicas_tolerated(self):
        streams = {
            "replica-0": [(1, 11), (2, 12), (3, 13), (4, 14)],
            "replica-1": [(1, 11), (2, 12)],  # crashed after slot 2
            "replica-2": [(3, 13), (4, 14)],  # recovered at slot 3
        }
        report = check_apply_streams(streams)
        assert report.ok and report.compared_slots == 4

    def test_non_increasing_slots_flagged(self):
        streams = {"replica-0": [(1, 11), (3, 13), (2, 12)]}
        report = check_apply_streams(streams)
        assert not report.ok
        assert any("not strictly increasing" in v for v in report.violations)

    def test_double_apply_flagged(self):
        streams = {"replica-0": [(1, 11), (1, 11)]}
        assert not check_apply_streams(streams).ok

    def test_report_is_truthy_iff_ok(self):
        assert check_apply_streams({"r": [(1, 1)]})
        assert not check_apply_streams({"r": [(2, 1), (1, 1)]})


class TestSimTracerUnified:
    LIMIT = 240_000_000.0

    def _run(self, n_hosts=3, seed=77, writes=4):
        c = SimCluster(ClusterConfig(n_hosts=n_hosts, seed=seed))
        tracer = Tracer().attach(c)

        def writer(view, n):
            for i in range(n):
                yield view.out(view.main_ts, "s", i)

        p = c.spawn(1, writer, writes)
        c.run_until(p.finished, limit=self.LIMIT)
        c.settle(1_000_000)
        return c, tracer

    def test_sim_apply_stream_feeds_checker(self):
        c, tracer = self._run()
        report = check_consistency(tracer.events)
        assert report.ok, report.summary()
        assert set(report.streams) == {"host-0", "host-1", "host-2"}
        assert report.compared_slots >= 4

    def test_sim_chrome_export_same_schema_as_real(self):
        c, tracer = self._run()
        doc = tracer.to_chrome()
        json.dumps(doc)
        tracks = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert {"host-0", "host-1", "host-2"} <= tracks
        applies = [
            e for e in doc["traceEvents"]
            if e.get("name") == "apply" and e.get("cat") == "replica"
        ]
        assert applies and all("slot" in e["args"] for e in applies)

    def test_legacy_event_accessors_still_work(self):
        c, tracer = self._run()
        ev = tracer.select(layer="ord", event="sequence")[0]
        assert ev.layer == "ord" and ev.event == "sequence"
        assert ev.host == ev.args["host"]
        assert ev.time == pytest.approx(ev.ts * 1e6)
        assert "uid=" in ev.detail
