"""Failure detection, self-healing recovery, and chaos injection.

These tests falsify the liveness plane's claims the hard way: replicas
are killed *behind the group's back* (SIGKILL on the multiprocess
backend, a halted worker thread on the threaded one) so only the
failure detector can notice — no cooperative ``crash_replica``
bookkeeping, no client conveniently timing out.  The poison-command and
internal-thread-death tests cover the other two fault classes the
replication layer promises to survive: a command whose apply raises on
every replica, and the group's own service threads dying mid-flight.

State-machine duplicate suppression (the at-most-once substrate under
the client retry helper) is unit-tested at the bottom, alongside the
transport incarnation fence that keeps a dead replica's last words from
being attributed to its successor.
"""

import threading
import time

import pytest

from repro import AGS, Guard, Op, TimeoutError_, formal
from repro._errors import CommandFailed, RuntimeFailure
from repro.chaos import ChaosMonkey
from repro.core.spaces import MAIN_TS
from repro.core.statemachine import (
    FAILURE_TAG,
    CancelRequest,
    ExecuteAGS,
    TSStateMachine,
)
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime
from repro.replication import LivenessPolicy
from repro.replication.group import CLIENT_ORIGIN
from repro.replication.transport import InMemoryTransport

# Tight timings so tests run in seconds; suspect_after still comfortably
# exceeds a healthy replica's PONG turnaround.
POLICY = LivenessPolicy(
    probe_interval=0.05,
    suspect_after=0.3,
    auto_recover=True,
    backoff_initial=0.05,
    backoff_max=0.5,
)

BACKENDS = ["threaded", "multiproc"]


def _make_runtime(backend: str, *, liveness=POLICY):
    if backend == "threaded":
        return ThreadedReplicaRuntime(n_replicas=3, detect_failures=liveness)
    return MultiprocessRuntime(n_replicas=3, detect_failures=liveness)


@pytest.fixture(params=BACKENDS)
def rt(request):
    runtime = _make_runtime(request.param)
    yield runtime
    runtime.shutdown()


def _failure_tuples(runtime, replica_id):
    tuples = runtime.query(replica_id, "space_tuples", MAIN_TS)
    return [t for t in tuples if t and t[0] == FAILURE_TAG]


class TestDetection:
    """Non-cooperative kills: only the detector can notice."""

    def test_kill_detected_without_cooperative_calls(self, rt):
        monkey = ChaosMonkey(rt)
        for i in range(10):
            rt.out(rt.main_ts, "pre", i)
        monkey.kill_replica(1)
        # no further group traffic: detection must come from the monitor's
        # own pings + transport probes, not from a client tripping over
        # the corpse
        elapsed = monkey.wait_detected(1, timeout=5.0)
        assert elapsed < POLICY.suspect_after + 4 * POLICY.probe_interval + 1.0
        snap = rt.metrics_snapshot()
        assert snap["counters"]["failures_detected"] >= 1
        assert snap["histograms"]["detection_latency"]["count"] >= 1

    def test_failure_tuple_once_per_survivor_same_slot(self, rt):
        monkey = ChaosMonkey(rt)
        monkey.kill_replica(2)
        monkey.wait_detected(2, timeout=5.0)
        monkey.wait_recovered(2, timeout=10.0)
        rt.quiesce()
        # exactly one ordered HostFailed: every replica (survivors and the
        # reincarnated victim, which caught up by state transfer) holds
        # exactly one failure tuple, and their full states agree
        for replica_id in range(3):
            failures = _failure_tuples(rt, replica_id)
            assert len(failures) == 1, (replica_id, failures)
            assert failures[0][1] == 2
        assert rt.converged()

    def test_in_flight_call_survives_kill(self, rt):
        monkey = ChaosMonkey(rt)
        got = []

        def blocked_reader():
            got.append(rt.in_(rt.main_ts, "await", formal(int), timeout=15.0))

        t = threading.Thread(target=blocked_reader)
        t.start()
        time.sleep(0.2)  # let the guard reach the replicas and park
        monkey.kill_replica(1)
        monkey.wait_detected(1, timeout=5.0)
        rt.out(rt.main_ts, "await", 7)
        t.join(timeout=15.0)
        assert not t.is_alive()
        assert got == [("await", 7)]

    def test_auto_recovery_rejoins_and_converges(self, rt):
        monkey = ChaosMonkey(rt)
        for i in range(5):
            rt.out(rt.main_ts, "pre", i)
        monkey.kill_replica(1)
        monkey.wait_detected(1, timeout=5.0)
        for i in range(5):
            rt.out(rt.main_ts, "mid", i)
        monkey.wait_recovered(1, timeout=10.0)
        for i in range(5):
            rt.out(rt.main_ts, "post", i)
        assert rt.converged()
        assert len(rt.fingerprints()) == 3
        snap = rt.metrics_snapshot()
        assert snap["counters"]["auto_recoveries"] >= 1
        assert snap["gauges"]["live_replicas"] == 3

    def test_delay_is_not_death(self, rt):
        """A slow replica must not be shot: the probe still passes."""
        monkey = ChaosMonkey(rt)
        monkey.delay_replica(1, POLICY.suspect_after * 2)
        time.sleep(POLICY.suspect_after * 3)
        assert rt.group.alive == [True, True, True]
        assert rt.metrics_snapshot()["counters"].get("failures_detected", 0) == 0
        rt.out(rt.main_ts, "after-delay", 1)
        assert rt.converged()


class TestKillMidBatch:
    """SIGKILL while a batch is in flight: the paper's fail-silent crash."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_churn_through_kill(self, backend):
        rt = _make_runtime(backend)
        monkey = ChaosMonkey(rt)
        stop = threading.Event()
        completed = [0]

        def churn():
            k = 0
            while not stop.is_set():
                rt.out(rt.main_ts, "churn", k)
                rt.in_(rt.main_ts, "churn", k)
                completed[0] += 1
                k += 1

        t = threading.Thread(target=churn)
        t.start()
        try:
            time.sleep(0.2)  # guarantee batches are genuinely in flight
            monkey.kill_replica(1)
            monkey.wait_detected(1, timeout=5.0)
            monkey.wait_recovered(1, timeout=10.0)
            time.sleep(0.2)  # churn across the healed group
        finally:
            stop.set()
            t.join(timeout=30.0)
        try:
            assert not t.is_alive()
            before_kill = completed[0]
            assert before_kill > 0
            rt.quiesce()
            assert rt.converged()
            for replica_id in range(3):
                assert len(_failure_tuples(rt, replica_id)) == 1
        finally:
            rt.shutdown()


class TestPoisonCommand:
    """A command whose apply raises must fail the client, not the group."""

    def test_poison_fails_client_replicas_stay_identical(self, rt):
        monkey = ChaosMonkey(rt)
        rt.out(rt.main_ts, "before", 1)
        exc = monkey.poison_command()
        assert isinstance(exc, CommandFailed)
        assert "TypeError" in str(exc)
        # every replica skipped the poison identically: still converged,
        # all three live, and the group still does real work
        assert rt.converged()
        assert rt.group.alive == [True, True, True]
        rt.out(rt.main_ts, "after", 2)
        assert rt.in_(rt.main_ts, "after", formal(int)) == ("after", 2)


class TestInternalThreadDeath:
    """The group's own service threads dying must not wedge clients."""

    @pytest.fixture
    def threaded(self):
        runtime = ThreadedReplicaRuntime(n_replicas=3)
        yield runtime
        runtime.shutdown()

    def test_sequencer_death_fails_parked_and_future_calls(self, threaded):
        monkey = ChaosMonkey(threaded)
        errors = []

        def parked():
            try:
                threaded.in_(threaded.main_ts, "never", formal(int), timeout=30.0)
            except RuntimeFailure as exc:
                errors.append(exc)

        t = threading.Thread(target=parked)
        t.start()
        time.sleep(0.2)
        monkey.kill_sequencer()
        t.join(timeout=10.0)
        assert not t.is_alive(), "parked call wedged after sequencer death"
        assert len(errors) == 1
        # subsequent calls fail fast instead of queueing into the void
        t0 = time.monotonic()
        with pytest.raises(RuntimeFailure):
            threaded.out(threaded.main_ts, "x", 1)
        assert time.monotonic() - t0 < 1.0

    def test_read_flusher_death_degrades_to_direct_sends(self, threaded):
        monkey = ChaosMonkey(threaded)
        threaded.out(threaded.main_ts, "k", 1)
        monkey.kill_read_flusher()
        deadline = time.monotonic() + 5.0
        while threaded.group._read_thread is not None:
            assert time.monotonic() < deadline, "flusher death not observed"
            time.sleep(0.01)
        # reads still answer (fallback path), repeatedly
        for _ in range(5):
            assert threaded.rd(threaded.main_ts, "k", formal(int)) == ("k", 1)


class TestRetries:
    """client retry helper: at-most-once even across resubmission."""

    @pytest.fixture
    def threaded(self):
        runtime = ThreadedReplicaRuntime(n_replicas=3)
        yield runtime
        runtime.shutdown()

    def test_duplicate_submission_applies_once(self, threaded):
        group = threaded.group
        cmd = ExecuteAGS(
            group.next_request_id(),
            CLIENT_ORIGIN,
            0,
            AGS.atomic(Op.out(MAIN_TS, "dup", 1)),
        )
        first = group.call(cmd, 10.0)
        replay = group.call(cmd, 10.0)
        assert first == replay  # memoized completion, not a re-execution
        assert threaded.inp(threaded.main_ts, "dup", formal(int)) is not None
        assert threaded.inp(threaded.main_ts, "dup", formal(int)) is None

    def test_cancelled_statement_retries_fresh(self, threaded):
        group = threaded.group
        cmd = ExecuteAGS(
            group.next_request_id(),
            CLIENT_ORIGIN,
            0,
            AGS.single(Guard.in_(MAIN_TS, "late", formal(int, "v"))),
        )
        with pytest.raises(TimeoutError_) as exc_info:
            group.call(cmd, 0.1)
        # provably withdrawn: the ordered cancel won, so resubmitting the
        # same request id re-executes instead of replaying the cancel
        assert exc_info.value.outcome == "cancelled"
        threaded.out(threaded.main_ts, "late", 9)
        result = group.call(cmd, 10.0)
        assert result.succeeded and result["v"] == 9

    def test_retries_kwarg_eventually_succeeds_no_double_apply(self, threaded):
        group = threaded.group

        def deposit():
            time.sleep(0.4)
            threaded.out(threaded.main_ts, "eventually", 1)

        depositor = threading.Thread(target=deposit)
        depositor.start()
        cmd = ExecuteAGS(
            group.next_request_id(),
            CLIENT_ORIGIN,
            0,
            AGS.single(Guard.in_(MAIN_TS, "eventually", formal(int))),
        )
        result = group.call(cmd, 0.15, retries=8)
        depositor.join()
        assert result.succeeded
        # consumed exactly once despite up to 8 resubmissions of one rid
        assert threaded.inp(threaded.main_ts, "eventually", formal(int)) is None
        assert threaded.converged()


class TestStateMachineDedup:
    """The duplicate-suppression memo under the retry helper."""

    def _out(self, rid, *fields):
        return ExecuteAGS(rid, 0, 0, AGS.atomic(Op.out(MAIN_TS, *fields)))

    @staticmethod
    def _tuples(sm):
        return [t.fields for t in sm.registry.store(MAIN_TS).to_list()]

    def test_memo_replays_without_reexecution(self):
        sm = TSStateMachine()
        cmd = self._out(1, "t", 1)
        first = sm.apply(cmd)
        again = sm.apply(cmd)
        assert len(first) == 1 and len(again) == 1
        assert again[0].result == first[0].result
        # one execution: exactly one tuple in the space
        assert len(self._tuples(sm)) == 1

    def test_duplicate_of_parked_statement_is_dropped(self):
        sm = TSStateMachine()
        guard = ExecuteAGS(
            1, 0, 0, AGS.single(Guard.in_(MAIN_TS, "w", formal(int)))
        )
        assert sm.apply(guard) == []  # parks
        assert sm.apply(guard) == []  # duplicate: dropped, not double-parked
        woken = sm.apply(self._out(2, "w", 5))
        # the single park wakes exactly once
        assert [c.request_id for c in woken if c.request_id == 1] == [1]

    def test_cancellation_is_not_memoized(self):
        sm = TSStateMachine()
        guard = ExecuteAGS(
            1, 0, 0, AGS.single(Guard.in_(MAIN_TS, "c", formal(int)))
        )
        sm.apply(guard)
        cancelled = sm.apply(CancelRequest(2, 0, 1))
        assert len(cancelled) == 1 and not cancelled[0].result.succeeded
        sm.apply(self._out(3, "c", 8))
        # the same rid re-executes fresh — and now finds its tuple
        redone = sm.apply(guard)
        assert len(redone) == 1 and redone[0].result.succeeded

    def test_memo_survives_snapshot_roundtrip(self):
        sm = TSStateMachine()
        cmd = self._out(1, "s", 1)
        original = sm.apply(cmd)
        clone = TSStateMachine.from_snapshot(sm.snapshot())
        replay = clone.apply(cmd)
        assert replay[0].result == original[0].result
        assert len(self._tuples(clone)) == 1
        assert clone.fingerprint() == sm.fingerprint()


class TestIncarnationFence:
    """A dead replica's last words must not reach the group."""

    def test_stale_incarnation_items_are_dropped(self):
        transport = InMemoryTransport(2)
        delivered = []
        transport.start(lambda rid, item: delivered.append((rid, item)))
        try:
            transport._deliver(0, 0, ("PONG", 0))
            transport.stop_replica(0)  # bumps the incarnation first
            transport._deliver(0, 0, ("PONG", 1))  # posthumous: fenced
            transport.restart_replica(0)
            transport._deliver(0, 0, ("PONG", 2))  # still the old incarnation
            transport._deliver(0, 1, ("PONG", 3))  # the successor's voice
        finally:
            transport.shutdown([True, True])
        fenced = [item for _, item in delivered if item[0] == "PONG"]
        assert fenced == [("PONG", 0), ("PONG", 3)]
