"""Live introspection: waiter registry, template profiler, stall detector.

Covers the `repro.obs.inspect` layer end to end: per-template match
counters in the store, blocked-statement and last-out bookkeeping in the
state machine, the uniform `introspection_snapshot()` shape on every
backend, stall detection (the wedged bag-of-tasks acceptance scenario),
the Prometheus text exporter, and the `cli top --once` dashboard.
"""

import threading
import time

import pytest

from repro import AGS, Guard, LocalRuntime, Op, formal
from repro.core import matching
from repro.core.ags import Op as AgsOp
from repro.core.matching import TupleStore, pattern_key
from repro.core.spaces import MAIN_TS
from repro.core.statemachine import ExecuteAGS, TSStateMachine
from repro.core.tuples import Pattern, make_tuple
from repro.obs.inspect import (
    detect_stalls,
    disable_introspection,
    empty_snapshot,
    enable_introspection,
    introspection_enabled,
    render_top,
    to_prometheus,
)
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime


@pytest.fixture
def introspect():
    """Enable stats for one test, restoring the global switch afterwards."""
    was = introspection_enabled()
    enable_introspection()
    yield
    if not was:
        disable_introspection()


@pytest.fixture(params=["local", "threaded", "multiproc"])
def rt(request, introspect):
    if request.param == "local":
        runtime = LocalRuntime()
    elif request.param == "threaded":
        runtime = ThreadedReplicaRuntime(n_replicas=3)
    else:
        runtime = MultiprocessRuntime(n_replicas=2)
    yield runtime
    shutdown = getattr(runtime, "shutdown", None)
    if shutdown is not None:
        shutdown()


def _wedge(runtime, process_id=999):
    """Park a consumer on a template nobody deposits; return the thread."""
    t = threading.Thread(
        target=lambda: runtime.in_(
            runtime.main_ts, "never-deposited", formal(int), process_id=process_id
        ),
        daemon=True,
    )
    t.start()
    return t


def _wait_for_waiter(runtime, timeout=5.0):
    """Snapshot until the wedged guard is visibly parked (replicas race)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snap = runtime.introspection_snapshot()
        if snap["sm"]["waiters"]:
            return snap
        time.sleep(0.02)
    pytest.fail("wedged waiter never appeared in the introspection snapshot")


class TestTemplateKeys:
    def test_pattern_key_renders_actuals_and_formals(self):
        p = Pattern(("task", formal(int), 3.5))
        assert pattern_key(p) == "('task', ?int, 3.5)"

    def test_op_template_key_matches_pattern_key(self):
        # static (waiter-side) and dynamic (profiler-side) renderings must
        # agree, or the dashboard could never correlate the two tables
        op = AgsOp.in_(MAIN_TS, "task", formal(int))
        assert op.template_key() == pattern_key(Pattern(("task", formal(int))))

    def test_correlation_key_wildcards(self):
        op = AgsOp.in_(MAIN_TS, formal(str), formal(int))
        ts_id, first, arity = op.correlation_key()
        assert ts_id == MAIN_TS.id
        assert first == "*"
        assert arity == 2


class TestStoreStats:
    def test_disabled_by_default_no_counting(self):
        assert not matching.STATS_ENABLED
        store = TupleStore()
        store.add(make_tuple("a", 1))
        store.find(Pattern(("a", formal(int))), remove=False)
        assert store.introspect()["templates"] == []

    def test_attempts_and_hits(self, introspect):
        store = TupleStore()
        store.add(make_tuple("a", 1))
        store.find(Pattern(("a", formal(int))), remove=False)
        store.find(Pattern(("b", formal(int))), remove=False)
        info = store.introspect()
        by_template = {t["template"]: t for t in info["templates"]}
        assert by_template["('a', ?int)"] == {
            "template": "('a', ?int)", "attempts": 1, "hits": 1,
        }
        assert by_template["('b', ?int)"]["hits"] == 0

    def test_occupancy_gauges(self, introspect):
        store = TupleStore()
        for k in range(4):
            store.add(make_tuple("a", k))
        store.add(make_tuple("other", 1, 2))
        info = store.introspect()
        assert info["tuples"] == 5
        assert info["bytes"] > 0
        assert info["buckets"] == 2
        assert info["max_bucket"] == 4
        assert info["skew"] == pytest.approx(4 / 2.5)


class TestStateMachineIntrospection:
    def test_waiter_registry_records_blocked_guards(self, introspect):
        sm = TSStateMachine()
        sm.apply(ExecuteAGS(1, 5, 42, AGS.single(Guard.in_(MAIN_TS, "x", formal(int)))))
        (w,) = sm.waiters()
        assert w["request_id"] == 1
        assert w["origin_host"] == 5
        assert w["process_id"] == 42
        assert w["blocked_for"] >= 0.0
        (entry,) = w["waiting_on"]
        assert entry["op"] == "in"
        assert entry["template"] == "('x', ?int)"
        assert entry["key"] == (MAIN_TS.id, "'x'", 2)

    def test_last_out_stamped_per_template_family(self, introspect):
        sm = TSStateMachine()
        sm.apply(ExecuteAGS(1, 0, 0, AGS.atomic(Op.out(MAIN_TS, "task", 7))))
        assert (MAIN_TS.id, "'task'", 2) in sm.last_out

    def test_clock_injection(self, introspect):
        sm = TSStateMachine()
        now = [100.0]
        sm.clock = lambda: now[0]
        sm.apply(ExecuteAGS(1, 0, 0, AGS.single(Guard.in_(MAIN_TS, "x", formal(int)))))
        now[0] = 103.5
        (w,) = sm.waiters()
        assert w["blocked_for"] == pytest.approx(3.5)

    def test_observability_metadata_not_in_snapshot(self, introspect):
        # blocked-since stamps and last_out live outside replicated state:
        # two machines that applied the same commands at different wall
        # times must still snapshot and fingerprint identically
        def build():
            sm = TSStateMachine()
            sm.apply(ExecuteAGS(1, 0, 0, AGS.atomic(Op.out(MAIN_TS, "t", 1))))
            sm.apply(
                ExecuteAGS(2, 0, 0, AGS.single(Guard.in_(MAIN_TS, "x", formal(int))))
            )
            return sm

        a = build()
        time.sleep(0.05)
        b = build()
        assert a.snapshot() == b.snapshot()
        assert a.fingerprint() == b.fingerprint()

    def test_introspection_shape(self, introspect):
        sm = TSStateMachine()
        sm.apply(ExecuteAGS(1, 0, 0, AGS.atomic(Op.out(MAIN_TS, "t", 1))))
        info = sm.introspection()
        assert info["applied"] == 1
        assert info["waiters"] == []
        (main,) = [s for s in info["spaces"] if s["id"] == MAIN_TS.id]
        assert main["name"] == "main"
        assert main["tuples"] == 1
        for age in info["last_out_age"].values():
            assert age >= 0.0


class TestStallDetector:
    def test_wedged_waiter_flagged(self, introspect):
        rt = LocalRuntime()
        _wedge(rt)
        _wait_for_waiter(rt)
        time.sleep(0.1)
        stalls = detect_stalls(rt.introspection_snapshot(), threshold=0.05)
        assert len(stalls) == 1
        assert stalls[0]["process_id"] == 999
        assert "suspected deadlock/starvation" in stalls[0]["reason"]

    def test_fed_template_not_flagged(self, introspect):
        # a blocked consumer whose template IS receiving deposits is
        # contention, not a stall — out traffic resets the verdict
        rt = LocalRuntime()
        t = threading.Thread(
            target=lambda: rt.in_(rt.main_ts, "task", 10_000, process_id=7),
            daemon=True,
        )
        t.start()
        deadline = time.monotonic() + 5.0
        while not rt.introspection_snapshot()["sm"]["waiters"]:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        time.sleep(0.1)
        rt.out(rt.main_ts, "task", 1)  # matching family, wrong value
        stalls = detect_stalls(rt.introspection_snapshot(), threshold=0.05)
        assert stalls == []

    def test_quiet_waiter_below_threshold_not_flagged(self, introspect):
        rt = LocalRuntime()
        _wedge(rt)
        snap = _wait_for_waiter(rt)
        assert detect_stalls(snap, threshold=60.0) == []


class TestBackendSnapshots:
    def test_base_runtime_default_is_empty_shape(self):
        snap = empty_snapshot("X")
        assert snap == {
            "backend": "X",
            "sm": {"applied": 0, "waiters": [], "spaces": [], "last_out_age": {}},
            "replicas": [],
            "pending": 0,
            "wal_bytes": None,
        }

    def test_wedged_waiter_visible_and_stalled(self, rt):
        # the acceptance scenario, on every backend: a consumer blocked on
        # a template nobody deposits shows up in the snapshot and is
        # flagged by the stall detector within the threshold
        rt.out(rt.main_ts, "task", 1)
        _wedge(rt)
        _wait_for_waiter(rt)
        time.sleep(0.15)
        snap = rt.introspection_snapshot()
        (w,) = snap["sm"]["waiters"]
        assert w["process_id"] == 999
        assert w["waiting_on"][0]["template"] == "('never-deposited', ?int)"
        stalls = detect_stalls(snap, threshold=0.1)
        assert [s["request_id"] for s in stalls] == [w["request_id"]]

    def test_template_profile_crosses_backends(self, rt):
        rt.out(rt.main_ts, "hot", 1)
        rt.in_(rt.main_ts, "hot", formal(int))
        snap = rt.introspection_snapshot()
        (main,) = [s for s in snap["sm"]["spaces"] if s["id"] == MAIN_TS.id]
        hits = {t["template"]: t["hits"] for t in main["templates"]}
        assert hits.get("('hot', ?int)", 0) >= 1

    def test_replica_rows_report_lag_after_crash(self, introspect):
        rt = ThreadedReplicaRuntime(n_replicas=3)
        try:
            rt.out(rt.main_ts, "x", 1)
            rt.crash_replica(2)
            rt.quiesce()
            snap = rt.introspection_snapshot()
            rows = {r["id"]: r for r in snap["replicas"]}
            assert rows[2]["alive"] is False
            assert rows[2]["applied"] is None
            assert rows[0]["alive"] is True
            assert rows[0]["lag"] == 0
        finally:
            rt.shutdown()

    def test_stall_detection_survives_replica_crash(self, introspect):
        # fault injection + stall detection together: after a replica
        # fails mid-run, the surviving replicas still expose the wedged
        # waiter and the detector still fires
        rt = ThreadedReplicaRuntime(n_replicas=3)
        try:
            _wedge(rt)
            _wait_for_waiter(rt)
            rt.crash_replica(1)
            time.sleep(0.15)
            stalls = detect_stalls(rt.introspection_snapshot(), threshold=0.1)
            assert len(stalls) == 1
        finally:
            rt.shutdown()

    def test_wal_bytes_gauge(self, introspect, tmp_path):
        from repro.persist.wal import WALRuntime

        rt = WALRuntime(str(tmp_path / "test.wal"), fsync=False)
        rt.out(rt.main_ts, "x", 1)
        snap = rt.introspection_snapshot()
        assert snap["wal_bytes"] > 0
        rt.close()


class TestSimCluster:
    def test_virtual_time_stall_detection(self, introspect):
        from repro.consul.cluster import SimCluster

        cl = SimCluster(n_hosts=3)

        def consumer(view):
            yield view.in_(view.main_ts, "never-deposited", formal(int))

        cl.spawn(1, consumer)
        cl.run(until=2_000_000)  # 2 virtual seconds
        snap = cl.introspection_snapshot()
        (w,) = snap["sm"]["waiters"]
        assert w["blocked_for"] == pytest.approx(2.0, abs=0.1)
        stalls = detect_stalls(snap, threshold=1.0)
        assert len(stalls) == 1

    def test_crashed_host_row(self, introspect):
        from repro.consul.cluster import SimCluster

        cl = SimCluster(n_hosts=3)

        def producer(view):
            yield view.out(view.main_ts, "t", 1)

        cl.spawn(0, producer)
        cl.run(until=500_000)
        cl.crash(2)
        cl.run(until=1_500_000)
        snap = cl.introspection_snapshot()
        rows = {r["id"]: r for r in snap["replicas"]}
        assert rows[2]["alive"] is False
        assert rows[0]["applied"] >= 1


class TestExporters:
    def _wedged_local(self):
        rt = LocalRuntime()
        rt.out(rt.main_ts, "task", 1)
        rt.in_(rt.main_ts, "task", formal(int))
        _wedge(rt)
        snap = _wait_for_waiter(rt)
        return rt, snap

    def test_prometheus_families(self, introspect):
        rt, snap = self._wedged_local()
        stalls = detect_stalls(snap, threshold=0.0)
        text = to_prometheus(snap, rt.metrics_snapshot(), stalls)
        assert text.endswith("\n")
        assert 'linda_space_tuples{space="main#0"} 0' in text
        assert "linda_waiters 1" in text
        assert "linda_stalled_waiters 1" in text
        assert "linda_pending_commands 0" in text
        assert (
            'linda_template_match_hits_total{space="main#0",'
            "template=\"('task', ?int)\"} 1" in text
        )
        # metrics histograms come through as cumulative bucket families
        assert "linda_ags_e2e_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "linda_ags_e2e_seconds_count" in text

    def test_prometheus_escapes_label_values(self):
        snap = empty_snapshot("X")
        snap["sm"]["spaces"] = [{
            "id": 1, "name": 'we"ird\\nm', "resilience": "stable",
            "scope": "shared", "tuples": 0, "bytes": 0, "buckets": 0,
            "max_bucket": 0, "skew": 0.0,
            "templates": [{"template": '("a\\"b",)', "attempts": 1, "hits": 0}],
        }]
        text = to_prometheus(snap)
        assert '\\"' in text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert line.count(" ") >= 1  # still "name{labels} value" shaped

    def test_render_top_shows_waiter_and_stall(self, introspect):
        rt, snap = self._wedged_local()
        stalls = detect_stalls(snap, threshold=0.0)
        frame = render_top(snap, rt.metrics_snapshot(), stalls)
        assert "backend=LocalRuntime" in frame
        assert "('never-deposited', ?int)" in frame
        assert "** STALLED **" in frame
        assert "suspected deadlock/starvation" in frame
        assert "('task', ?int)" in frame  # hot-template table


class TestCliTop:
    @pytest.mark.parametrize("backend", ["local", "threaded", "multiproc"])
    def test_top_once_shows_wedged_waiter(self, backend, capsys):
        from repro.cli import main

        code = main([
            "top", "--once", "--wedge", "--backend", backend,
            "--replicas", "2", "--ops", "8", "--clients", "2",
            "--stall-threshold", "0.01",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "('never-deposited', ?int)" in out
        assert "** STALLED **" in out

    def test_top_export_writes_prometheus(self, tmp_path, capsys):
        from repro.cli import main

        exported = tmp_path / "metrics.prom"
        code = main([
            "top", "--once", "--ops", "8", "--clients", "2",
            "--export", str(exported),
        ])
        capsys.readouterr()
        assert code == 0
        text = exported.read_text()
        assert "# TYPE linda_waiters gauge" in text
        assert "linda_pending_commands 0" in text

    def test_top_wal_gauge(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "top", "--once", "--ops", "8", "--clients", "1",
            "--wal", str(tmp_path / "t.wal"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "wal=" in out
