"""Tests for the FT-lcc front end: lexer, parser, compiler."""

import pytest

from repro import AGS, CompileError, Guard, LocalRuntime, Op, OpCode, formal, ref
from repro.core.spaces import MAIN_TS
from repro.lcc import SignatureCatalog, compile_ags, compile_op, parse_ags, tokenize

SPACES = {"main": MAIN_TS}


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize('< in(main, "c", ?v:int) => out(main) >')]
        assert kinds == [
            "LANGLE", "NAME", "LPAREN", "NAME", "COMMA", "STRING", "COMMA",
            "QMARK", "NAME", "COLON", "NAME", "RPAREN", "ARROW", "NAME",
            "LPAREN", "NAME", "RPAREN", "RANGLE",
        ]

    def test_numbers(self):
        toks = tokenize("1 23 4.5 0.25")
        assert [(t.kind, t.value) for t in toks] == [
            ("INT", 1), ("INT", 23), ("FLOAT", 4.5), ("FLOAT", 0.25)
        ]

    def test_string_escapes(self):
        (tok,) = tokenize(r'"a\nb\"c\\d"')
        assert tok.value == 'a\nb"c\\d'

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"oops')

    def test_comments_skipped(self):
        toks = tokenize("1 # a comment\n2")
        assert [t.value for t in toks] == [1, 2]

    def test_operators(self):
        kinds = [t.kind for t in tokenize("== != <= >= // / => < >")]
        assert kinds == ["EQ", "NE", "LE", "GE", "DSLASH", "SLASH", "ARROW",
                         "LANGLE", "RANGLE"]

    def test_keywords(self):
        kinds = [t.kind for t in tokenize("or true false orx")]
        assert kinds == ["OR", "TRUE", "FALSE", "NAME"]

    def test_position_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")


class TestParser:
    def test_single_branch(self):
        tree = parse_ags('< in(main, "c", ?v:int) => out(main, "c", v + 1) >')
        assert len(tree.branches) == 1
        assert tree.branches[0].guard.op.opname == "in"
        assert len(tree.branches[0].body) == 1

    def test_unbracketed_sugar(self):
        tree = parse_ags('out(main, "x", 1)')
        assert tree.branches[0].guard.op.opname == "out"

    def test_disjunction(self):
        tree = parse_ags('< in(main, "a") or rd(main, "b") => out(main, "c") >')
        assert len(tree.branches) == 2
        assert tree.branches[0].body == []
        assert len(tree.branches[1].body) == 1

    def test_true_guard(self):
        tree = parse_ags('< true => out(main, "x") >')
        assert tree.branches[0].guard.op is None

    def test_body_sequence(self):
        tree = parse_ags('< true => out(main, "a"); out(main, "b"); out(main, "c") >')
        assert len(tree.branches[0].body) == 3

    def test_move_two_ts_args(self):
        tree = parse_ags('move(main, main, "x", ?:int)')
        op = tree.branches[0].guard.op
        assert len(op.ts_args) == 2
        assert len(op.args) == 2

    def test_unknown_op_rejected(self):
        with pytest.raises(CompileError):
            parse_ags('< frobnicate(main, 1) >')

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CompileError):
            parse_ags('out(main, 1) out(main, 2)')

    def test_missing_rangle(self):
        with pytest.raises(CompileError):
            parse_ags('< true => out(main, 1)')

    def test_comparison_inside_args(self):
        tree = parse_ags('out(main, "flag", 1 < 2)')
        # parses as a comparison, not a bracket
        assert tree.branches[0].guard.op.args[1].op == "<"

    def test_anonymous_formals(self):
        tree = parse_ags('in(main, ?, ?:int)')
        a, b = tree.branches[0].guard.op.args
        assert a.name is None and a.type_name is None
        assert b.name is None and b.type_name == "int"


class TestCompiler:
    def test_equivalent_to_builder_api(self):
        text = compile_ags(
            '< in(main, "c", ?v:int) => out(main, "c", v + 1) >', SPACES
        )
        built = AGS.single(
            Guard.in_(MAIN_TS, "c", formal(int, "v")),
            [Op.out(MAIN_TS, "c", ref("v") + 1)],
        )
        assert text == built

    def test_execution_end_to_end(self):
        rt = LocalRuntime()
        rt.out(MAIN_TS, "c", 1)
        res = rt.execute(compile_ags(
            '< in(main, "c", ?v:int) => out(main, "c", v * 10) >', SPACES
        ))
        assert res.succeeded
        assert rt.rd(MAIN_TS, "c", formal(int)) == ("c", 10)

    def test_constant_folding(self):
        ags = compile_ags('< true => out(main, "v", 2 * 3 + 4) >', SPACES)
        op = ags.branches[0].body[0]
        # folded to a constant, not an expression tree
        from repro.core.ags import Const

        assert isinstance(op.fields[1], Const)
        assert op.fields[1].value == 10

    def test_unknown_space_rejected(self):
        with pytest.raises(CompileError):
            compile_ags('out(nowhere, 1)', SPACES)

    def test_unknown_name_rejected(self):
        with pytest.raises(CompileError):
            compile_ags('< true => out(main, "x", mystery) >', SPACES)

    def test_unbound_formal_use_rejected(self):
        with pytest.raises(CompileError):
            compile_ags('< true => out(main, "x", v) >', SPACES)

    def test_formal_usable_after_binding(self):
        ags = compile_ags(
            '< true => in(main, "a", ?x:int); out(main, "b", x) >', SPACES
        )
        assert ags.branches[0].body[1].reads() == {"x"}

    def test_unknown_type_rejected(self):
        with pytest.raises(CompileError):
            compile_ags('in(main, ?x:quaternion)', SPACES)

    def test_unknown_function_rejected(self):
        with pytest.raises(CompileError):
            compile_ags('< true => out(main, "x", launch(1)) >', SPACES)

    def test_registered_function_usable(self):
        ags = compile_ags('< true => out(main, "m", max(3, 7)) >', SPACES)
        rt = LocalRuntime()
        rt.execute(ags)
        assert rt.rd(MAIN_TS, "m", formal(int)) == ("m", 7)

    def test_signature_catalog_accumulates(self):
        cat = SignatureCatalog()
        compile_ags('in(main, "a", ?x:int)', SPACES, cat)
        compile_ags('rd(main, "b", ?y:int)', SPACES, cat)
        compile_ags('in(main, ?s:str, ?f:float)', SPACES, cat)
        assert len(cat) == 2  # first two share ('str','int')
        assert ("str", "int") in cat

    def test_out_with_formal_rejected(self):
        with pytest.raises(CompileError):
            compile_ags('out(main, "x", ?v:int)', SPACES)

    def test_compile_op(self):
        op = compile_op('out(main, "x", 1)', SPACES)
        assert op.code is OpCode.OUT

    def test_compile_op_rejects_full_statement(self):
        with pytest.raises(CompileError):
            compile_op('< true => out(main, 1) >', SPACES)

    def test_probe_or_else_idiom(self):
        rt = LocalRuntime()
        ags = compile_ags(
            '< inp(main, "job", ?j:int) => out(main, "got", j)'
            '  or true => out(main, "idle", 1) >',
            SPACES,
        )
        r = rt.execute(ags)
        assert r.fired == 1
        rt.out(MAIN_TS, "job", 3)
        r = rt.execute(ags)
        assert r.fired == 0
        assert rt.inp(MAIN_TS, "got", formal(int)) == ("got", 3)

    def test_division_operators(self):
        rt = LocalRuntime()
        rt.execute(compile_ags('< true => out(main, "d", 7 // 2); out(main, "e", 1 / 2) >', SPACES))
        assert rt.inp(MAIN_TS, "d", formal(int)) == ("d", 3)
        assert rt.inp(MAIN_TS, "e", formal(float)) == ("e", 0.5)

    def test_unary_minus(self):
        rt = LocalRuntime()
        rt.out(MAIN_TS, "n", 5)
        rt.execute(compile_ags(
            '< in(main, "n", ?v:int) => out(main, "n", -v) >', SPACES
        ))
        assert rt.rd(MAIN_TS, "n", formal(int)) == ("n", -5)
