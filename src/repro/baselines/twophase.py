"""Two-phase-commit replicated tuple space (the Xu–Liskov/PLinda design).

Section 6 of the paper contrasts FT-Linda with designs that replicate the
tuple space and update it with "locks and a general commit protocol":
"While sufficient, these techniques are expensive, requiring multiple
rounds of message passing between the processors hosting replicas" — and
"all the designs discussed in this section require multiple messages to
update the TS replicas."  This module implements that family's canonical
member so experiment E4 can measure the difference on the *same* network
model the FT-Linda cluster uses:

- every host holds a full replica (a :class:`~repro.core.matching.TupleStore`
  per space);
- the client's host *coordinates*: it resolves the update's matches
  against its own replica under local locks, producing a concrete
  **effect set** (exact tuples to remove, tuples to add);
- phase 1 — ``PREPARE(effect set)`` broadcast; each replica tries to lock
  the removed tuples by content and votes with a unicast ``VOTE``;
- phase 2 — ``COMMIT``/``ABORT`` broadcast; replicas apply or release;
- conflicts (a tuple already locked, or already consumed by a concurrent
  committed update) abort and retry after a seeded random backoff.

Per committed update: **2 broadcasts + (N−1) unicast votes**, and two
network round trips of latency, versus FT-Linda's single ordered
broadcast.  That ratio — not absolute times — is the paper's argument.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable

from repro.core.matching import TupleStore
from repro.core.tuples import LindaTuple, Pattern
from repro.consul.network import BROADCAST, EthernetSegment, NIC
from repro.sim.kernel import SimEvent, Simulator
from repro.xkernel.message import Message

__all__ = ["TwoPhaseCluster", "TwoPhaseConfig", "TwoPhaseStats"]


@dataclasses.dataclass
class TwoPhaseConfig:
    """Cluster shape and timing (mirrors ClusterConfig where it overlaps)."""

    n_hosts: int = 3
    seed: int = 0
    bandwidth_bps: float = 10_000_000.0
    propagation_us: float = 50.0
    cpu_us_per_msg: float = 1_000.0
    backoff_min_us: float = 500.0
    backoff_max_us: float = 5_000.0
    backoff_factor: float = 1.5
    max_retries: int = 500


@dataclasses.dataclass
class TwoPhaseStats:
    commits: int = 0
    aborts: int = 0
    retries: int = 0


def _multiset(store: TupleStore) -> dict:
    counts: dict = {}
    for t in store:
        counts[t.fields] = counts.get(t.fields, 0) + 1
    return counts


class _Update:
    """A multi-op tuple-space update, expressed like a tiny transaction.

    ``takes`` are patterns to withdraw (each must match), ``puts`` are
    functions from the take bindings to new tuples — enough expressiveness
    for the fetch-and-update workloads E4 measures, without rebuilding the
    whole AGS machinery a second time.
    """

    __slots__ = ("takes", "puts")

    def __init__(
        self,
        takes: list[Pattern],
        puts: Callable[[list[dict[str, Any]]], list[tuple[Any, ...]]],
    ):
        self.takes = takes
        self.puts = puts


class _Replica:
    """Per-host replica state: stores plus content locks."""

    def __init__(self) -> None:
        self.store = TupleStore()
        # lock table: fields-tuple -> count of locked instances
        self.locks: dict[tuple, int] = {}
        # txn -> removes we granted locks for (so ABORT releases only what
        # *this* replica actually locked)
        self.granted: dict[int, list[tuple]] = {}

    def can_lock(self, fields_list: list[tuple]) -> bool:
        """All requested instances present and not already locked."""
        need: dict[tuple, int] = {}
        for f in fields_list:
            need[f] = need.get(f, 0) + 1
        for fields, n in need.items():
            held = self.locks.get(fields, 0)
            available = self.store.count(Pattern(fields))
            if available - held < n:
                return False
        return True

    def lock(self, fields_list: list[tuple]) -> None:
        for f in fields_list:
            self.locks[f] = self.locks.get(f, 0) + 1

    def unlock(self, fields_list: list[tuple]) -> None:
        for f in fields_list:
            n = self.locks.get(f, 0) - 1
            if n <= 0:
                self.locks.pop(f, None)
            else:
                self.locks[f] = n

    def apply(self, removes: list[tuple], adds: list[tuple]) -> None:
        for fields in removes:
            m = self.store.find(Pattern(fields), remove=True)
            assert m is not None, f"commit lost tuple {fields!r}"
        for fields in adds:
            self.store.add(LindaTuple(fields))


class TwoPhaseCluster:
    """N replicas of a tuple space updated by coordinator-driven 2PC."""

    def __init__(self, config: TwoPhaseConfig | None = None, **overrides: Any):
        if config is None:
            config = TwoPhaseConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.segment = EthernetSegment(
            self.sim,
            bandwidth_bps=config.bandwidth_bps,
            propagation_us=config.propagation_us,
        )
        self.stats = TwoPhaseStats()
        self.replicas = [_Replica() for _ in range(config.n_hosts)]
        self._txn_ids = itertools.count(1)
        self._cpu_free = [0.0] * config.n_hosts
        # in-flight coordinator state: txn -> dict
        self._coord: dict[int, dict[str, Any]] = {}
        for hid in range(config.n_hosts):
            self.segment.attach(NIC(hid, self._make_receiver(hid)))

    # ------------------------------------------------------------------ #
    # seeding / inspection
    # ------------------------------------------------------------------ #

    def seed_tuple(self, *fields: Any) -> None:
        """Deposit a tuple on every replica (initial state, no protocol)."""
        for r in self.replicas:
            r.store.add(LindaTuple(fields))

    def store_of(self, host: int) -> TupleStore:
        return self.replicas[host].store

    def converged(self) -> bool:
        """Content equality across replicas (multisets of tuple fields).

        Deliberately weaker than the FT-Linda cluster's seqno-sensitive
        fingerprint: without a total order, concurrent disjoint commits
        apply in different arrival orders at different replicas, so
        *deposit order* — and therefore oldest-first matching priority —
        is not replicated.  That is a real (and honest) deficiency of the
        lock-based design relative to the paper's: contents converge,
        matching determinism does not.
        """
        prints = set()
        for r in self.replicas:
            prints.add(frozenset(
                (fields, count)
                for fields, count in _multiset(r.store).items()
            ))
        return len(prints) <= 1

    # ------------------------------------------------------------------ #
    # the client operation
    # ------------------------------------------------------------------ #

    def update(
        self,
        host: int,
        takes: list[Pattern],
        puts: Callable[[list[dict[str, Any]]], list[tuple[Any, ...]]],
    ) -> SimEvent:
        """Run a 2PC update coordinated by *host*; event fires on commit."""
        done = self.sim.event(f"2pc@{host}")
        self._attempt(host, _Update(takes, puts), done, 0)
        return done

    # ------------------------------------------------------------------ #
    # coordinator
    # ------------------------------------------------------------------ #

    def _cpu(self, host: int, fn: Callable[..., None], *args: Any) -> None:
        start = max(self.sim.now, self._cpu_free[host])
        self._cpu_free[host] = start + self.config.cpu_us_per_msg
        self.sim.schedule(self._cpu_free[host] - self.sim.now, fn, *args)

    def _attempt(self, host: int, upd: _Update, done: SimEvent, tries: int) -> None:
        if tries > self.config.max_retries:
            raise RuntimeError("2PC update exceeded retry budget")
        replica = self.replicas[host]
        # resolve matches locally under local locks
        bindings: list[dict[str, Any]] = []
        removes: list[tuple] = []
        ok = True
        for pattern in upd.takes:
            m = self._find_unlocked(replica, pattern, removes)
            if m is None:
                ok = False
                break
            removes.append(m.tup.fields)
            bindings.append(dict(m.binding))
        if not ok or not replica.can_lock(removes):
            self._backoff(host, upd, done, tries)
            return
        adds = [tuple(f) for f in upd.puts(bindings)]
        replica.lock(removes)
        txn = next(self._txn_ids)
        self._coord[txn] = {
            "host": host,
            "removes": removes,
            "adds": adds,
            "votes": {host: True},
            "done": done,
            "upd": upd,
            "tries": tries,
            "decided": False,
        }
        msg = Message(("PREPARE", txn, host, removes, adds))
        self.segment.transmit(host, BROADCAST, msg)

    def _find_unlocked(self, replica: _Replica, pattern: Pattern, already: list[tuple]):
        """Oldest match not locked and not already claimed by this update."""
        for m in replica.store.find_all(pattern, remove=False):
            f = m.tup.fields
            held = replica.locks.get(f, 0) + already.count(f)
            if replica.store.count(Pattern(f)) > held:
                return m
        return None

    def _backoff(self, host: int, upd: _Update, done: SimEvent, tries: int) -> None:
        self.stats.retries += 1
        delay = self.sim.rng.uniform(
            self.config.backoff_min_us, self.config.backoff_max_us
        ) * self.config.backoff_factor ** min(tries, 10)
        self.sim.schedule(delay, self._attempt, host, upd, done, tries + 1)

    # ------------------------------------------------------------------ #
    # participants
    # ------------------------------------------------------------------ #

    def _make_receiver(self, hid: int):
        def receive(msg: Message, src: int) -> None:
            self._cpu(hid, self._handle, hid, msg.payload, src)

        return receive

    def _handle(self, hid: int, payload: tuple, src: int) -> None:
        kind = payload[0]
        if kind == "PREPARE":
            _k, txn, coord, removes, adds = payload
            replica = self.replicas[hid]
            granted = replica.can_lock(removes)
            if granted:
                replica.lock(removes)
                replica.granted[txn] = removes
            self.segment.transmit(hid, coord, Message(("VOTE", txn, granted)))
        elif kind == "VOTE":
            _k, txn, granted = payload
            state = self._coord.get(txn)
            if state is None or state["decided"]:
                return
            state["votes"][src] = granted
            if not granted:
                self._decide(txn, False)
            elif len(state["votes"]) == self.config.n_hosts:
                self._decide(txn, True)
        elif kind == "COMMIT":
            _k, txn, removes, adds = payload
            replica = self.replicas[hid]
            if replica.granted.pop(txn, None) is not None:
                replica.unlock(removes)
            replica.apply(removes, adds)
        elif kind == "ABORT":
            _k, txn, removes = payload
            replica = self.replicas[hid]
            if replica.granted.pop(txn, None) is not None:
                replica.unlock(removes)

    def _decide(self, txn: int, commit: bool) -> None:
        state = self._coord[txn]
        state["decided"] = True
        host = state["host"]
        removes, adds = state["removes"], state["adds"]
        replica = self.replicas[host]
        if commit:
            self.segment.transmit(
                host, BROADCAST, Message(("COMMIT", txn, removes, adds))
            )
            replica.unlock(removes)
            replica.apply(removes, adds)
            self.stats.commits += 1
            del self._coord[txn]
            state["done"].succeed(self.sim.now)
        else:
            self.segment.transmit(host, BROADCAST, Message(("ABORT", txn, removes)))
            replica.unlock(removes)
            self.stats.aborts += 1
            del self._coord[txn]
            self._backoff(host, state["upd"], state["done"], state["tries"])
