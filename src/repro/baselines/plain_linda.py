"""Classic Linda: the baseline FT-Linda is measured against.

Three deliberate regressions relative to FT-Linda, each matching a
deficiency Sec. 2 of the paper identifies:

1. **single-op atomicity** — :meth:`PlainLindaRuntime.execute` rejects any
   statement bigger than one operation, so multi-op updates must be coded
   as separate statements with a failure window between them;
2. **no failure notification** — there are no failure tuples; a crashed
   worker's disappearance is silent (``inject_failure`` refuses);
3. optionally **weak probe semantics** — distributed Linda kernels without
   totally ordered operations cannot promise that a failed ``inp``/``rdp``
   means no matching tuple existed ("of all other distributed Linda
   implementations … only [4] offers similar [strong] semantics", Sec. 6).
   ``weak_probe_miss_rate`` injects exactly that false-negative behavior,
   seeded for reproducibility.
"""

from __future__ import annotations

import random
import threading
from typing import Any

from repro._errors import AGSError
from repro.core.ags import AGS, AGSResult, GuardKind
from repro.core.runtime import LocalRuntime
from repro.core.spaces import TSHandle
from repro.core.tuples import LindaTuple

__all__ = ["PlainLindaRuntime"]


class PlainLindaRuntime(LocalRuntime):
    """Classic Linda semantics on the local backend."""

    def __init__(self, *, weak_probe_miss_rate: float = 0.0, seed: int = 0):
        super().__init__()
        self.weak_probe_miss_rate = weak_probe_miss_rate
        self._weak_rng = random.Random(seed)
        self._weak_lock = threading.Lock()
        self.false_negatives = 0

    # ------------------------------------------------------------------ #
    # single-op atomicity
    # ------------------------------------------------------------------ #

    def _submit(
        self, ags: AGS, process_id: int, *, timeout: float | None = None
    ) -> AGSResult:
        self._reject_multi_op(ags)
        return super()._submit(ags, process_id, timeout=timeout)

    @staticmethod
    def _reject_multi_op(ags: AGS) -> None:
        if len(ags.branches) > 1:
            raise AGSError(
                "plain Linda has no disjunction: one operation per statement"
            )
        branch = ags.branches[0]
        n_ops = len(branch.body) + (1 if branch.guard.kind is GuardKind.OP else 0)
        if n_ops > 1:
            raise AGSError(
                "plain Linda offers single-op atomicity only; "
                f"this statement contains {n_ops} operations"
            )

    # ------------------------------------------------------------------ #
    # weak probes
    # ------------------------------------------------------------------ #

    def inp(self, ts: TSHandle, *fields: Any, process_id: int = 0) -> LindaTuple | None:
        if self._weak_miss():
            return None  # false negative: a matching tuple may well exist
        return super().inp(ts, *fields, process_id=process_id)

    def rdp(self, ts: TSHandle, *fields: Any, process_id: int = 0) -> LindaTuple | None:
        if self._weak_miss():
            return None
        return super().rdp(ts, *fields, process_id=process_id)

    def _weak_miss(self) -> bool:
        if self.weak_probe_miss_rate <= 0.0:
            return False
        with self._weak_lock:
            miss = self._weak_rng.random() < self.weak_probe_miss_rate
        if miss:
            self.false_negatives += 1
        return miss

    # ------------------------------------------------------------------ #
    # no failure notification
    # ------------------------------------------------------------------ #

    def inject_failure(self, host_id: int) -> None:  # noqa: D102
        raise AGSError(
            "plain Linda provides no failure notification: crashed workers "
            "vanish silently (this is the deficiency FT-Linda fixes)"
        )
