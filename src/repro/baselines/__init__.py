"""Baselines the paper compares against (or motivates from).

- :mod:`repro.baselines.plain_linda` — classic Linda: single-op atomicity
  only, no stable spaces, no failure notification, optionally *weak*
  ``inp``/``rdp`` semantics.  This is the strawman whose failure modes
  Sec. 2.2 catalogs, used by experiments E6/E8/E10.
- :mod:`repro.baselines.twophase` — a replicated tuple space updated with
  lock-based two-phase commit, the design of Xu & Liskov [41, 40] and
  PLinda [4] that Sec. 6 contrasts with FT-Linda's single-multicast
  updates.  Used by experiment E4.
"""

from repro.baselines.plain_linda import PlainLindaRuntime
from repro.baselines.twophase import TwoPhaseCluster, TwoPhaseConfig

__all__ = ["PlainLindaRuntime", "TwoPhaseCluster", "TwoPhaseConfig"]
