"""ftlsh — an interactive FT-Linda shell.

A small REPL over a :class:`~repro.core.runtime.LocalRuntime`: type
FT-lcc statements and see their results, inspect spaces, load program
files, and inject failures.  Useful for exploring the semantics and for
demos; scriptable via stdin for tests.

Run::

    python -m repro.cli
    python -m repro.cli --program examples/worker.ftl
    python -m repro.cli --backend multiproc --replicas 3 --auto-recover
    python -m repro.cli metrics --backend multiproc --ops 500
    python -m repro.cli trace --backend multiproc --ops 100 --out trace.json
    python -m repro.cli top --backend threaded --wedge --once
    python -m repro.cli chaos --backend multiproc --seed 1

The ``metrics`` subcommand drives a small tuple-churn workload on a
chosen backend and prints the runtime's metrics snapshot (submit→order,
order→apply and end-to-end AGS latency histograms, plus batching
counters) — the quickest way to see what the replication pipeline costs.
``--json`` emits the raw snapshot dict as JSON for machine consumption.

The ``trace`` subcommand runs the same workload with a flight recorder
attached, exports the recorded spans as Chrome trace-event JSON (open
``--out`` in Perfetto or ``chrome://tracing``: one track per replica plus
the client tracks), runs the trace-driven replica-consistency checker
over the per-replica apply streams, and can print a text timeline
(``--text``).

The ``top`` subcommand is the live dashboard: it enables introspection,
drives a continuous tuple-churn workload on the chosen backend, and
auto-refreshes a terminal view of hot templates, the waiter table (with
stall-detector verdicts), replica queue depth/lag, and WAL size.
``--once`` renders a single frame and exits (CI smoke / scripting);
``--wedge`` spawns a consumer blocked on a template nobody deposits, to
watch the stall detector fire; ``--export FILE`` also writes each frame
as a Prometheus text-format snapshot.

The ``chaos`` subcommand is the failure-detection demo: it drives churn
on a parallel backend with the liveness plane enabled, hard-kills a
seeded-random replica mid-workload (``SIGKILL`` on multiproc), and
reports how long detection and auto-recovery took plus whether the group
converged afterwards.  The REPL itself can also run on a parallel
backend (``--backend threaded|multiproc``), where ``.kill``/``.recover``
/``.replicas`` expose the same machinery interactively.

Commands (everything else is compiled as an FT-lcc statement)::

    .spaces                    list tuple spaces
    .space NAME [stable|volatile]   create a space
    .dump NAME                 show a space's tuples
    .load FILE                 load an .ftl program (binds its spaces)
    .run NAME [k=v ...]        run a named program statement
    .fail HOST                 inject a failure notification
    .kill R                    hard-kill replica R, bypassing the group
                               (parallel backends; the detector must notice)
    .recover R                 restart replica R via state transfer
    .replicas                  show replica liveness
    .metrics                   show runtime latency/throughput metrics
    .catalog                   show the signature catalog
    .help                      this text
    .quit                      leave
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import Any, TextIO

from repro._errors import LindaError
from repro.core.ags import AGSResult
from repro.core.runtime import LocalRuntime
from repro.core.spaces import MAIN_TS, Resilience, Scope, TSHandle
from repro.lcc import SignatureCatalog, compile_ags
from repro.lcc.program import Program, compile_program

__all__ = ["FtlShell", "main"]


class FtlShell:
    """The REPL engine, separable from the terminal for testing."""

    def __init__(self, out: TextIO = sys.stdout, rt: Any = None):
        self.rt = LocalRuntime() if rt is None else rt
        self.out = out
        self.spaces: dict[str, TSHandle] = {"main": MAIN_TS}
        self.catalog = SignatureCatalog()
        self.program: Program | None = None
        self.running = True
        self._chaos: Any = None  # lazy ChaosMonkey for .kill

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #

    def repl(self, lines: TextIO, *, prompt: bool = True) -> None:
        while self.running:
            if prompt:
                self.out.write("ftl> ")
                self.out.flush()
            line = lines.readline()
            if not line:
                break
            self.handle(line.strip())

    def handle(self, line: str) -> None:
        """Process one input line."""
        if not line or line.startswith("#"):
            return
        try:
            if line.startswith("."):
                self._command(line)
            else:
                self._statement(line)
        except LindaError as exc:
            self._print(f"error: {exc}")
        except (ValueError, KeyError) as exc:
            self._print(f"error: {exc}")

    def _print(self, text: str) -> None:
        self.out.write(text + "\n")

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def _statement(self, src: str) -> None:
        ags = compile_ags(src, self.spaces, self.catalog)
        result = self.rt.execute(ags, timeout=5.0)
        self._show_result(result)

    def _show_result(self, result: AGSResult) -> None:
        if result.aborted:
            self._print(f"aborted: {result.error}")
        elif not result.succeeded:
            self._print("no branch fired")
        else:
            binds = ", ".join(f"{k}={v!r}" for k, v in result.bindings.items())
            self._print(f"ok (branch {result.fired}){': ' + binds if binds else ''}")

    # ------------------------------------------------------------------ #
    # dot-commands
    # ------------------------------------------------------------------ #

    def _command(self, line: str) -> None:
        parts = shlex.split(line)
        cmd, args = parts[0], parts[1:]
        if cmd == ".quit":
            self.running = False
        elif cmd == ".help":
            self._print(__doc__.split("Commands", 1)[1])
        elif cmd == ".spaces":
            for name, h in sorted(self.spaces.items()):
                size = self.rt.space_size(h)
                self._print(
                    f"{name:>12}  {h.resilience.value:>8} {h.scope.value:>7}  "
                    f"{size} tuples"
                )
        elif cmd == ".space":
            if not args:
                raise ValueError(".space NAME [stable|volatile]")
            name = args[0]
            resilience = Resilience(args[1]) if len(args) > 1 else Resilience.STABLE
            self.spaces[name] = self.rt.create_space(name, resilience)
            self._print(f"created {name}")
        elif cmd == ".dump":
            if not args or args[0] not in self.spaces:
                raise ValueError(f"unknown space {args[0] if args else '?'}")
            for t in self.rt.space_tuples(self.spaces[args[0]]):
                self._print(f"  {t!r}")
        elif cmd == ".load":
            if not args:
                raise ValueError(".load FILE")
            with open(args[0]) as f:
                source = f.read()
            self.program = compile_program(source).bind(
                self.rt, existing=self.spaces
            )
            self.spaces.update(self.program.handles)
            self._print(
                f"loaded {len(self.program.statement_decls)} statements, "
                f"spaces now: {sorted(self.spaces)}"
            )
        elif cmd == ".run":
            if self.program is None:
                raise ValueError("no program loaded (.load FILE first)")
            if not args:
                raise ValueError(".run NAME [k=v ...]")
            params: dict[str, Any] = {}
            for pair in args[1:]:
                k, _eq, v = pair.partition("=")
                params[k] = _parse_value(v)
            result = self.rt.execute(
                self.program.statement(args[0], **params), timeout=5.0
            )
            self._show_result(result)
        elif cmd == ".fail":
            self.rt.inject_failure(int(args[0]))
            self._print(f"failure tuple deposited for host {args[0]}")
        elif cmd == ".kill":
            if not args:
                raise ValueError(".kill REPLICA_ID")
            self._monkey().kill_replica(int(args[0]))
            self._print(
                f"replica {args[0]} killed behind the group's back "
                "(.replicas to watch the detector)"
            )
        elif cmd == ".recover":
            if not args:
                raise ValueError(".recover REPLICA_ID")
            self._group()  # raises on the local backend
            self.rt.recover_replica(int(args[0]))
            self._print(f"replica {args[0]} rejoined via state transfer")
        elif cmd == ".replicas":
            group = self._group()
            for i, alive in enumerate(group.alive):
                self._print(f"  replica {i}: {'live' if alive else 'DEAD'}")
        elif cmd == ".metrics":
            from repro.obs.metrics import format_snapshot

            self._print(format_snapshot(self.rt.metrics_snapshot()))
        elif cmd == ".catalog":
            for sig in self.catalog.signatures():
                self._print(f"  ({', '.join(sig)})")
            if self.program is not None:
                for sig in self.program.catalog.signatures():
                    self._print(f"  ({', '.join(sig)})  [program]")
        else:
            raise ValueError(f"unknown command {cmd} (.help for help)")

    def _group(self) -> Any:
        group = getattr(self.rt, "group", None)
        if group is None:
            raise ValueError(
                "this needs a parallel backend "
                "(restart with --backend threaded or multiproc)"
            )
        return group

    def _monkey(self) -> Any:
        self._group()
        if self._chaos is None:
            from repro.chaos import ChaosMonkey

            self._chaos = ChaosMonkey(self.rt)
        return self._chaos


def _parse_value(text: str) -> Any:
    """Parse a .run parameter: int, float, bool, or string."""
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            pass
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def _workload_parser(prog: str, description: str) -> argparse.ArgumentParser:
    """Shared options of the metrics/trace workload subcommands."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "--backend",
        choices=("local", "threaded", "multiproc"),
        default="local",
        help="runtime to measure (default: local)",
    )
    parser.add_argument("--ops", type=int, default=200, help="total out/in pairs")
    parser.add_argument("--clients", type=int, default=4, help="client threads")
    parser.add_argument(
        "--replicas", type=int, default=3, help="replica count (non-local backends)"
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="content-partitioned shard groups (non-local backends; default 1)",
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help="disable command batching (non-local backends)",
    )
    return parser


def _build_runtime(opts: argparse.Namespace, tracer: Any = None) -> Any:
    if opts.backend == "local":
        return LocalRuntime(tracer=tracer)
    shards = getattr(opts, "shards", 1)
    if opts.backend == "threaded":
        from repro.parallel import ThreadedReplicaRuntime

        return ThreadedReplicaRuntime(
            opts.replicas, shards=shards,
            batching=not opts.no_batching, tracer=tracer,
        )
    from repro.parallel import MultiprocessRuntime

    return MultiprocessRuntime(
        opts.replicas, shards=shards,
        batching=not opts.no_batching, tracer=tracer,
    )


def _run_churn(rt: Any, clients: int, ops: int) -> int:
    """Drive `ops` out/rd/in cycles split across `clients` threads.

    The rd in the middle exercises the replica group's read fast path on
    backends that have one — visible as the `read_fastpath` counter.
    """
    import threading

    per_client = max(1, ops // max(1, clients))

    def churn(client: int) -> None:
        for k in range(per_client):
            rt.out(rt.main_ts, "metrics-op", client, k)
            rt.rd(rt.main_ts, "metrics-op", client, k)
            rt.in_(rt.main_ts, "metrics-op", client, k)

    threads = [
        threading.Thread(target=churn, args=(c,), name=f"client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return per_client * clients


def _shutdown(rt: Any) -> None:
    shutdown = getattr(rt, "shutdown", None)
    if shutdown is not None:
        shutdown()


def _metrics_main(argv: list[str]) -> int:
    """``python -m repro.cli metrics``: run a workload, print metrics."""
    import json

    from repro.obs.metrics import format_snapshot

    parser = _workload_parser(
        "ftlsh metrics",
        "drive a tuple-churn workload and print runtime metrics",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw metrics_snapshot() dict as JSON",
    )
    opts = parser.parse_args(argv)
    rt = _build_runtime(opts)
    try:
        total = _run_churn(rt, opts.clients, opts.ops)
        if opts.json:
            print(json.dumps(rt.metrics_snapshot(), indent=2, sort_keys=True))
        else:
            print(
                f"backend={opts.backend} clients={opts.clients} ops={total}"
            )
            print(format_snapshot(rt.metrics_snapshot()))
    finally:
        _shutdown(rt)
    return 0


def _trace_main(argv: list[str]) -> int:
    """``python -m repro.cli trace``: record a traced run, export + check it."""
    import json

    from repro.obs.check import check_consistency
    from repro.obs.tracing import FlightRecorder, render_events, to_chrome_trace

    parser = _workload_parser(
        "ftlsh trace",
        "record a flight-recorder trace of a tuple-churn workload, export "
        "Chrome trace-event JSON and check replica consistency",
    )
    parser.add_argument(
        "--out",
        default="trace.json",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    parser.add_argument(
        "--text",
        action="store_true",
        help="also print a text timeline of the recorded events",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=1 << 16,
        help="flight-recorder ring size in events",
    )
    opts = parser.parse_args(argv)
    tracer = FlightRecorder(capacity=opts.capacity)
    rt = _build_runtime(opts, tracer=tracer)
    try:
        total = _run_churn(rt, opts.clients, opts.ops)
        quiesce = getattr(rt, "quiesce", None)
        if quiesce is not None:
            quiesce()  # in-band: every replica's SPANS precede the answer
    finally:
        _shutdown(rt)
    events = tracer.events()
    with open(opts.out, "w") as f:
        json.dump(to_chrome_trace(events), f)
    if opts.text:
        print(render_events(events))
    by_name: dict[str, int] = {}
    for e in events:
        by_name[e.name] = by_name.get(e.name, 0) + 1
    spans = " ".join(f"{k}={v}" for k, v in sorted(by_name.items()))
    print(
        f"backend={opts.backend} clients={opts.clients} ops={total} "
        f"events={len(events)} ({spans})"
    )
    print(f"wrote {opts.out} — open in Perfetto or chrome://tracing")
    report = check_consistency(events)
    print(report.summary())
    return 0 if report.ok else 1


def _top_main(argv: list[str]) -> int:
    """``python -m repro.cli top``: the live introspection dashboard."""
    import threading
    import time

    from repro.core.tuples import formal
    from repro.obs.inspect import (
        detect_stalls,
        enable_introspection,
        render_top,
        to_prometheus,
    )

    parser = _workload_parser(
        "ftlsh top",
        "auto-refreshing live dashboard: hot templates, waiter table with "
        "stall detection, replica lag, WAL size",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render before exiting (0 = until interrupted)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render exactly one frame, without clearing the screen, and exit",
    )
    parser.add_argument(
        "--wedge",
        action="store_true",
        help="spawn a consumer blocked on a template nobody deposits "
        "(demonstrates the stall detector)",
    )
    parser.add_argument(
        "--stall-threshold",
        type=float,
        default=5.0,
        help="seconds blocked with no matching out traffic before a waiter "
        "is flagged (default: 5)",
    )
    parser.add_argument(
        "--export",
        metavar="FILE",
        help="also write each frame as a Prometheus text-format snapshot",
    )
    parser.add_argument(
        "--wal",
        metavar="PATH",
        help="use a write-ahead-logged runtime at PATH (local backend only)",
    )
    opts = parser.parse_args(argv)

    enable_introspection()  # must precede runtime construction
    if opts.wal:
        if opts.backend != "local":
            parser.error("--wal requires --backend local")
        from repro.persist.wal import WALRuntime

        rt: Any = WALRuntime(opts.wal, fsync=False)
    else:
        rt = _build_runtime(opts)

    stop = threading.Event()

    def churn_forever(client: int) -> None:
        k = 0
        while not stop.is_set():
            rt.out(rt.main_ts, "top-op", client, k)
            rt.in_(rt.main_ts, "top-op", client, k)
            k += 1

    try:
        # one synchronous burst so even --once has state worth showing
        _run_churn(rt, opts.clients, opts.ops)
        if opts.wedge:
            threading.Thread(
                target=lambda: rt.in_(
                    rt.main_ts, "never-deposited", formal(int), process_id=999
                ),
                name="wedged-consumer",
                daemon=True,
            ).start()
            time.sleep(0.05)  # let the guard reach the replicas and park
        if not opts.once:
            for c in range(opts.clients):
                threading.Thread(
                    target=churn_forever, args=(c,),
                    name=f"churn-{c}", daemon=True,
                ).start()
        frames = 1 if opts.once else opts.iterations
        n = 0
        while True:
            snap = rt.introspection_snapshot()
            stalls = detect_stalls(snap, opts.stall_threshold)
            frame = render_top(snap, rt.metrics_snapshot(), stalls)
            if not opts.once:
                sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            print(frame)
            sys.stdout.flush()
            if opts.export:
                with open(opts.export, "w") as f:
                    f.write(to_prometheus(snap, rt.metrics_snapshot(), stalls))
            n += 1
            if frames and n >= frames:
                break
            try:
                time.sleep(opts.interval)
            except KeyboardInterrupt:
                break
    finally:
        stop.set()
        _shutdown(rt)
    return 0


def _chaos_main(argv: list[str]) -> int:
    """``python -m repro.cli chaos``: kill a replica under churn, report."""
    import json
    import threading
    import time

    parser = _workload_parser(
        "ftlsh chaos",
        "drive churn on a parallel backend, hard-kill a seeded-random "
        "replica mid-workload, and report detection/recovery latency",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-injection RNG seed"
    )
    parser.add_argument(
        "--warmup", type=float, default=0.3,
        help="seconds of churn before the kill (default: 0.3)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    opts = parser.parse_args(argv)
    if opts.backend == "local":
        parser.error("chaos needs a parallel backend (--backend threaded|multiproc)")
    if opts.replicas < 2:
        parser.error("chaos needs at least 2 replicas")

    from repro.chaos import ChaosMonkey
    from repro.replication import LivenessPolicy

    policy = LivenessPolicy(
        probe_interval=0.05,
        suspect_after=0.3,
        auto_recover=True,
        backoff_initial=0.05,
    )
    if opts.backend == "threaded":
        from repro.parallel import ThreadedReplicaRuntime

        rt: Any = ThreadedReplicaRuntime(
            opts.replicas,
            shards=opts.shards,
            batching=not opts.no_batching,
            detect_failures=policy,
        )
    else:
        from repro.parallel import MultiprocessRuntime

        rt = MultiprocessRuntime(
            opts.replicas,
            shards=opts.shards,
            batching=not opts.no_batching,
            detect_failures=policy,
        )
    # On a sharded runtime the monkey torments one seeded-random shard
    # group; the report names it so reruns with the same seed replay it.
    monkey = ChaosMonkey(
        rt, seed=opts.seed, shard="random" if opts.shards > 1 else None
    )
    stop = threading.Event()
    completed = [0] * opts.clients

    def churn(client: int) -> None:
        k = 0
        while not stop.is_set():
            rt.out(rt.main_ts, "chaos-op", client, k)
            rt.in_(rt.main_ts, "chaos-op", client, k)
            completed[client] += 1
            k += 1

    threads = [
        threading.Thread(target=churn, args=(c,), name=f"chaos-client-{c}")
        for c in range(opts.clients)
    ]
    try:
        for t in threads:
            t.start()
        time.sleep(opts.warmup)
        victim = monkey.rng.randrange(1, opts.replicas)
        monkey.kill_replica(victim)
        t_detect = monkey.wait_detected(victim)
        t_recover = monkey.wait_recovered(victim)
        time.sleep(opts.warmup)  # churn over the healed group
    finally:
        stop.set()
        for t in threads:
            t.join()
    converged = rt.converged()
    snap = rt.metrics_snapshot()
    _shutdown(rt)
    report = {
        "backend": opts.backend,
        "replicas": opts.replicas,
        "shards": opts.shards,
        "shard": monkey.group.name or "shard0",
        "seed": opts.seed,
        "victim": victim,
        "detect_s": round(t_detect, 4),
        "recover_s": round(t_recover, 4),
        "ops_completed": sum(completed),
        "converged": converged,
        "failures_detected": snap["counters"].get("failures_detected", 0),
        "auto_recoveries": snap["counters"].get("auto_recoveries", 0),
    }
    if opts.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"backend={opts.backend} replicas={opts.replicas} seed={opts.seed}"
        )
        where = f" ({monkey.group.name})" if opts.shards > 1 else ""
        print(
            f"SIGKILLed replica {victim}{where}: detected in "
            f"{t_detect * 1e3:.0f}ms, auto-recovered in {t_recover * 1e3:.0f}ms"
        )
        print(
            f"clients completed {sum(completed)} ops through the fault; "
            f"converged={converged}"
        )
    return 0 if converged else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="ftlsh", description="interactive FT-Linda shell"
    )
    parser.add_argument("--program", help=".ftl program to load at startup")
    parser.add_argument(
        "--quiet", action="store_true", help="no prompt (for piped scripts)"
    )
    parser.add_argument(
        "--backend",
        choices=("local", "threaded", "multiproc"),
        default="local",
        help="runtime behind the shell (default: local); parallel backends "
        "enable .kill/.recover/.replicas with the failure detector on",
    )
    parser.add_argument(
        "--replicas", type=int, default=3, help="replica count (parallel backends)"
    )
    parser.add_argument(
        "--auto-recover",
        action="store_true",
        help="let the liveness supervisor restart detected-dead replicas",
    )
    opts = parser.parse_args(argv)
    if opts.backend == "local":
        rt: Any = LocalRuntime()
    elif opts.backend == "threaded":
        from repro.parallel import ThreadedReplicaRuntime

        rt = ThreadedReplicaRuntime(
            opts.replicas, detect_failures=True, auto_recover=opts.auto_recover
        )
    else:
        from repro.parallel import MultiprocessRuntime

        rt = MultiprocessRuntime(
            opts.replicas, detect_failures=True, auto_recover=opts.auto_recover
        )
    shell = FtlShell(rt=rt)
    try:
        if opts.program:
            shell.handle(f".load {opts.program}")
        shell.repl(sys.stdin, prompt=not opts.quiet)
    finally:
        _shutdown(rt)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
