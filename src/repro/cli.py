"""ftlsh — an interactive FT-Linda shell.

A small REPL over a :class:`~repro.core.runtime.LocalRuntime`: type
FT-lcc statements and see their results, inspect spaces, load program
files, and inject failures.  Useful for exploring the semantics and for
demos; scriptable via stdin for tests.

Run::

    python -m repro.cli
    python -m repro.cli --program examples/worker.ftl
    python -m repro.cli metrics --backend multiproc --ops 500

The ``metrics`` subcommand drives a small tuple-churn workload on a
chosen backend and prints the runtime's metrics snapshot (submit→order,
order→apply and end-to-end AGS latency histograms, plus batching
counters) — the quickest way to see what the replication pipeline costs.

Commands (everything else is compiled as an FT-lcc statement)::

    .spaces                    list tuple spaces
    .space NAME [stable|volatile]   create a space
    .dump NAME                 show a space's tuples
    .load FILE                 load an .ftl program (binds its spaces)
    .run NAME [k=v ...]        run a named program statement
    .fail HOST                 inject a failure notification
    .metrics                   show runtime latency/throughput metrics
    .catalog                   show the signature catalog
    .help                      this text
    .quit                      leave
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import Any, TextIO

from repro._errors import LindaError
from repro.core.ags import AGSResult
from repro.core.runtime import LocalRuntime
from repro.core.spaces import MAIN_TS, Resilience, Scope, TSHandle
from repro.lcc import SignatureCatalog, compile_ags
from repro.lcc.program import Program, compile_program

__all__ = ["FtlShell", "main"]


class FtlShell:
    """The REPL engine, separable from the terminal for testing."""

    def __init__(self, out: TextIO = sys.stdout):
        self.rt = LocalRuntime()
        self.out = out
        self.spaces: dict[str, TSHandle] = {"main": MAIN_TS}
        self.catalog = SignatureCatalog()
        self.program: Program | None = None
        self.running = True

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #

    def repl(self, lines: TextIO, *, prompt: bool = True) -> None:
        while self.running:
            if prompt:
                self.out.write("ftl> ")
                self.out.flush()
            line = lines.readline()
            if not line:
                break
            self.handle(line.strip())

    def handle(self, line: str) -> None:
        """Process one input line."""
        if not line or line.startswith("#"):
            return
        try:
            if line.startswith("."):
                self._command(line)
            else:
                self._statement(line)
        except LindaError as exc:
            self._print(f"error: {exc}")
        except (ValueError, KeyError) as exc:
            self._print(f"error: {exc}")

    def _print(self, text: str) -> None:
        self.out.write(text + "\n")

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def _statement(self, src: str) -> None:
        ags = compile_ags(src, self.spaces, self.catalog)
        result = self.rt.execute(ags, timeout=5.0)
        self._show_result(result)

    def _show_result(self, result: AGSResult) -> None:
        if result.aborted:
            self._print(f"aborted: {result.error}")
        elif not result.succeeded:
            self._print("no branch fired")
        else:
            binds = ", ".join(f"{k}={v!r}" for k, v in result.bindings.items())
            self._print(f"ok (branch {result.fired}){': ' + binds if binds else ''}")

    # ------------------------------------------------------------------ #
    # dot-commands
    # ------------------------------------------------------------------ #

    def _command(self, line: str) -> None:
        parts = shlex.split(line)
        cmd, args = parts[0], parts[1:]
        if cmd == ".quit":
            self.running = False
        elif cmd == ".help":
            self._print(__doc__.split("Commands", 1)[1])
        elif cmd == ".spaces":
            for name, h in sorted(self.spaces.items()):
                size = self.rt.space_size(h)
                self._print(
                    f"{name:>12}  {h.resilience.value:>8} {h.scope.value:>7}  "
                    f"{size} tuples"
                )
        elif cmd == ".space":
            if not args:
                raise ValueError(".space NAME [stable|volatile]")
            name = args[0]
            resilience = Resilience(args[1]) if len(args) > 1 else Resilience.STABLE
            self.spaces[name] = self.rt.create_space(name, resilience)
            self._print(f"created {name}")
        elif cmd == ".dump":
            if not args or args[0] not in self.spaces:
                raise ValueError(f"unknown space {args[0] if args else '?'}")
            for t in self.rt.space_tuples(self.spaces[args[0]]):
                self._print(f"  {t!r}")
        elif cmd == ".load":
            if not args:
                raise ValueError(".load FILE")
            with open(args[0]) as f:
                source = f.read()
            self.program = compile_program(source).bind(
                self.rt, existing=self.spaces
            )
            self.spaces.update(self.program.handles)
            self._print(
                f"loaded {len(self.program.statement_decls)} statements, "
                f"spaces now: {sorted(self.spaces)}"
            )
        elif cmd == ".run":
            if self.program is None:
                raise ValueError("no program loaded (.load FILE first)")
            if not args:
                raise ValueError(".run NAME [k=v ...]")
            params: dict[str, Any] = {}
            for pair in args[1:]:
                k, _eq, v = pair.partition("=")
                params[k] = _parse_value(v)
            result = self.rt.execute(
                self.program.statement(args[0], **params), timeout=5.0
            )
            self._show_result(result)
        elif cmd == ".fail":
            self.rt.inject_failure(int(args[0]))
            self._print(f"failure tuple deposited for host {args[0]}")
        elif cmd == ".metrics":
            from repro.obs.metrics import format_snapshot

            self._print(format_snapshot(self.rt.metrics_snapshot()))
        elif cmd == ".catalog":
            for sig in self.catalog.signatures():
                self._print(f"  ({', '.join(sig)})")
            if self.program is not None:
                for sig in self.program.catalog.signatures():
                    self._print(f"  ({', '.join(sig)})  [program]")
        else:
            raise ValueError(f"unknown command {cmd} (.help for help)")


def _parse_value(text: str) -> Any:
    """Parse a .run parameter: int, float, bool, or string."""
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            pass
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def _metrics_main(argv: list[str]) -> int:
    """``python -m repro.cli metrics``: run a workload, print metrics."""
    import threading

    from repro.obs.metrics import format_snapshot

    parser = argparse.ArgumentParser(
        prog="ftlsh metrics",
        description="drive a tuple-churn workload and print runtime metrics",
    )
    parser.add_argument(
        "--backend",
        choices=("local", "threaded", "multiproc"),
        default="local",
        help="runtime to measure (default: local)",
    )
    parser.add_argument("--ops", type=int, default=200, help="total out/in pairs")
    parser.add_argument("--clients", type=int, default=4, help="client threads")
    parser.add_argument(
        "--replicas", type=int, default=3, help="replica count (non-local backends)"
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help="disable command batching (non-local backends)",
    )
    opts = parser.parse_args(argv)

    if opts.backend == "local":
        rt = LocalRuntime()
    elif opts.backend == "threaded":
        from repro.parallel import ThreadedReplicaRuntime

        rt = ThreadedReplicaRuntime(opts.replicas, batching=not opts.no_batching)
    else:
        from repro.parallel import MultiprocessRuntime

        rt = MultiprocessRuntime(opts.replicas, batching=not opts.no_batching)

    per_client = max(1, opts.ops // max(1, opts.clients))

    def churn(client: int) -> None:
        for k in range(per_client):
            rt.out(rt.main_ts, "metrics-op", client, k)
            rt.in_(rt.main_ts, "metrics-op", client, k)

    try:
        threads = [
            threading.Thread(target=churn, args=(c,), name=f"client-{c}")
            for c in range(opts.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        print(
            f"backend={opts.backend} clients={opts.clients} "
            f"ops={per_client * opts.clients}"
        )
        print(format_snapshot(rt.metrics_snapshot()))
    finally:
        shutdown = getattr(rt, "shutdown", None)
        if shutdown is not None:
            shutdown()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="ftlsh", description="interactive FT-Linda shell"
    )
    parser.add_argument("--program", help=".ftl program to load at startup")
    parser.add_argument(
        "--quiet", action="store_true", help="no prompt (for piped scripts)"
    )
    opts = parser.parse_args(argv)
    shell = FtlShell()
    if opts.program:
        shell.handle(f".load {opts.program}")
    shell.repl(sys.stdin, prompt=not opts.quiet)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
