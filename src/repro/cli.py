"""ftlsh — an interactive FT-Linda shell.

A small REPL over a :class:`~repro.core.runtime.LocalRuntime`: type
FT-lcc statements and see their results, inspect spaces, load program
files, and inject failures.  Useful for exploring the semantics and for
demos; scriptable via stdin for tests.

Run::

    python -m repro.cli
    python -m repro.cli --program examples/worker.ftl
    python -m repro.cli --backend multiproc --replicas 3 --auto-recover
    python -m repro.cli metrics --backend multiproc --ops 500
    python -m repro.cli trace --backend multiproc --ops 100 --out trace.json
    python -m repro.cli top --backend threaded --wedge --once
    python -m repro.cli chaos --backend multiproc --seed 1
    python -m repro.cli profile --backend multiproc --out prof.speedscope.json
    python -m repro.cli bench run --quick
    python -m repro.cli bench compare --current-dir /tmp/ci-bench

The ``metrics`` subcommand drives a small tuple-churn workload on a
chosen backend and prints the runtime's metrics snapshot (submit→order,
order→apply and end-to-end AGS latency histograms, plus batching
counters) — the quickest way to see what the replication pipeline costs.
``--json`` emits the raw snapshot dict as JSON for machine consumption.

The ``trace`` subcommand runs the same workload with a flight recorder
attached, exports the recorded spans as Chrome trace-event JSON (open
``--out`` in Perfetto or ``chrome://tracing``: one track per replica plus
the client tracks), runs the trace-driven replica-consistency checker
over the per-replica apply streams, and can print a text timeline
(``--text``).

The ``top`` subcommand is the live dashboard: it enables introspection,
drives a continuous tuple-churn workload on the chosen backend, and
auto-refreshes a terminal view of hot templates, the waiter table (with
stall-detector verdicts), replica queue depth/lag, and WAL size.
``--once`` renders a single frame and exits (CI smoke / scripting);
``--wedge`` spawns a consumer blocked on a template nobody deposits, to
watch the stall detector fire; ``--export FILE`` also writes each frame
as a Prometheus text-format snapshot; ``--json`` emits the frame's raw
data (introspection snapshot, metrics, stall verdicts, stage budget) as
one JSON document instead of the rendered panel.  With ``REPRO_STAGES=1``
in the environment the metrics carry the per-stage pipeline histograms
and the panel ends with the "where does a millisecond go" budget.

The ``profile`` subcommand runs the continuous sampling profiler over a
churn workload: hot runtime threads appear under their registered role
names (``sequencer``, ``replica-2``, ``read-flusher``, ...; shard-
qualified on sharded runtimes), and on the multiprocess backend each
replica OS process is sampled in situ via the in-band query lane.  The
folded profile is exported as speedscope JSON (``--format speedscope``,
load at https://www.speedscope.app) or collapsed flamegraph text
(``--format collapsed``, pipe into ``flamegraph.pl``); ``--once`` is the
short gating smoke that fails unless samples landed on named roles.

The ``bench`` subcommand is the perf-regression harness driver:
``bench run`` executes ``benchmarks/bench_*.py`` each in its own
interpreter, writing standardized ``BENCH_*.json`` results (schema
``repro.bench.runner``) — by default straight into
``benchmarks/results/``, which IS the baseline-refresh workflow;
``bench compare`` diffs a results directory against the committed
baselines with per-metric direction-aware tolerances.  Exit codes: 0
clean, 1 regressions (suppressible with ``--allow-regressions`` for
non-gating CI), 2 run/schema failures or vanished metrics.

The ``chaos`` subcommand is the failure-detection demo: it drives churn
on a parallel backend with the liveness plane enabled, hard-kills a
seeded-random replica mid-workload (``SIGKILL`` on multiproc), and
reports how long detection and auto-recovery took plus whether the group
converged afterwards.  The REPL itself can also run on a parallel
backend (``--backend threaded|multiproc``), where ``.kill``/``.recover``
/``.replicas`` expose the same machinery interactively.

Commands (everything else is compiled as an FT-lcc statement)::

    .spaces                    list tuple spaces
    .space NAME [stable|volatile]   create a space
    .dump NAME                 show a space's tuples
    .load FILE                 load an .ftl program (binds its spaces)
    .run NAME [k=v ...]        run a named program statement
    .fail HOST                 inject a failure notification
    .kill R                    hard-kill replica R, bypassing the group
                               (parallel backends; the detector must notice)
    .recover R                 restart replica R via state transfer
    .replicas                  show replica liveness
    .metrics                   show runtime latency/throughput metrics
    .catalog                   show the signature catalog
    .help                      this text
    .quit                      leave
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import Any, TextIO

from repro._errors import LindaError
from repro.core.ags import AGSResult
from repro.core.runtime import LocalRuntime
from repro.core.spaces import MAIN_TS, Resilience, Scope, TSHandle
from repro.lcc import SignatureCatalog, compile_ags
from repro.lcc.program import Program, compile_program

__all__ = ["FtlShell", "main"]


class FtlShell:
    """The REPL engine, separable from the terminal for testing."""

    def __init__(self, out: TextIO = sys.stdout, rt: Any = None):
        self.rt = LocalRuntime() if rt is None else rt
        self.out = out
        self.spaces: dict[str, TSHandle] = {"main": MAIN_TS}
        self.catalog = SignatureCatalog()
        self.program: Program | None = None
        self.running = True
        self._chaos: Any = None  # lazy ChaosMonkey for .kill

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #

    def repl(self, lines: TextIO, *, prompt: bool = True) -> None:
        while self.running:
            if prompt:
                self.out.write("ftl> ")
                self.out.flush()
            line = lines.readline()
            if not line:
                break
            self.handle(line.strip())

    def handle(self, line: str) -> None:
        """Process one input line."""
        if not line or line.startswith("#"):
            return
        try:
            if line.startswith("."):
                self._command(line)
            else:
                self._statement(line)
        except LindaError as exc:
            self._print(f"error: {exc}")
        except (ValueError, KeyError) as exc:
            self._print(f"error: {exc}")

    def _print(self, text: str) -> None:
        self.out.write(text + "\n")

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def _statement(self, src: str) -> None:
        ags = compile_ags(src, self.spaces, self.catalog)
        result = self.rt.execute(ags, timeout=5.0)
        self._show_result(result)

    def _show_result(self, result: AGSResult) -> None:
        if result.aborted:
            self._print(f"aborted: {result.error}")
        elif not result.succeeded:
            self._print("no branch fired")
        else:
            binds = ", ".join(f"{k}={v!r}" for k, v in result.bindings.items())
            self._print(f"ok (branch {result.fired}){': ' + binds if binds else ''}")

    # ------------------------------------------------------------------ #
    # dot-commands
    # ------------------------------------------------------------------ #

    def _command(self, line: str) -> None:
        parts = shlex.split(line)
        cmd, args = parts[0], parts[1:]
        if cmd == ".quit":
            self.running = False
        elif cmd == ".help":
            self._print(__doc__.split("Commands", 1)[1])
        elif cmd == ".spaces":
            for name, h in sorted(self.spaces.items()):
                size = self.rt.space_size(h)
                self._print(
                    f"{name:>12}  {h.resilience.value:>8} {h.scope.value:>7}  "
                    f"{size} tuples"
                )
        elif cmd == ".space":
            if not args:
                raise ValueError(".space NAME [stable|volatile]")
            name = args[0]
            resilience = Resilience(args[1]) if len(args) > 1 else Resilience.STABLE
            self.spaces[name] = self.rt.create_space(name, resilience)
            self._print(f"created {name}")
        elif cmd == ".dump":
            if not args or args[0] not in self.spaces:
                raise ValueError(f"unknown space {args[0] if args else '?'}")
            for t in self.rt.space_tuples(self.spaces[args[0]]):
                self._print(f"  {t!r}")
        elif cmd == ".load":
            if not args:
                raise ValueError(".load FILE")
            with open(args[0]) as f:
                source = f.read()
            self.program = compile_program(source).bind(
                self.rt, existing=self.spaces
            )
            self.spaces.update(self.program.handles)
            self._print(
                f"loaded {len(self.program.statement_decls)} statements, "
                f"spaces now: {sorted(self.spaces)}"
            )
        elif cmd == ".run":
            if self.program is None:
                raise ValueError("no program loaded (.load FILE first)")
            if not args:
                raise ValueError(".run NAME [k=v ...]")
            params: dict[str, Any] = {}
            for pair in args[1:]:
                k, _eq, v = pair.partition("=")
                params[k] = _parse_value(v)
            result = self.rt.execute(
                self.program.statement(args[0], **params), timeout=5.0
            )
            self._show_result(result)
        elif cmd == ".fail":
            self.rt.inject_failure(int(args[0]))
            self._print(f"failure tuple deposited for host {args[0]}")
        elif cmd == ".kill":
            if not args:
                raise ValueError(".kill REPLICA_ID")
            self._monkey().kill_replica(int(args[0]))
            self._print(
                f"replica {args[0]} killed behind the group's back "
                "(.replicas to watch the detector)"
            )
        elif cmd == ".recover":
            if not args:
                raise ValueError(".recover REPLICA_ID")
            self._group()  # raises on the local backend
            self.rt.recover_replica(int(args[0]))
            self._print(f"replica {args[0]} rejoined via state transfer")
        elif cmd == ".replicas":
            group = self._group()
            for i, alive in enumerate(group.alive):
                self._print(f"  replica {i}: {'live' if alive else 'DEAD'}")
        elif cmd == ".metrics":
            from repro.obs.metrics import format_snapshot

            self._print(format_snapshot(self.rt.metrics_snapshot()))
        elif cmd == ".catalog":
            for sig in self.catalog.signatures():
                self._print(f"  ({', '.join(sig)})")
            if self.program is not None:
                for sig in self.program.catalog.signatures():
                    self._print(f"  ({', '.join(sig)})  [program]")
        else:
            raise ValueError(f"unknown command {cmd} (.help for help)")

    def _group(self) -> Any:
        group = getattr(self.rt, "group", None)
        if group is None:
            raise ValueError(
                "this needs a parallel backend "
                "(restart with --backend threaded or multiproc)"
            )
        return group

    def _monkey(self) -> Any:
        self._group()
        if self._chaos is None:
            from repro.chaos import ChaosMonkey

            self._chaos = ChaosMonkey(self.rt)
        return self._chaos


def _parse_value(text: str) -> Any:
    """Parse a .run parameter: int, float, bool, or string."""
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            pass
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def _workload_parser(prog: str, description: str) -> argparse.ArgumentParser:
    """Shared options of the metrics/trace workload subcommands."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "--backend",
        choices=("local", "threaded", "multiproc"),
        default="local",
        help="runtime to measure (default: local)",
    )
    parser.add_argument("--ops", type=int, default=200, help="total out/in pairs")
    parser.add_argument("--clients", type=int, default=4, help="client threads")
    parser.add_argument(
        "--replicas", type=int, default=3, help="replica count (non-local backends)"
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="content-partitioned shard groups (non-local backends; default 1)",
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help="disable command batching (non-local backends)",
    )
    return parser


def _build_runtime(opts: argparse.Namespace, tracer: Any = None) -> Any:
    if opts.backend == "local":
        return LocalRuntime(tracer=tracer)
    shards = getattr(opts, "shards", 1)
    if opts.backend == "threaded":
        from repro.parallel import ThreadedReplicaRuntime

        return ThreadedReplicaRuntime(
            opts.replicas, shards=shards,
            batching=not opts.no_batching, tracer=tracer,
        )
    from repro.parallel import MultiprocessRuntime

    return MultiprocessRuntime(
        opts.replicas, shards=shards,
        batching=not opts.no_batching, tracer=tracer,
    )


def _run_churn(rt: Any, clients: int, ops: int) -> int:
    """Drive `ops` out/rd/in cycles split across `clients` threads.

    The rd in the middle exercises the replica group's read fast path on
    backends that have one — visible as the `read_fastpath` counter.
    """
    import threading

    per_client = max(1, ops // max(1, clients))

    def churn(client: int) -> None:
        for k in range(per_client):
            rt.out(rt.main_ts, "metrics-op", client, k)
            rt.rd(rt.main_ts, "metrics-op", client, k)
            rt.in_(rt.main_ts, "metrics-op", client, k)

    threads = [
        threading.Thread(target=churn, args=(c,), name=f"client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return per_client * clients


def _shutdown(rt: Any) -> None:
    shutdown = getattr(rt, "shutdown", None)
    if shutdown is not None:
        shutdown()


def _metrics_main(argv: list[str]) -> int:
    """``python -m repro.cli metrics``: run a workload, print metrics."""
    import json

    from repro.obs.metrics import format_snapshot

    parser = _workload_parser(
        "ftlsh metrics",
        "drive a tuple-churn workload and print runtime metrics",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw metrics_snapshot() dict as JSON",
    )
    opts = parser.parse_args(argv)
    rt = _build_runtime(opts)
    try:
        total = _run_churn(rt, opts.clients, opts.ops)
        if opts.json:
            print(json.dumps(rt.metrics_snapshot(), indent=2, sort_keys=True))
        else:
            print(
                f"backend={opts.backend} clients={opts.clients} ops={total}"
            )
            print(format_snapshot(rt.metrics_snapshot()))
    finally:
        _shutdown(rt)
    return 0


def _trace_main(argv: list[str]) -> int:
    """``python -m repro.cli trace``: record a traced run, export + check it."""
    import json

    from repro.obs.check import check_consistency
    from repro.obs.tracing import FlightRecorder, render_events, to_chrome_trace

    parser = _workload_parser(
        "ftlsh trace",
        "record a flight-recorder trace of a tuple-churn workload, export "
        "Chrome trace-event JSON and check replica consistency",
    )
    parser.add_argument(
        "--out",
        default="trace.json",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    parser.add_argument(
        "--text",
        action="store_true",
        help="also print a text timeline of the recorded events",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=1 << 16,
        help="flight-recorder ring size in events",
    )
    opts = parser.parse_args(argv)
    tracer = FlightRecorder(capacity=opts.capacity)
    rt = _build_runtime(opts, tracer=tracer)
    try:
        total = _run_churn(rt, opts.clients, opts.ops)
        quiesce = getattr(rt, "quiesce", None)
        if quiesce is not None:
            quiesce()  # in-band: every replica's SPANS precede the answer
    finally:
        _shutdown(rt)
    events = tracer.events()
    with open(opts.out, "w") as f:
        json.dump(to_chrome_trace(events), f)
    if opts.text:
        print(render_events(events))
    by_name: dict[str, int] = {}
    for e in events:
        by_name[e.name] = by_name.get(e.name, 0) + 1
    spans = " ".join(f"{k}={v}" for k, v in sorted(by_name.items()))
    print(
        f"backend={opts.backend} clients={opts.clients} ops={total} "
        f"events={len(events)} ({spans})"
    )
    print(f"wrote {opts.out} — open in Perfetto or chrome://tracing")
    report = check_consistency(events)
    print(report.summary())
    return 0 if report.ok else 1


def _jsonable(value: Any) -> Any:
    """Recursively coerce a snapshot into JSON-clean data.

    Introspection snapshots key hot-template counters by template tuples;
    JSON needs string keys, so non-primitive keys become their ``repr``.
    """
    if isinstance(value, dict):
        return {
            (k if isinstance(k, str) else repr(k)): _jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _top_main(argv: list[str]) -> int:
    """``python -m repro.cli top``: the live introspection dashboard."""
    import threading
    import time

    from repro.core.tuples import formal
    from repro.obs.inspect import (
        detect_stalls,
        enable_introspection,
        render_top,
        to_prometheus,
    )

    parser = _workload_parser(
        "ftlsh top",
        "auto-refreshing live dashboard: hot templates, waiter table with "
        "stall detection, replica lag, WAL size",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render before exiting (0 = until interrupted)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render exactly one frame, without clearing the screen, and exit",
    )
    parser.add_argument(
        "--wedge",
        action="store_true",
        help="spawn a consumer blocked on a template nobody deposits "
        "(demonstrates the stall detector)",
    )
    parser.add_argument(
        "--stall-threshold",
        type=float,
        default=5.0,
        help="seconds blocked with no matching out traffic before a waiter "
        "is flagged (default: 5)",
    )
    parser.add_argument(
        "--export",
        metavar="FILE",
        help="also write each frame as a Prometheus text-format snapshot",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit each frame's raw data (introspection, metrics, stalls, "
        "stage budget) as one JSON document instead of the panel",
    )
    parser.add_argument(
        "--wal",
        metavar="PATH",
        help="use a write-ahead-logged runtime at PATH (local backend only)",
    )
    parser.add_argument(
        "--url",
        metavar="URL",
        help="render the dashboard from a remote /snapshot endpoint "
        "(e.g. http://host:port) instead of an in-process runtime",
    )
    opts = parser.parse_args(argv)

    if opts.url:
        return _remote_top(opts)

    enable_introspection()  # must precede runtime construction
    if opts.wal:
        if opts.backend != "local":
            parser.error("--wal requires --backend local")
        from repro.persist.wal import WALRuntime

        rt: Any = WALRuntime(opts.wal, fsync=False)
    else:
        rt = _build_runtime(opts)

    stop = threading.Event()

    def churn_forever(client: int) -> None:
        k = 0
        while not stop.is_set():
            rt.out(rt.main_ts, "top-op", client, k)
            rt.in_(rt.main_ts, "top-op", client, k)
            k += 1

    try:
        # one synchronous burst so even --once has state worth showing
        _run_churn(rt, opts.clients, opts.ops)
        if opts.wedge:
            threading.Thread(
                target=lambda: rt.in_(
                    rt.main_ts, "never-deposited", formal(int), process_id=999
                ),
                name="wedged-consumer",
                daemon=True,
            ).start()
            time.sleep(0.05)  # let the guard reach the replicas and park
        if not opts.once:
            for c in range(opts.clients):
                threading.Thread(
                    target=churn_forever, args=(c,),
                    name=f"churn-{c}", daemon=True,
                ).start()
        from repro.obs.slo import AlertEngine, default_rules

        engine = AlertEngine(
            rules=default_rules(), metrics=getattr(rt, "metrics", None)
        )
        frames = 1 if opts.once else opts.iterations
        n = 0
        while True:
            snap = rt.introspection_snapshot()
            stalls = detect_stalls(snap, opts.stall_threshold)
            metrics = rt.metrics_snapshot()
            ctx = {"introspection": snap, "metrics": metrics, "stalls": stalls}
            if opts.once:
                # a single frame gives hysteresis only one shot — prime it
                # so a stalled/wedged state is visible in the one render
                engine.evaluate(ctx)
            alerts = engine.evaluate(ctx)
            if opts.json:
                import json

                from repro.obs.stages import stage_budget

                print(json.dumps(
                    _jsonable(
                        {
                            "introspection": snap,
                            "metrics": metrics,
                            "stalls": stalls,
                            "alerts": alerts,
                            "stage_budget": stage_budget(metrics),
                        }
                    ),
                    indent=2,
                    sort_keys=True,
                ))
            else:
                frame = render_top(snap, metrics, stalls, alerts)
                if not opts.once:
                    sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
                print(frame)
            sys.stdout.flush()
            if opts.export:
                with open(opts.export, "w") as f:
                    f.write(to_prometheus(snap, metrics, stalls, alerts))
            n += 1
            if frames and n >= frames:
                break
            try:
                time.sleep(opts.interval)
            except KeyboardInterrupt:
                break
    finally:
        stop.set()
        _shutdown(rt)
    return 0


def _remote_top(opts: argparse.Namespace) -> int:
    """``top --url``: render the dashboard from a remote /snapshot feed.

    The endpoint already ran stall detection and alert evaluation
    server-side (they need the live runtime), so remote frames are pure
    rendering — any machine with HTTP reach can watch a tuple space.
    """
    import json
    import time
    import urllib.error
    import urllib.request

    from repro.obs.inspect import render_top

    base = opts.url.rstrip("/")
    frames = 1 if opts.once else opts.iterations
    n = 0
    while True:
        try:
            with urllib.request.urlopen(base + "/snapshot", timeout=10) as r:
                payload = json.loads(r.read())
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot reach {base}/snapshot: {exc}", file=sys.stderr)
            return 1
        if opts.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            frame = render_top(
                payload.get("introspection", {}),
                payload.get("metrics"),
                payload.get("stalls"),
                payload.get("alerts"),
            )
            if not opts.once:
                sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            print(f"[remote {base}]")
            print(frame)
        sys.stdout.flush()
        n += 1
        if frames and n >= frames:
            return 0
        try:
            time.sleep(opts.interval)
        except KeyboardInterrupt:
            return 0


def _serve_main(argv: list[str]) -> int:
    """``python -m repro.cli serve``: run a runtime with the HTTP endpoint.

    Default mode drives continuous churn and serves until interrupted —
    an observable tuple space to curl at.  ``--smoke`` instead asserts
    the endpoint contract (metric families present, health flips to 503
    on an unrecovered replica kill) and exits — the CI gate.
    """
    import json
    import threading
    import time
    import urllib.error
    import urllib.request

    from repro.obs.inspect import enable_introspection

    parser = _workload_parser(
        "ftlsh serve",
        "serve /metrics /health /snapshot /events /debug/trace "
        "/debug/profile over HTTP for a live runtime",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default 0 = ephemeral; the URL is printed)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--stall-threshold", type=float, default=5.0,
        help="stall-detector threshold used by /metrics and the alert rules",
    )
    parser.add_argument(
        "--events-out", metavar="PATH",
        help="also append every structured event to PATH as NDJSON",
    )
    parser.add_argument(
        "--no-churn", action="store_true",
        help="serve an idle runtime (default: background churn keeps the "
        "windowed metrics moving)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="self-check the endpoint (families present, 200→503 health "
        "flip on replica kill) and exit",
    )
    opts = parser.parse_args(argv)
    if opts.backend == "local":
        parser.error("serve needs a parallel backend (--backend threaded|multiproc)")

    if opts.events_out:
        from repro.obs.events import get_log

        get_log().attach_sink(opts.events_out)
    enable_introspection()
    from repro.obs.tracing import FlightRecorder

    rt = _build_runtime(opts, tracer=FlightRecorder())
    stop = threading.Event()
    try:
        _run_churn(rt, opts.clients, opts.ops)
        server = rt.serve_telemetry(
            opts.port, host=opts.host, stall_threshold=opts.stall_threshold
        )
        print(f"telemetry at {server.url}  (GET /metrics /health /snapshot "
              f"/events /debug/trace /debug/profile)")
        sys.stdout.flush()
        if opts.smoke:
            return _serve_smoke(rt, server.url)

        def churn_forever(client: int) -> None:
            k = 0
            while not stop.is_set():
                rt.out(rt.main_ts, "serve-op", client, k)
                rt.in_(rt.main_ts, "serve-op", client, k)
                k += 1

        if not opts.no_churn:
            for c in range(opts.clients):
                threading.Thread(
                    target=churn_forever, args=(c,),
                    name=f"churn-{c}", daemon=True,
                ).start()
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            return 0
    finally:
        stop.set()
        _shutdown(rt)


def _serve_smoke(rt: Any, base: str) -> int:
    """Assert the endpoint contract against a just-started server."""
    import json
    import urllib.error
    import urllib.request

    def get(path: str) -> tuple[int, bytes]:
        try:
            with urllib.request.urlopen(base + path, timeout=10) as r:
                return r.status, r.read()
        except urllib.error.HTTPError as e:
            return e.code, e.read()

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(("ok  " if ok else "FAIL") + f" {what}")
        if not ok:
            failures.append(what)

    status, body = get("/metrics")
    check(status == 200, "/metrics returns 200")
    for family in (
        "linda_ags_e2e_seconds", "linda_commands_submitted_total",
        "linda_window_latency_seconds", "linda_replica_alive",
        "linda_alert_state",
    ):
        check(family.encode() in body, f"/metrics exposes {family}")
    status, body = get("/health")
    check(
        status == 200 and json.loads(body)["healthy"],
        "/health is 200 before the kill",
    )
    status, body = get("/snapshot")
    check(status == 200, "/snapshot returns 200")
    snap = json.loads(body)
    check("metrics" in snap and "alerts" in snap, "/snapshot carries metrics+alerts")
    status, body = get("/events")
    check(status == 200, "/events returns 200")
    status, _body = get("/debug/trace")
    check(status == 200, "/debug/trace returns 200")

    rt.crash_replica(1)
    status, body = get("/health")
    check(status == 503, "/health flips to 503 on an unrecovered kill")
    check(not json.loads(body)["problems"] == [], "/health names the problem")
    status, body = get("/events")
    kinds = [e["kind"] for e in json.loads(body)["events"]]
    check("replica_dead" in kinds, "/events records the replica death")
    if failures:
        print(f"{len(failures)} telemetry smoke check(s) failed")
        return 1
    print("telemetry smoke passed")
    return 0


def _chaos_main(argv: list[str]) -> int:
    """``python -m repro.cli chaos``: kill a replica under churn, report."""
    import json
    import threading
    import time

    parser = _workload_parser(
        "ftlsh chaos",
        "drive churn on a parallel backend, hard-kill a seeded-random "
        "replica mid-workload, and report detection/recovery latency",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-injection RNG seed"
    )
    parser.add_argument(
        "--warmup", type=float, default=0.3,
        help="seconds of churn before the kill (default: 0.3)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    opts = parser.parse_args(argv)
    if opts.backend == "local":
        parser.error("chaos needs a parallel backend (--backend threaded|multiproc)")
    if opts.replicas < 2:
        parser.error("chaos needs at least 2 replicas")

    from repro.chaos import ChaosMonkey
    from repro.replication import LivenessPolicy

    policy = LivenessPolicy(
        probe_interval=0.05,
        suspect_after=0.3,
        auto_recover=True,
        backoff_initial=0.05,
    )
    if opts.backend == "threaded":
        from repro.parallel import ThreadedReplicaRuntime

        rt: Any = ThreadedReplicaRuntime(
            opts.replicas,
            shards=opts.shards,
            batching=not opts.no_batching,
            detect_failures=policy,
        )
    else:
        from repro.parallel import MultiprocessRuntime

        rt = MultiprocessRuntime(
            opts.replicas,
            shards=opts.shards,
            batching=not opts.no_batching,
            detect_failures=policy,
        )
    # On a sharded runtime the monkey torments one seeded-random shard
    # group; the report names it so reruns with the same seed replay it.
    monkey = ChaosMonkey(
        rt, seed=opts.seed, shard="random" if opts.shards > 1 else None
    )
    stop = threading.Event()
    completed = [0] * opts.clients

    def churn(client: int) -> None:
        k = 0
        while not stop.is_set():
            rt.out(rt.main_ts, "chaos-op", client, k)
            rt.in_(rt.main_ts, "chaos-op", client, k)
            completed[client] += 1
            k += 1

    threads = [
        threading.Thread(target=churn, args=(c,), name=f"chaos-client-{c}")
        for c in range(opts.clients)
    ]
    try:
        for t in threads:
            t.start()
        time.sleep(opts.warmup)
        victim = monkey.rng.randrange(1, opts.replicas)
        monkey.kill_replica(victim)
        t_detect = monkey.wait_detected(victim)
        t_recover = monkey.wait_recovered(victim)
        time.sleep(opts.warmup)  # churn over the healed group
    finally:
        stop.set()
        for t in threads:
            t.join()
    converged = rt.converged()
    snap = rt.metrics_snapshot()
    _shutdown(rt)
    report = {
        "backend": opts.backend,
        "replicas": opts.replicas,
        "shards": opts.shards,
        "shard": monkey.group.name or "shard0",
        "seed": opts.seed,
        "victim": victim,
        "detect_s": round(t_detect, 4),
        "recover_s": round(t_recover, 4),
        "ops_completed": sum(completed),
        "converged": converged,
        "failures_detected": snap["counters"].get("failures_detected", 0),
        "auto_recoveries": snap["counters"].get("auto_recoveries", 0),
    }
    if opts.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"backend={opts.backend} replicas={opts.replicas} seed={opts.seed}"
        )
        where = f" ({monkey.group.name})" if opts.shards > 1 else ""
        print(
            f"SIGKILLed replica {victim}{where}: detected in "
            f"{t_detect * 1e3:.0f}ms, auto-recovered in {t_recover * 1e3:.0f}ms"
        )
        print(
            f"clients completed {sum(completed)} ops through the fault; "
            f"converged={converged}"
        )
    return 0 if converged else 1


def _profile_main(argv: list[str]) -> int:
    """``python -m repro.cli profile``: sample a churn workload, export."""
    import json
    import threading
    import time

    from repro.obs.profile import (
        DEFAULT_HZ,
        role_summary,
        to_collapsed,
        to_speedscope,
    )

    parser = _workload_parser(
        "ftlsh profile",
        "run the continuous sampling profiler over a churn workload and "
        "export the folded stacks (roles: sequencer, replica-N, ...)",
    )
    parser.add_argument(
        "--hz", type=float, default=DEFAULT_HZ,
        help=f"sampling rate (default: {DEFAULT_HZ:g})",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds of churn to sample (default: 2)",
    )
    parser.add_argument(
        "--out",
        default="profile.speedscope.json",
        help="export path (default: profile.speedscope.json)",
    )
    parser.add_argument(
        "--format",
        choices=("speedscope", "collapsed"),
        default="speedscope",
        help="export format (default: speedscope)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="short smoke: sample briefly, fail unless samples landed on "
        "named runtime roles (CI gate)",
    )
    opts = parser.parse_args(argv)
    if opts.backend == "local":
        parser.error("profile needs a parallel backend "
                     "(--backend threaded|multiproc)")
    duration = 0.8 if opts.once else opts.duration

    rt = _build_runtime(opts)
    stop = threading.Event()

    def churn_forever(client: int) -> None:
        k = 0
        while not stop.is_set():
            rt.out(rt.main_ts, "prof-op", client, k)
            rt.rd(rt.main_ts, "prof-op", client, k)
            rt.in_(rt.main_ts, "prof-op", client, k)
            k += 1

    try:
        _run_churn(rt, opts.clients, min(opts.ops, 50))  # absorb startup
        rt.start_profiling(opts.hz)
        threads = [
            threading.Thread(
                target=churn_forever, args=(c,), name=f"client-{c}"
            )
            for c in range(opts.clients)
        ]
        for t in threads:
            t.start()
        time.sleep(duration)
        stop.set()
        for t in threads:
            t.join(timeout=30.0)
        folded = rt.stop_profiling()
    finally:
        stop.set()
        _shutdown(rt)

    total = sum(folded.values())
    print(
        f"backend={opts.backend} hz={opts.hz:g} duration={duration:g}s "
        f"stacks={len(folded)} samples={total}"
    )
    for role, n, share in role_summary(folded):
        print(f"  {share:6.1%}  {n:>7}  {role}")
    if opts.format == "speedscope":
        with open(opts.out, "w") as f:
            json.dump(to_speedscope(folded), f)
    else:
        with open(opts.out, "w") as f:
            f.write(to_collapsed(folded))
    print(f"wrote {opts.out} ({opts.format})")
    named = [
        role
        for role, _n, _s in role_summary(folded)
        if any(tag in role for tag in ("sequencer", "replica-", "read-flusher"))
    ]
    if total == 0 or not named:
        print("SMOKE FAIL: no samples attributed to named runtime roles")
        return 1
    return 0


def _wal_main(argv: list[str]) -> int:
    """``python -m repro.cli wal status|verify``: inspect a durability dir.

    Operates on the segmented WAL layout (:mod:`repro.persist.segments`)
    shared by :class:`~repro.persist.segments.SegmentedWALRuntime` and the
    replica groups' durable journal — purely offline, so it is safe to
    point at a directory whose owner crashed mid-write: torn tails, torn
    snapshots and damaged manifests are reported, never repaired.
    """
    import os

    parser = argparse.ArgumentParser(
        prog="ftlsh wal",
        description="inspect a segmented WAL / durable-journal directory",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    st_p = sub.add_parser("status", help="segment/snapshot layout and sizes")
    st_p.add_argument("dir", help="the WAL directory")
    vf_p = sub.add_parser(
        "verify",
        help="dry-run recovery: replay the directory, report what survives",
    )
    vf_p.add_argument("dir", help="the WAL directory")
    sm_p = sub.add_parser(
        "smoke",
        help="gating recovery smoke: populate a durable group, SIGKILL "
        "the owning process, recover from the journal, require a "
        "fingerprint match",
    )
    sm_p.add_argument(
        "--backend", choices=("threaded", "multiproc"), default="threaded"
    )
    sm_p.add_argument("--replicas", type=int, default=3)
    sm_p.add_argument("--ops", type=int, default=50)
    # internal: run as the victim process against this journal dir
    sm_p.add_argument("--child", metavar="DIR", help=argparse.SUPPRESS)
    opts = parser.parse_args(argv)

    if opts.action == "smoke":
        return _wal_smoke(opts)

    if not os.path.isdir(opts.dir):
        print(f"wal: {opts.dir} is not a directory")
        return 2

    from repro.persist.segments import SegmentedLog, replay_dir

    if opts.action == "status":
        log = SegmentedLog(opts.dir, fsync=False)
        try:
            st = log.status()
        finally:
            log.close()
        for key in (
            "dir", "segments", "segment_bytes", "snapshots",
            "snapshot_bytes", "snapshot_slot", "total_bytes",
        ):
            print(f"{key:>15}: {st[key]}")
        return 0

    # verify: a full offline replay, including applying the delta records
    # to a state machine built from the snapshot — what recovery would do
    res = replay_dir(opts.dir)
    print(f"{'snapshot_slot':>15}: {res.snapshot_slot}")
    print(f"{'delta_records':>15}: {len(res.records)}")
    print(f"{'segments_read':>15}: {res.segments_read}")
    print(f"{'torn_records':>15}: {res.torn_records}")
    print(f"{'torn_bytes':>15}: {res.torn_bytes}")
    print(f"{'torn_snapshots':>15}: {res.torn_snapshots}")
    print(f"{'manifest_ok':>15}: {res.manifest_ok}")
    from repro.core.statemachine import TSStateMachine

    sm = (
        TSStateMachine.from_snapshot(res.snapshot)
        if res.snapshot is not None
        else TSStateMachine()
    )
    applied = 0
    for _slot, cmd in res.records:
        try:
            sm.apply(cmd)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            print(f"{'replay_error':>15}: {type(exc).__name__}: {exc}")
            return 1
        applied += 1
    print(f"{'replayed':>15}: {applied}")
    print(f"{'fingerprint':>15}: {sm.fingerprint()}")
    if res.torn_records or res.torn_snapshots:
        print("verify: recoverable, with torn tail discarded")
    else:
        print("verify: clean")
    return 0


def _wal_smoke(opts) -> int:
    """``cli wal smoke``: the CI recovery gate, end to end.

    Parent spawns a victim process that builds a *durable* replica group,
    journals ``--ops`` commands, prints its fingerprint, and then idles;
    the parent SIGKILLs it — a real ``kill -9``, no flush, no shutdown —
    and rebuilds a group on the same journal directory.  The recovered
    fingerprint must equal the victim's, and the group must accept new
    work.  Exercises exactly the full-group-restart path DESIGN.md
    promises: recovery to the last fsynced slot.
    """
    import os
    import signal
    import subprocess
    import tempfile
    import time

    from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime

    make = (
        ThreadedReplicaRuntime
        if opts.backend == "threaded"
        else MultiprocessRuntime
    )

    if opts.child:  # victim role
        rt = make(opts.replicas, durable_dir=opts.child)
        for i in range(opts.ops):
            rt.out(rt.main_ts, "smoke", i)
        rt.quiesce()
        print(f"FINGERPRINT {rt.fingerprints()[0]}", flush=True)
        print("READY", flush=True)
        time.sleep(600)  # hold the journal open until the parent shoots
        return 0

    with tempfile.TemporaryDirectory(prefix="wal-smoke-") as d:
        # the victim gets its own session so the kill can take out the
        # whole process group — on the multiproc backend the replica
        # processes die with their parent, like the machine they model
        child = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "wal", "smoke",
                "--backend", opts.backend,
                "--replicas", str(opts.replicas),
                "--ops", str(opts.ops),
                "--child", d,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            start_new_session=True,
        )
        expected = None
        try:
            assert child.stdout is not None
            for line in child.stdout:
                if line.startswith("FINGERPRINT "):
                    expected = int(line.split()[1])
                if line.strip() == "READY":
                    break
        finally:
            try:
                os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                if child.poll() is None:
                    os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        if expected is None:
            print("wal smoke: victim died before journaling anything")
            return 1
        print(f"victim journaled {opts.ops} commands, killed -9 "
              f"(rc={child.returncode})")

        rt = make(opts.replicas, durable_dir=d)
        try:
            rt.quiesce()
            got = set(rt.fingerprints())
            replayed = rt.group.journal_replayed
            # the recovered group is live, not just a museum of the past
            rt.out(rt.main_ts, "post", 1)
            alive = rt.in_(rt.main_ts, "post", 1) is not None
        finally:
            rt.shutdown()
        print(f"recovered: replayed={replayed} fingerprints={got}")
        if got != {expected}:
            print(f"wal smoke: FINGERPRINT MISMATCH (expected {expected})")
            return 1
        if not alive:
            print("wal smoke: recovered group refused new work")
            return 1
        print(f"wal smoke: OK ({opts.backend}, {opts.replicas} replicas, "
              f"{opts.ops} ops recovered)")
        return 0


#: The benchmarks `bench run` knows how to drive, in dependency-free order.
BENCHMARKS = (
    "batching", "reads", "sharding", "failover", "tracing", "profile",
    "telemetry", "ablation_recovery",
)


def _benchmarks_dir() -> str:
    import os

    from repro.bench import results_dir

    return os.path.dirname(results_dir())


def _bench_compare_dirs(
    names: list[str], current_dir: str, baseline_dir: str
) -> tuple[int, int, int]:
    """Compare per-benchmark results; return (regressed, missing, new)."""
    import os

    from repro.bench import (
        baseline_path,
        compare,
        load_result,
        render_comparison,
        validate_result,
    )

    n_regressed = n_schema = n_new = 0
    for name in names:
        cur_path = baseline_path(name, current_dir)
        base_path = baseline_path(name, baseline_dir)
        if not os.path.exists(cur_path):
            print(f"BENCH {name}: no current result at {cur_path}")
            n_schema += 1
            continue
        current = load_result(cur_path)
        errors = validate_result(current)
        if errors:
            print(f"BENCH {name}: current result violates schema: {errors}")
            n_schema += 1
            continue
        if not os.path.exists(base_path):
            print(f"BENCH {name}: no committed baseline (new benchmark)")
            n_new += 1
            continue
        rows = compare(current, load_result(base_path))
        print(render_comparison(name, rows))
        print()
        if any(r["verdict"] == "missing" for r in rows):
            n_schema += 1
        if any(r["verdict"] == "regressed" for r in rows):
            n_regressed += 1
    return n_regressed, n_schema, n_new


def _bench_main(argv: list[str]) -> int:
    """``python -m repro.cli bench run|compare``: the perf harness driver."""
    import os
    import subprocess

    from repro.bench import baseline_path, load_result, results_dir, validate_result

    parser = argparse.ArgumentParser(
        prog="ftlsh bench",
        description="run benchmarks under the standardized result schema "
        "and compare runs against committed baselines",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    run_p = sub.add_parser("run", help="run benchmarks, write BENCH_*.json")
    run_p.add_argument(
        "names", nargs="*", default=[],
        help=f"benchmarks to run (default: all of {', '.join(BENCHMARKS)})",
    )
    run_p.add_argument(
        "--quick", action="store_true", help="CI-sized runs (--quick per bench)"
    )
    run_p.add_argument(
        "--out-dir",
        help="directory for the BENCH_*.json results (default: "
        "benchmarks/results/ — i.e. refresh the committed baselines)",
    )
    run_p.add_argument(
        "--compare", action="store_true",
        help="after running, also compare against the committed baselines",
    )
    run_p.add_argument(
        "--allow-regressions", action="store_true",
        help="with --compare: report regressions but exit 0 for them "
        "(schema/run failures still exit 2)",
    )

    cmp_p = sub.add_parser(
        "compare", help="diff a results directory against baselines"
    )
    cmp_p.add_argument(
        "names", nargs="*", default=[],
        help=f"benchmarks to compare (default: all of {', '.join(BENCHMARKS)})",
    )
    cmp_p.add_argument(
        "--current-dir",
        help="directory holding the fresh results (default: benchmarks/results/)",
    )
    cmp_p.add_argument(
        "--baseline-dir",
        help="directory holding the baselines (default: benchmarks/results/)",
    )
    cmp_p.add_argument(
        "--allow-regressions", action="store_true",
        help="report regressions but exit 0 for them "
        "(missing metrics / schema violations still exit 2)",
    )

    opts = parser.parse_args(argv)
    names = list(opts.names) or list(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        parser.error(f"unknown benchmark(s) {unknown}; have {list(BENCHMARKS)}")

    if opts.action == "compare":
        regressed, schema, _new = _bench_compare_dirs(
            names,
            opts.current_dir or results_dir(),
            opts.baseline_dir or results_dir(),
        )
        if schema:
            return 2
        if regressed:
            print(f"{regressed} benchmark(s) regressed")
            return 0 if opts.allow_regressions else 1
        return 0

    # bench run
    out_dir = opts.out_dir or results_dir()
    os.makedirs(out_dir, exist_ok=True)
    bench_dir = _benchmarks_dir()
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    failures = 0
    for name in names:
        script = os.path.join(bench_dir, f"bench_{name}.py")
        out_path = baseline_path(name, out_dir)
        cmd = [sys.executable, script, "--json", out_path]
        if opts.quick:
            cmd.append("--quick")
        print(f"=== bench run {name}: {' '.join(cmd[1:])}")
        proc = subprocess.run(cmd, env=env, cwd=bench_dir)
        if proc.returncode != 0:
            print(f"BENCH {name}: run failed (exit {proc.returncode})")
            failures += 1
            continue
        if not os.path.exists(out_path):
            print(f"BENCH {name}: wrote no result at {out_path}")
            failures += 1
            continue
        errors = validate_result(load_result(out_path))
        if errors:
            print(f"BENCH {name}: result violates schema: {errors}")
            failures += 1
    if failures:
        print(f"{failures} benchmark(s) failed to run or violated the schema")
        return 2
    if opts.compare:
        regressed, schema, _new = _bench_compare_dirs(
            names, out_dir, results_dir()
        )
        if schema:
            return 2
        if regressed:
            print(f"{regressed} benchmark(s) regressed")
            return 0 if opts.allow_regressions else 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "wal":
        return _wal_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="ftlsh", description="interactive FT-Linda shell"
    )
    parser.add_argument("--program", help=".ftl program to load at startup")
    parser.add_argument(
        "--quiet", action="store_true", help="no prompt (for piped scripts)"
    )
    parser.add_argument(
        "--backend",
        choices=("local", "threaded", "multiproc"),
        default="local",
        help="runtime behind the shell (default: local); parallel backends "
        "enable .kill/.recover/.replicas with the failure detector on",
    )
    parser.add_argument(
        "--replicas", type=int, default=3, help="replica count (parallel backends)"
    )
    parser.add_argument(
        "--auto-recover",
        action="store_true",
        help="let the liveness supervisor restart detected-dead replicas",
    )
    opts = parser.parse_args(argv)
    if opts.backend == "local":
        rt: Any = LocalRuntime()
    elif opts.backend == "threaded":
        from repro.parallel import ThreadedReplicaRuntime

        rt = ThreadedReplicaRuntime(
            opts.replicas, detect_failures=True, auto_recover=opts.auto_recover
        )
    else:
        from repro.parallel import MultiprocessRuntime

        rt = MultiprocessRuntime(
            opts.replicas, detect_failures=True, auto_recover=opts.auto_recover
        )
    shell = FtlShell(rt=rt)
    try:
        if opts.program:
            shell.handle(f".load {opts.program}")
        shell.repl(sys.stdin, prompt=not opts.quiet)
    finally:
        _shutdown(rt)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
