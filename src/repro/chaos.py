"""Chaos injection for the parallel backends: break things, on purpose.

The liveness plane's claim — SIGKILLed replicas are detected, poison
commands can't fork the group, internal-thread deaths don't wedge
clients — is only worth making if something routinely tries to falsify
it.  This module is that something: a :class:`ChaosMonkey` bound to a
running parallel runtime, with one method per fault the replication layer
promises to survive:

- :meth:`ChaosMonkey.kill_replica` — the *non-cooperative* crash.  On
  the multiprocess backend this is a literal ``SIGKILL`` of the replica
  process; on the threaded backend the worker thread is halted directly.
  Crucially the replica group is **not told**: only the failure detector
  can notice, which is exactly what these faults exist to exercise
  (``crash_replica`` by contrast is the cooperative path — the group
  does its own bookkeeping because the caller is the one shooting).
- :meth:`ChaosMonkey.poison_command` — submit a :class:`Detonate`, a
  command whose ``apply`` deterministically raises on every replica.
  The apply loop's poison barrier must convert it into a
  :class:`~repro._errors.CommandFailed` for the submitting client while
  every replica stays fingerprint-identical.
- :meth:`ChaosMonkey.delay_replica` — stall one replica's delivery lane
  (an in-band ``SLEEP``), creating lag and false-suspicion pressure
  without killing anything: the detector must NOT fire (the probe still
  passes).
- :meth:`ChaosMonkey.kill_read_flusher` / :meth:`ChaosMonkey.
  kill_sequencer` — feed an internal group thread an item it cannot
  process.  The flusher's death must degrade reads to direct sends; the
  sequencer's death must mark the group failed and wake every waiter.

Faults can be scripted (:meth:`ChaosMonkey.run_script`) or generated
from a seed (:meth:`ChaosMonkey.random_script`) — seeded, so a failing
chaos run reproduces exactly.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Any, Callable, Sequence

from repro._errors import RuntimeFailure
from repro.core.statemachine import Command
from repro.replication.group import CLIENT_ORIGIN, ReplicaGroup
from repro.replication.transport import InMemoryTransport, PickleQueueTransport

__all__ = ["ChaosMonkey", "Detonate"]


class Detonate(Command):
    """A poison command: no state machine knows how to apply it.

    ``TSStateMachine.apply`` raises ``TypeError`` on unknown command
    types — deterministically, on every replica — which makes this the
    minimal reproducible stand-in for any apply-path bug: same slot,
    same exception, everywhere.  The apply loop's poison barrier must
    turn it into a failed completion rather than a dead replica.
    """

    __slots__ = ()


class ChaosMonkey:
    """Scriptable fault injection against one parallel runtime.

    Parameters
    ----------
    runtime:
        A ``ThreadedReplicaRuntime`` or ``MultiprocessRuntime`` (anything
        exposing a ``group`` attribute bound to a ReplicaGroup).
    seed:
        Seeds the private RNG used by :meth:`random_script`; runs with
        the same seed inject the same faults at the same offsets.
    shard:
        Which shard group to torment on a sharded runtime: an int index,
        a name like ``"shard2"``, or ``"random"`` to pick one with the
        seeded RNG (so scripted runs stay reproducible).  ``None`` — the
        default — targets ``runtime.group``, i.e. shard 0, which on an
        unsharded runtime is the whole pipeline.
    """

    def __init__(
        self,
        runtime: Any,
        seed: int | None = None,
        *,
        shard: int | str | None = None,
    ):
        self.runtime = runtime
        self.rng = random.Random(seed)
        self.group: ReplicaGroup = self._resolve_shard(runtime, shard)
        #: Everything injected, in order: (t_offset_s, action, args).
        self.log: list[tuple[float, str, tuple]] = []
        self._t0 = time.monotonic()

    def _note(self, action: str, *args: Any) -> None:
        self.log.append((time.monotonic() - self._t0, action, args))
        # chaos actions share the telemetry plane's event timeline, so a
        # postmortem reads injections and detections in one stream
        from repro.obs.events import emit

        emit("chaos_" + action, severity="warning",
             args=[repr(a) for a in args])

    def _resolve_shard(
        self, runtime: Any, shard: int | str | None
    ) -> ReplicaGroup:
        if shard is None:
            return runtime.group
        groups: list[ReplicaGroup] = getattr(runtime, "shard_groups", None) or [
            runtime.group
        ]
        if shard == "random":
            return groups[self.rng.randrange(len(groups))]
        if isinstance(shard, int):
            return groups[shard]
        for g in groups:
            if g.name == shard:
                return g
        raise ValueError(
            f"no shard group named {shard!r} "
            f"(have: {[g.name or 'shard0' for g in groups]})"
        )

    # ------------------------------------------------------------------ #
    # the faults
    # ------------------------------------------------------------------ #

    def kill_replica(self, replica_id: int) -> None:
        """Hard-kill one replica WITHOUT telling the group.

        Multiprocess: SIGKILL the replica process — the OS-level death
        the paper's fail-silent processors model.  Threaded: halt the
        worker thread directly.  Either way the group's bookkeeping is
        bypassed; only the failure detector (or a client timing out) can
        notice.
        """
        transport = self.group.transport
        if isinstance(transport, PickleQueueTransport):
            proc = transport.processes[replica_id]
            if proc.pid is not None and proc.is_alive():
                os.kill(proc.pid, signal.SIGKILL)
        elif isinstance(transport, InMemoryTransport):
            # halt flag + wakeup, exactly what a thread dying of an
            # unhandled exception looks like from outside; the probe
            # (halted check) now fails while the group still counts the
            # replica as alive
            transport._halted[replica_id].set()
            transport._fifos[replica_id].put(("STOP",))
        else:  # pragma: no cover - future transports
            raise TypeError(
                f"don't know how to kill a replica of {type(transport).__name__}"
            )
        self._note("kill_replica", replica_id)

    def poison_command(self, timeout: float = 30.0) -> Any:
        """Submit a command whose apply raises on every replica.

        Returns the exception the group surfaced (expected:
        :class:`~repro._errors.CommandFailed`); raises if the group
        swallowed the poison silently.
        """
        cmd = Detonate(self.group.next_request_id(), CLIENT_ORIGIN)
        self._note("poison_command", cmd.request_id)
        try:
            result = self.group.call(cmd, timeout)
        except RuntimeFailure as exc:
            return exc
        raise AssertionError(
            f"poison command returned {result!r} instead of failing"
        )

    def delay_replica(self, replica_id: int, seconds: float) -> None:
        """Stall one replica's delivery lane for *seconds* (in-band)."""
        self.group.transport.send(replica_id, ("SLEEP", seconds))
        self._note("delay_replica", replica_id, seconds)

    def kill_read_flusher(self) -> None:
        """Feed the read-flusher thread an item it cannot unpack."""
        self.group._read_pending.append(("BOOM",))  # type: ignore[arg-type]
        self.group._read_kick.set()
        self._note("kill_read_flusher")

    def kill_sequencer(self) -> None:
        """Feed the sequencer thread a batch entry it cannot process.

        After this the group is dead by design: the test of interest is
        that every parked and subsequent call fails fast with
        ``RuntimeFailure`` instead of hanging.
        """
        with self.group._pending_lock:
            self.group._pending.append(("BOOM",))  # type: ignore[arg-type]
        self.group._kick.set()
        self._note("kill_sequencer")

    def kill_donor_mid_transfer(self, at_chunk: int = 1) -> Callable[[], int | None]:
        """Arm a one-shot fault: kill the donor of the NEXT chunked state
        transfer right after it serves chunk *at_chunk*.

        Exercises the resumable-transfer claim: the recovery driver must
        notice the death via the transport probe (it holds the sequencer
        lock, so the failure detector cannot help it), resume the fetch
        from another live donor, and only afterwards declare the victim
        dead.  The kill uses the same non-cooperative path as
        :meth:`kill_replica` — no group bookkeeping runs on this thread,
        which would deadlock against the lock the transfer holds.

        Returns a ``fired()`` callable: the killed donor's id, or None if
        no transfer reached *at_chunk* chunks yet.
        """
        group = self.group
        victim: list[int] = []

        def hook(donor: int, idx: int, total: int) -> None:
            if not victim and idx == at_chunk:
                victim.append(donor)
                group._xfer_chunk_hook = None
                self.kill_replica(donor)
                self._note("kill_donor_mid_transfer", donor, idx, total)

        group._xfer_chunk_hook = hook
        self._note("arm_donor_kill", at_chunk)
        return lambda: victim[0] if victim else None

    # ------------------------------------------------------------------ #
    # scripting
    # ------------------------------------------------------------------ #

    def run_script(
        self, steps: Sequence[tuple[float, str, tuple]], *, on_step: Callable | None = None
    ) -> None:
        """Run ``(delay_s, action, args)`` steps, sleeping between them.

        ``action`` names any fault method above.  Runs on the calling
        thread; wrap in a thread to chaos a live workload.
        """
        from repro.obs.profile import register_thread

        register_thread("chaos")
        for delay, action, args in steps:
            if delay > 0:
                time.sleep(delay)
            getattr(self, action)(*args)
            if on_step is not None:
                on_step(action, args)

    def random_script(
        self,
        n_steps: int,
        *,
        actions: Sequence[str] = ("kill_replica", "delay_replica"),
        max_delay: float = 0.5,
    ) -> list[tuple[float, str, tuple]]:
        """Generate a seeded fault script (deterministic per seed).

        Kills avoid repeating a victim (the group only has so many
        replicas) and never target replica 0, keeping at least one
        survivor as snapshot donor for recovery-enabled runs.
        """
        steps: list[tuple[float, str, tuple]] = []
        killable = list(range(1, self.group.n_replicas))
        for _ in range(n_steps):
            action = self.rng.choice(list(actions))
            delay = self.rng.uniform(0.05, max_delay)
            if action == "kill_replica":
                if not killable:
                    continue
                victim = self.rng.choice(killable)
                killable.remove(victim)
                steps.append((delay, action, (victim,)))
            elif action == "delay_replica":
                victim = self.rng.randrange(self.group.n_replicas)
                steps.append(
                    (delay, action, (victim, self.rng.uniform(0.05, 0.2)))
                )
            else:
                steps.append((delay, action, ()))
        return steps

    # ------------------------------------------------------------------ #
    # observation helpers (used by tests and the failover benchmark)
    # ------------------------------------------------------------------ #

    def wait_detected(self, replica_id: int, timeout: float = 10.0) -> float:
        """Block until the group declares *replica_id* dead; return seconds."""
        t0 = time.monotonic()
        deadline = t0 + timeout
        while self.group.alive[replica_id]:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"replica {replica_id} not declared dead within {timeout}s"
                )
            time.sleep(0.005)
        return time.monotonic() - t0

    def wait_recovered(self, replica_id: int, timeout: float = 30.0) -> float:
        """Block until *replica_id* rejoins the live set; return seconds."""
        t0 = time.monotonic()
        deadline = t0 + timeout
        while not self.group.alive[replica_id]:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"replica {replica_id} not recovered within {timeout}s"
                )
            time.sleep(0.005)
        return time.monotonic() - t0
