"""The HTTP telemetry endpoint: the plane's first network surface.

Everything observable so far — metrics, windows, introspection, stalls,
alerts, events, traces, profiles — is reachable only from inside the
process.  A deployable tuple-space *server* (ROADMAP item 1) needs all
of it scrapable from outside, and this module is that boundary: a
stdlib :class:`~http.server.ThreadingHTTPServer` bound to a runtime,
started with ``rt.serve_telemetry(port=0)`` on either parallel backend
(or ``REPRO_TELEMETRY=<port>`` in the environment, or
``python -m repro.cli serve``).

Routes (all ``GET``):

==============================  ==========================================
``/metrics``                    Prometheus text exposition — introspection
                                gauges + cumulative histograms + windowed
                                quantiles/rates + alert states
``/health``                     readiness: 200 when every replica is live,
                                no shard group has failed, and no critical
                                alert fires; 503 otherwise (JSON body says
                                why) — a load balancer check, not a page
``/snapshot``                   the full observability image as JSON (what
                                ``cli top --url`` renders remotely)
``/events``                     the structured event ring (``?since=SEQ``
                                for incremental drains)
``/debug/trace``                drains the flight recorder as a Chrome
                                trace (``chrome://tracing`` format)
``/debug/profile?seconds=N``    on-demand speedscope capture: starts the
                                sampling profiler, sleeps N (≤30) seconds
                                in the handler thread, returns the profile
==============================  ==========================================

The server holds only a weak contract with the runtime — every surface
is reached via ``getattr`` with a graceful 404 when the backend lacks it
(e.g. no tracer configured, or a runtime without a profiler) — so the
same module serves any current or future runtime unchanged.  Requests
run on daemon threads (``ThreadingHTTPServer``), and the profile route
serializes captures with a lock (409 on overlap) because one sampler
owns the process's thread list.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, is_dataclass
from enum import Enum
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from .envflags import telemetry_port
from .events import get_log
from .inspect import detect_stalls, to_prometheus
from .slo import AlertEngine, default_rules, runtime_context
from .stages import stage_budget

__all__ = [
    "TelemetryServer",
    "jsonable",
    "maybe_serve_from_env",
    "serve_telemetry",
]

#: Upper bound on one /debug/profile capture — the handler thread sleeps
#: for the requested duration, so a runaway value would pin it for hours.
MAX_PROFILE_SECONDS = 30.0


def jsonable(value: Any) -> Any:
    """Coerce observability payloads (dataclasses, enums, tuples) to JSON."""
    if is_dataclass(value) and not isinstance(value, type):
        return jsonable(asdict(value))
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, dict):
        return {
            (k if isinstance(k, str) else repr(k)): jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


class TelemetryServer:
    """One runtime's HTTP observability endpoint (see module docstring)."""

    def __init__(
        self,
        rt: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        alerts: bool = True,
        stall_threshold: float = 5.0,
        alert_rules=None,
    ):
        self.rt = rt
        self.stall_threshold = stall_threshold
        self.engine: AlertEngine | None = None
        if alerts:
            metrics = getattr(rt, "metrics", None)
            self.engine = AlertEngine(
                runtime_context(rt, stall_threshold=stall_threshold),
                alert_rules if alert_rules is not None else default_rules(),
                metrics=metrics,
            )
            self.engine.start()
        self._profile_lock = threading.Lock()
        server = self

        class Handler(BaseHTTPRequestHandler):
            daemon_threads = True

            def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
                pass  # scrapes every second would flood stderr

            def do_GET(self):  # noqa: N802 - stdlib name
                try:
                    server._route(self)
                except BrokenPipeError:
                    pass  # client went away mid-response
                except Exception as exc:  # surface, never kill the thread
                    try:
                        server._send(
                            self, 500, {"error": repr(exc)}, content="json"
                        )
                    except Exception:
                        pass

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self.port = self.httpd.server_address[1]
        self.host = self.httpd.server_address[0]
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name=f"telemetry-http:{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self.engine is not None:
            self.engine.stop()
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5.0)

    # ---------------------------------------------------------------- #
    # routing
    # ---------------------------------------------------------------- #

    def _send(
        self,
        handler: BaseHTTPRequestHandler,
        status: int,
        payload: Any,
        *,
        content: str = "json",
    ) -> None:
        if content == "json":
            body = json.dumps(payload, default=str).encode()
            ctype = "application/json"
        else:
            body = str(payload).encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        handler.send_response(status)
        handler.send_header("Content-Type", ctype)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        parts = urlsplit(handler.path)
        path, query = parts.path.rstrip("/") or "/", parse_qs(parts.query)
        if path == "/metrics":
            self._send(handler, 200, self._metrics_text(), content="text")
        elif path == "/health":
            status, body = self._health()
            self._send(handler, status, body)
        elif path == "/snapshot":
            self._send(handler, 200, self.snapshot())
        elif path == "/events":
            since = int(query.get("since", ["0"])[0] or 0)
            self._send(
                handler, 200, {"events": get_log().events(since=since)}
            )
        elif path == "/debug/trace":
            self._trace(handler)
        elif path == "/debug/profile":
            raw = query.get("seconds", ["2"])[0]
            try:
                seconds = float(raw)
            except ValueError:
                self._send(handler, 400, {"error": f"bad seconds: {raw!r}"})
                return
            self._profile(handler, seconds)
        else:
            self._send(handler, 404, {"error": f"no route {path}"})

    # ---------------------------------------------------------------- #
    # route bodies
    # ---------------------------------------------------------------- #

    def _observe(self) -> "tuple[dict, dict, list, list | None]":
        snap = self.rt.introspection_snapshot()
        metrics = self.rt.metrics_snapshot()
        stalls = detect_stalls(snap, self.stall_threshold)
        alerts = self.engine.snapshot() if self.engine is not None else None
        return snap, metrics, stalls, alerts

    def _metrics_text(self) -> str:
        snap, metrics, stalls, alerts = self._observe()
        return to_prometheus(snap, metrics, stalls, alerts)

    def _health(self) -> "tuple[int, dict[str, Any]]":
        problems: list[str] = []
        groups = getattr(self.rt, "shard_groups", None) or []
        for shard_idx, group in enumerate(groups):
            alive = getattr(group, "alive", None)
            if alive is not None:
                dead = [i for i, up in enumerate(alive) if not up]
                if dead:
                    problems.append(
                        f"shard {shard_idx}: replicas down: {dead}"
                    )
            err = getattr(group, "_group_error", None)
            if err is not None:
                problems.append(f"shard {shard_idx}: failed: {err}")
        if self.engine is not None and self.engine.has_critical():
            problems.append(
                f"critical alerts firing: {', '.join(self.engine.firing())}"
            )
        healthy = not problems
        return (
            200 if healthy else 503,
            {"healthy": healthy, "problems": problems},
        )

    def snapshot(self) -> dict[str, Any]:
        """The full observability image (also what ``/snapshot`` serves)."""
        snap, metrics, stalls, alerts = self._observe()
        return jsonable({
            "backend": snap.get("backend"),
            "introspection": snap,
            "metrics": metrics,
            "stalls": stalls,
            "alerts": alerts,
            "stage_budget": stage_budget(metrics),
            "events_seq": get_log().last_seq,
        })

    def _trace(self, handler: BaseHTTPRequestHandler) -> None:
        tracer = getattr(self.rt, "tracer", None)
        if tracer is None:
            self._send(handler, 404, {"error": "no tracer configured"})
            return
        from .tracing import to_chrome_trace

        self._send(handler, 200, to_chrome_trace(tracer.events()))

    def _profile(
        self, handler: BaseHTTPRequestHandler, seconds: float
    ) -> None:
        start = getattr(self.rt, "start_profiling", None)
        stop = getattr(self.rt, "stop_profiling", None)
        if start is None or stop is None:
            self._send(handler, 404, {"error": "runtime has no profiler"})
            return
        seconds = min(max(seconds, 0.1), MAX_PROFILE_SECONDS)
        if not self._profile_lock.acquire(blocking=False):
            self._send(
                handler, 409, {"error": "a profile capture is in progress"}
            )
            return
        try:
            from .profile import to_speedscope

            start()
            time.sleep(seconds)
            folded = stop()
            self._send(
                handler,
                200,
                to_speedscope(folded, name=f"{seconds:g}s capture"),
            )
        finally:
            self._profile_lock.release()


def serve_telemetry(rt: Any, port: int = 0, **kwargs: Any) -> TelemetryServer:
    """Start a :class:`TelemetryServer` for *rt* (``port=0`` = ephemeral)."""
    return TelemetryServer(rt, port=port, **kwargs)


def maybe_serve_from_env(rt: Any) -> "TelemetryServer | None":
    """Auto-serve when ``REPRO_TELEMETRY=<port>`` is set (else no-op).

    Called by the parallel runtimes at the end of construction so
    benchmarks, chaos runs, and examples grow the endpoint with no code
    changes.  Binding failures are swallowed — an occupied port must not
    take down the runtime the endpoint merely observes.
    """
    port = telemetry_port()
    if port is None:
        return None
    try:
        server = serve_telemetry(rt, port)
    except OSError:
        return None
    # operators need to learn the ephemeral port somewhere; the event
    # log is the plane's own channel for exactly this kind of fact
    get_log().emit("telemetry_started", url=server.url, port=server.port)
    return server
