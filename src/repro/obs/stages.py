"""Stage-level latency attribution: where does a millisecond go?

The metrics layer (PR 1) times three coarse points of the replication
pipeline (submit→order, order→apply, end-to-end).  That answers *how
slow* but not *where*: an AGS's end-to-end time is spent in distinct
stages — waiting in the client submit queue for the sequencer, the
broadcast itself, sitting in a replica's inbox FIFO, the state-machine
apply, and the reply hop that wakes the client — and optimizing the hot
path (ROADMAP item 3) needs the budget decomposed per stage, the way the
LLFT paper (PAPERS.md) decomposes its latency budget.

Attribution is **opt-in** with the same discipline as
``enable_introspection()``: off (the default), the sequencer ships the
classic two-element ``("BATCH", cmds)`` item and replicas emit nothing
extra — zero bytes and zero branches added to the off path beyond one
flag check per *batch*.  On, the sequencer stamps each batch with its
broadcast time, and every replica answers each applied batch with one
small ``("STAGES", …)`` emission carrying its inbox delay, its mean
per-command apply time and its emit stamp — from which the group records
four histogram families:

========================  ==================================================
``stage_broadcast``       transport.broadcast() duration per batch
``stage_replica_queue``   broadcast → the replica dequeues the batch
``stage_apply``           mean state-machine apply time per command (one
                          sample per batch per replica)
``stage_reply``           replica emit → the group's collector receives it
                          (the wake/reply hop)
========================  ==================================================

``submit_to_order`` (which already measures client queue + sequencing)
and ``ags_e2e`` complete the budget.  All stamps are ``time.monotonic``
— system-wide on Linux, so replica-process stamps subtract cleanly from
group-side stamps.

The switch exports ``REPRO_STAGES=1`` so replica processes spawned
afterwards come up stamping too; enable **before** constructing the
runtime (groups and workers read the flag once, at start).

:func:`stage_budget` turns a metrics snapshot into the per-stage budget
table and :func:`render_budget` is the ``repro.cli top`` panel; the
histograms export as ``linda_stage_*_seconds`` Prometheus families
through the existing :func:`repro.obs.inspect.to_prometheus` path.
"""

from __future__ import annotations

from typing import Any, Mapping

from .envflags import EnvFlag

__all__ = [
    "disable_stage_attribution",
    "enable_stage_attribution",
    "render_budget",
    "stage_budget",
    "stages_enabled",
]

_FLAG = EnvFlag("REPRO_STAGES")

#: The pipeline budget, in pipeline order: (display label, histogram name,
#: per_command).  Batch-granularity stages still attribute per command —
#: every command in a batch experiences the whole batch's broadcast and
#: inbox wait, so the batch-level sample IS its per-command estimate.
BUDGET_STAGES: list[tuple[str, str]] = [
    ("client queue + sequence", "submit_to_order"),
    ("broadcast", "stage_broadcast"),
    ("replica inbox", "stage_replica_queue"),
    ("apply", "stage_apply"),
    ("wake/reply", "stage_reply"),
]


def enable_stage_attribution() -> None:
    """Turn on per-stage pipeline timing for runtimes constructed after.

    Exported through the environment so replica processes spawned later
    inherit the setting (the same mechanism as introspection).
    """
    _FLAG.enable()


def disable_stage_attribution() -> None:
    """Revert :func:`enable_stage_attribution` for future runtimes."""
    _FLAG.disable()


def stages_enabled() -> bool:
    """Read once at group/worker start — True in-process or inherited."""
    return _FLAG.enabled()


# ---------------------------------------------------------------------- #
# the budget table
# ---------------------------------------------------------------------- #


def stage_budget(metrics: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Decompose the e2e mean into per-stage rows from a metrics snapshot.

    Returns one row per stage with samples (``n``), ``mean``/``p95``
    seconds and ``share`` — the stage mean as a fraction of the e2e mean
    (the "where does a millisecond go" column).  Stages overlap-free in
    the happy path sum to roughly e2e; what they do not cover (scheduler
    wakeups, dedup, Python overhead) lands in the ``unattributed`` row,
    so the table never silently over- or under-claims.
    """
    hists = metrics.get("histograms", {})
    e2e = hists.get("ags_e2e", {})
    e2e_mean = e2e.get("mean", 0.0)
    rows: list[dict[str, Any]] = []
    attributed = 0.0
    for label, hist_name in BUDGET_STAGES:
        h = hists.get(hist_name, {})
        mean = h.get("mean", 0.0)
        attributed += mean
        rows.append(
            {
                "stage": label,
                "metric": hist_name,
                "n": h.get("count", 0),
                "mean_s": mean,
                "p95_s": h.get("p95", 0.0),
                "share": (mean / e2e_mean) if e2e_mean else 0.0,
            }
        )
    rows.append(
        {
            "stage": "unattributed",
            "metric": None,
            "n": e2e.get("count", 0),
            "mean_s": max(0.0, e2e_mean - attributed),
            "p95_s": 0.0,
            "share": (
                max(0.0, e2e_mean - attributed) / e2e_mean if e2e_mean else 0.0
            ),
        }
    )
    rows.append(
        {
            "stage": "end-to-end",
            "metric": "ags_e2e",
            "n": e2e.get("count", 0),
            "mean_s": e2e_mean,
            "p95_s": e2e.get("p95", 0.0),
            "share": 1.0 if e2e_mean else 0.0,
        }
    )
    return rows


def _fmt_us(seconds: float) -> str:
    if seconds >= 0.1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_budget(metrics: Mapping[str, Any]) -> str:
    """The terminal "WHERE DOES A MILLISECOND GO" panel (pure string).

    Empty string when no stage histogram has samples — callers can
    unconditionally append the panel and get nothing on runtimes where
    attribution is off.
    """
    rows = stage_budget(metrics)
    if not any(r["n"] and r["metric"] and r["metric"].startswith("stage_") for r in rows):
        return ""
    lines = [
        "WHERE DOES A MILLISECOND GO (per-AGS pipeline budget)",
        f"{'STAGE':<24} {'N':>8} {'MEAN':>9} {'P95':>9} {'SHARE':>7}",
    ]
    for r in rows:
        bar = "#" * int(round(20 * min(1.0, r["share"])))
        lines.append(
            f"{r['stage']:<24} {r['n']:>8} {_fmt_us(r['mean_s']):>9} "
            f"{_fmt_us(r['p95_s']):>9} {100 * r['share']:>6.1f}% {bar}"
        )
    return "\n".join(lines)
