"""Declarative SLO alerting: a machine-checkable notion of "healthy".

Dashboards require a human watching; the telemetry plane also needs the
system to *judge itself* — LLFT's premise is that failover is only
trustworthy when health is continuously and automatically assessed.
This module closes that loop over the signals the repo already has:

- :class:`AlertRule` — a named predicate over one evaluation context
  (introspection snapshot + metrics snapshot + stall list).  The check
  returns ``(breached, detail)``; everything else — severity, hysteresis
  thresholds, description — is declarative.

- :class:`AlertEngine` — evaluates a rule set at a low frequency (its
  own daemon thread, or caller-driven via :meth:`evaluate` for tests and
  the ``cli top`` refresh loop).  **Hysteresis** keeps it quiet: a rule
  must breach ``fire_after`` consecutive evaluations to fire and pass
  ``resolve_after`` consecutive clean ones to resolve, so a single noisy
  sample neither pages nor flaps.  Transitions emit ``alert_fired`` /
  ``alert_resolved`` events into :mod:`repro.obs.events` and the count
  of firing rules is kept in an ``alerts_firing`` gauge (exported as
  ``linda_alerts_firing``).

- :func:`default_rules` — the built-in production rule set: replica
  down, stalled waiters, windowed-p99 SLO burn, read-fallback ratio,
  and sequencer/replica backpressure.  All of them read *windowed*
  signals where rates matter — a cumulative counter can never resolve,
  which is exactly why the sliding windows exist.

The engine treats the context as plain data (``Mapping``), so it runs
identically against a live runtime, a remote ``/snapshot`` payload, or
a synthetic fixture in tests.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping

from .events import get_log
from .metrics import MetricsRegistry

__all__ = ["AlertEngine", "AlertRule", "default_rules", "runtime_context"]

Check = Callable[[Mapping[str, Any]], "tuple[bool, str]"]


class AlertRule:
    """One named health predicate with fire/resolve hysteresis settings."""

    __slots__ = ("name", "check", "severity", "fire_after", "resolve_after",
                 "description")

    def __init__(
        self,
        name: str,
        check: Check,
        *,
        severity: str = "warning",
        fire_after: int = 2,
        resolve_after: int = 2,
        description: str = "",
    ):
        if fire_after < 1 or resolve_after < 1:
            raise ValueError("fire_after/resolve_after must be >= 1")
        self.name = name
        self.check = check
        self.severity = severity
        self.fire_after = fire_after
        self.resolve_after = resolve_after
        self.description = description


class _RuleState:
    __slots__ = ("firing", "breaches", "cleans", "detail", "since")

    def __init__(self) -> None:
        self.firing = False
        self.breaches = 0
        self.cleans = 0
        self.detail = ""
        self.since: float | None = None


class AlertEngine:
    """Evaluates alert rules over a context source, with hysteresis.

    *source* is a zero-arg callable returning the evaluation context
    (see :func:`runtime_context`); tests may instead pass a context
    directly to :meth:`evaluate`.  *metrics*, when given, receives the
    ``alerts_firing`` gauge and per-rule state gauges.
    """

    def __init__(
        self,
        source: Callable[[], Mapping[str, Any]] | None = None,
        rules: "list[AlertRule] | None" = None,
        *,
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        events=None,
    ):
        self._source = source
        self.rules: list[AlertRule] = list(rules or [])
        self.interval = interval
        self._clock = clock
        self._metrics = metrics
        self._events = events if events is not None else get_log()
        self._states: dict[str, _RuleState] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ---------------------------------------------------------------- #
    # evaluation
    # ---------------------------------------------------------------- #

    def evaluate(self, ctx: Mapping[str, Any] | None = None) -> list[dict[str, Any]]:
        """Run every rule once against *ctx* (or the engine's source).

        Returns the post-evaluation alert table (see :meth:`snapshot`).
        """
        if ctx is None:
            if self._source is None:
                raise ValueError("no context given and no source configured")
            ctx = self._source()
        now = self._clock()
        transitions: list[tuple[str, AlertRule, str]] = []
        with self._lock:
            for rule in self.rules:
                state = self._states.setdefault(rule.name, _RuleState())
                try:
                    breached, detail = rule.check(ctx)
                except Exception as exc:  # a broken rule must not kill the loop
                    breached, detail = False, f"rule error: {exc!r}"
                if breached:
                    state.breaches += 1
                    state.cleans = 0
                    state.detail = detail
                    if not state.firing and state.breaches >= rule.fire_after:
                        state.firing = True
                        state.since = now
                        transitions.append(("alert_fired", rule, detail))
                else:
                    state.cleans += 1
                    state.breaches = 0
                    if state.firing and state.cleans >= rule.resolve_after:
                        state.firing = False
                        state.since = None
                        transitions.append(("alert_resolved", rule, state.detail))
            firing = sum(1 for s in self._states.values() if s.firing)
        if self._metrics is not None:
            self._metrics.gauge("alerts_firing").set(firing)
        for kind, rule, detail in transitions:
            self._events.emit(
                kind,
                severity=rule.severity if kind == "alert_fired" else "info",
                rule=rule.name,
                detail=detail,
            )
        return self.snapshot()

    def firing(self) -> list[str]:
        """Names of currently firing rules."""
        with self._lock:
            return sorted(n for n, s in self._states.items() if s.firing)

    def has_critical(self) -> bool:
        """True when any firing rule carries critical severity."""
        sev = {r.name: r.severity for r in self.rules}
        with self._lock:
            return any(
                s.firing and sev.get(n) == "critical"
                for n, s in self._states.items()
            )

    def snapshot(self) -> list[dict[str, Any]]:
        """One row per rule: name/severity/firing/detail/firing-for."""
        now = self._clock()
        with self._lock:
            rows = []
            for rule in self.rules:
                state = self._states.get(rule.name) or _RuleState()
                rows.append({
                    "rule": rule.name,
                    "severity": rule.severity,
                    "firing": state.firing,
                    "detail": state.detail if state.firing else "",
                    "for": (now - state.since)
                    if state.firing and state.since is not None else 0.0,
                    "description": rule.description,
                })
            return rows

    # ---------------------------------------------------------------- #
    # background evaluation
    # ---------------------------------------------------------------- #

    def start(self) -> None:
        """Evaluate every ``interval`` seconds on a daemon thread."""
        if self._source is None:
            raise ValueError("cannot start an engine without a source")
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="alert-engine", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        t = self._thread
        if t is not None:
            t.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.evaluate()
            except Exception:
                # the health loop outlives a flaky snapshot source
                continue


# --------------------------------------------------------------------------- #
# built-in rule set
# --------------------------------------------------------------------------- #


def _window_hist(metrics: Mapping[str, Any], name: str, window: str):
    return (
        (metrics.get("windows") or {}).get("histograms", {})
        .get(name, {}).get(window)
    )


def _window_rate_count(metrics: Mapping[str, Any], name: str, window: str) -> int:
    entry = (
        (metrics.get("windows") or {}).get("rates", {})
        .get(name, {}).get(window)
    )
    return entry["count"] if entry else 0


def default_rules(
    *,
    p99_slo_s: float = 0.5,
    window: str = "10s",
    min_samples: int = 20,
    fallback_ratio: float = 0.5,
    backpressure_depth: int = 1000,
) -> list[AlertRule]:
    """The built-in production rule set over the standard context shape.

    Context keys: ``introspection`` (a runtime introspection snapshot),
    ``metrics`` (a registry snapshot, windows included), ``stalls`` (a
    :func:`~repro.obs.inspect.detect_stalls` result).
    """

    def replica_down(ctx: Mapping[str, Any]):
        replicas = (ctx.get("introspection") or {}).get("replicas", [])
        dead = [str(r["id"]) for r in replicas if not r.get("alive")]
        if dead:
            return True, f"replicas down: {', '.join(dead)}"
        return False, ""

    def stall(ctx: Mapping[str, Any]):
        stalls = ctx.get("stalls") or []
        if stalls:
            ids = ", ".join(str(s["request_id"]) for s in stalls[:5])
            return True, f"{len(stalls)} stalled waiter(s): #{ids}"
        return False, ""

    def slo_burn(ctx: Mapping[str, Any]):
        w = _window_hist(ctx.get("metrics") or {}, "ags_e2e", window)
        if not w or w["count"] < min_samples:
            return False, ""
        if w["p99"] > p99_slo_s:
            return True, (
                f"ags_e2e p99[{window}]={w['p99']:.4f}s over "
                f"objective {p99_slo_s:g}s (n={w['count']})"
            )
        return False, ""

    def fallback(ctx: Mapping[str, Any]):
        metrics = ctx.get("metrics") or {}
        fast = _window_rate_count(metrics, "read_fast", window)
        fb = _window_rate_count(metrics, "read_fallback", window)
        total = fast + fb
        if total < min_samples:
            return False, ""
        ratio = fb / total
        if ratio > fallback_ratio:
            return True, (
                f"read fallback ratio[{window}]={ratio:.2f} "
                f"({fb}/{total}) over {fallback_ratio:g}"
            )
        return False, ""

    def backpressure(ctx: Mapping[str, Any]):
        gauges = (ctx.get("metrics") or {}).get("gauges", {})
        deep = {
            name: gauges[name]
            for name in (
                "sequencer_inbox_depth",
                "read_lane_depth",
                "replica_inbox_max_depth",
            )
            if gauges.get(name, 0) > backpressure_depth
        }
        if deep:
            worst = max(deep.items(), key=lambda kv: kv[1])
            return True, (
                f"{worst[0]}={worst[1]:g} over {backpressure_depth} "
                f"({len(deep)} queue(s) deep)"
            )
        return False, ""

    return [
        AlertRule(
            "replica_down", replica_down, severity="critical",
            fire_after=1, resolve_after=1,
            description="one or more replicas are not live",
        ),
        AlertRule(
            "stall", stall, severity="warning",
            fire_after=2, resolve_after=2,
            description="waiters blocked with no matching out traffic",
        ),
        AlertRule(
            "slo_latency_burn", slo_burn, severity="warning",
            fire_after=2, resolve_after=2,
            description=f"windowed ags_e2e p99 over {p99_slo_s:g}s",
        ),
        AlertRule(
            "read_fallback_ratio", fallback, severity="warning",
            fire_after=2, resolve_after=2,
            description="read fast path falling back through the sequencer",
        ),
        AlertRule(
            "backpressure", backpressure, severity="warning",
            fire_after=2, resolve_after=2,
            description="pipeline queue depth over threshold",
        ),
    ]


def runtime_context(rt: Any, *, stall_threshold: float = 5.0) -> Callable[[], dict[str, Any]]:
    """A context source reading a live runtime's observability surfaces."""
    from .inspect import detect_stalls

    def source() -> dict[str, Any]:
        snap = rt.introspection_snapshot()
        return {
            "introspection": snap,
            "metrics": rt.metrics_snapshot(),
            "stalls": detect_stalls(snap, stall_threshold),
        }

    return source
