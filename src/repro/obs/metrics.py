"""Counters and latency histograms shared by every runtime backend.

The replication pipeline is instrumented at three points, with the same
instrument names everywhere so experiments on different backends report
directly comparable numbers:

- ``submit_to_order`` — from a client calling submit to its command being
  assigned a slot in the total order (sequencer wait + batching delay);
- ``order_to_apply`` — from sequencing to the origin replica reporting the
  command's completion (transport transit + state-machine apply);
- ``ags_e2e`` — the whole client-visible latency of one AGS.

Histograms use geometric (log-scale) buckets: latencies span five orders
of magnitude between an in-process apply and a cross-process round trip,
and a log scale keeps relative resolution constant across that span.
Everything is thread-safe; the replica-group collector threads and any
number of client threads record concurrently.

Units: the real-time backends record **seconds**; the simulated cluster
records virtual microseconds divided by 1e6, i.e. virtual seconds — the
same scale, so snapshots render identically.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

from .window import WindowRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_snapshot",
    "merged",
]


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def merge(self, other: "Counter") -> None:
        self.inc(other.value)

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A thread-safe instantaneous value (e.g. currently-live replicas).

    Unlike :class:`Counter` it can go down.  ``merge`` sums — the only
    composition that makes sense when aggregating per-group gauges such as
    live-replica counts into a runtime-wide registry.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def merge(self, other: "Gauge") -> None:
        self.add(other.value)

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Geometric-bucket histogram for latency-like values.

    Bucket *i* covers values up to ``lo * factor**i``; one overflow bucket
    catches everything beyond the last boundary.  Quantiles are resolved
    to a bucket upper bound — exact enough for latency reporting, cheap
    enough for the hot path (one bisect + two adds per record).
    """

    __slots__ = (
        "name", "_bounds", "_buckets", "_count", "_sum", "_min", "_max",
        "_clamped", "_lock",
    )

    def __init__(
        self,
        name: str,
        *,
        lo: float = 1e-6,
        factor: float = 2.0,
        n_buckets: int = 30,
    ):
        self.name = name
        bounds: list[float] = []
        b = lo
        for _ in range(n_buckets):
            bounds.append(b)
            b *= factor
        self._bounds = bounds
        self._buckets = [0] * (n_buckets + 1)  # +1 = overflow
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._clamped = 0
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        # A NaN would poison the running sum forever and a negative value
        # (e.g. from a clock source stepping backwards) would land in the
        # lowest bucket while dragging the sum down.  Clamp both to zero
        # and count them, so the corruption is visible instead of silent.
        clamped = not (value >= 0.0)  # False for NaN too, hence the inversion
        if clamped:
            value = 0.0
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._buckets[idx] += 1
            self._count += 1
            self._sum += value
            if clamped:
                self._clamped += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-th fraction of samples.

        Empty histograms (including ones built purely from empty merges)
        consistently report 0.0, like :attr:`mean` — callers never need a
        ``count()`` guard.
        """
        with self._lock:
            if not self._count:
                return 0.0
            # at least one sample must be at or below the answer: without
            # the floor, q=0 would "satisfy" the first bucket with zero
            # samples seen and report bounds[0] regardless of the data
            target = max(q * self._count, 1.0)
            seen = 0
            for i, n in enumerate(self._buckets):
                seen += n
                if seen >= target:
                    if i < len(self._bounds):
                        return self._bounds[i]
                    return self._max if self._max is not None else 0.0
            return self._max if self._max is not None else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s samples into this histogram (same bucket layout)."""
        if other._bounds != self._bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket layouts "
                f"({self.name!r} vs {other.name!r})"
            )
        with other._lock:
            buckets = list(other._buckets)
            count, total = other._count, other._sum
            omin, omax = other._min, other._max
            oclamped = other._clamped
        with self._lock:
            for i, n in enumerate(buckets):
                self._buckets[i] += n
            self._count += count
            self._sum += total
            self._clamped += oclamped
            if omin is not None and (self._min is None or omin < self._min):
                self._min = omin
            if omax is not None and (self._max is None or omax > self._max):
                self._max = omax

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            count, total = self._count, self._sum
            vmin, vmax = self._min, self._max
            clamped = self._clamped
            buckets = {
                f"le_{self._bounds[i]:g}" if i < len(self._bounds) else "overflow": n
                for i, n in enumerate(self._buckets)
                if n
            }
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": vmin if vmin is not None else 0.0,
            "max": vmax if vmax is not None else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
            "clamped": clamped,
            "buckets": buckets,
        }


class MetricsRegistry:
    """A named collection of instruments, one per runtime or replica group.

    ``counter``/``histogram`` are get-or-create and may be called from any
    thread; repeated calls with the same name return the same instrument
    (creation kwargs only apply on first creation).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Sliding-window companions to the cumulative instruments —
        #: same registry so merges and shard aggregation carry them too.
        self.windows = WindowRegistry()

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str, **kwargs: Any) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name, **kwargs)
            return h

    def merge(self, other: "MetricsRegistry") -> None:
        """Aggregate *other*'s instruments into this registry (per name)."""
        with other._lock:
            counters = list(other._counters.values())
            gauges = list(other._gauges.values())
            histograms = list(other._histograms.values())
        for c in counters:
            self.counter(c.name).merge(c)
        for g in gauges:
            self.gauge(g.name).merge(g)
        for h in histograms:
            mine = self.histogram(
                h.name,
                lo=h._bounds[0],
                factor=h._bounds[1] / h._bounds[0] if len(h._bounds) > 1 else 2.0,
                n_buckets=len(h._bounds),
            )
            mine.merge(h)
        self.windows.merge(other.windows)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data image of every instrument (what tests/CLI consume)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.snapshot() for n, c in sorted(counters.items())},
            "gauges": {n: g.snapshot() for n, g in sorted(gauges.items())},
            "histograms": {n: h.snapshot() for n, h in sorted(histograms.items())},
            "windows": self.windows.snapshot(),
        }


def merged(registries: "list[MetricsRegistry]") -> "MetricsRegistry":
    """A fresh registry aggregating *registries* instrument-by-instrument.

    The sharded runtimes keep one registry per shard group (so per-shard
    skew stays observable) and merge on demand for the runtime-wide
    snapshot the contract tests and the CLI consume.  Counters and
    histogram samples sum; gauges sum too (``live_replicas`` across
    shards is total live replicas).
    """
    out = MetricsRegistry()
    for reg in registries:
        out.merge(reg)
    return out


def format_snapshot(snap: dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` for terminals."""
    lines: list[str] = []
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<24} {value}")
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name:<24} {value:g}")
    if histograms:
        lines.append("histograms:")
        for name, h in histograms.items():
            if not h["count"]:
                lines.append(f"  {name:<24} (empty)")
                continue
            lines.append(
                f"  {name:<24} n={h['count']} mean={h['mean']:.6f} "
                f"p50={h['p50']:.6f} p95={h['p95']:.6f} p99={h['p99']:.6f} "
                f"p999={h.get('p999', h['p99']):.6f} max={h['max']:.6f}"
            )
    windows = snap.get("windows") or {}
    whists = windows.get("histograms", {})
    if whists:
        lines.append("windows:")
        for name, per_window in whists.items():
            for label, w in per_window.items():
                if not w["count"]:
                    continue
                lines.append(
                    f"  {name + '[' + label + ']':<24} n={w['count']} "
                    f"rate={w['rate']:.1f}/s p50={w['p50']:.6f} "
                    f"p99={w['p99']:.6f} p999={w['p999']:.6f}"
                )
    return "\n".join(lines) if lines else "(no metrics recorded)"
