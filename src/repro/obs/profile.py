"""Continuous profiling: a low-overhead sampling profiler with role names.

ROADMAP item 3 asks for a *profile-driven* attack on the ordered hot
path, but the runtime had no profiler: we knew multiproc reads run ~5x
slower than threaded (BENCH_reads.json) without knowing where the time
goes.  This module is the missing instrument:

- :func:`register_thread` — the runtime's hot threads (sequencer, replica
  apply loops, read flusher, liveness monitor, chaos injectors) announce
  themselves under **stable role names** at thread start.  Registration
  is one dict store per thread lifetime — nothing on any per-operation
  path — so the profiler's off-path cost is structurally zero, the same
  discipline as ``enable_introspection()``;

- :class:`SamplingProfiler` — a sampler thread walking
  ``sys._current_frames()`` at a configurable rate and folding each
  thread's stack under its role (``role;outer;...;leaf``).  Sampling is
  wait-free for the sampled threads (the interpreter snapshots frames;
  nobody stops); cost scales with the sampling rate, not the workload,
  and the default ~97 Hz keeps it under a few percent (measured in
  ``benchmarks/bench_profile.py``);

- **cross-process profiling** — each replica OS process runs its own
  per-process sampler, started and stopped through the group's in-band
  query lane; its folded stacks ride back over the existing transport
  and are merged under the replica's role.  The emissions travel the
  same incarnation-fenced feedback path as completions, so a replica
  killed mid-sampling can neither wedge the stop nor pollute the merged
  profile with stale stacks — the group simply keeps what the survivors
  report;

- **exporters** — :func:`to_collapsed` (Brendan Gregg's folded-stack
  format, pipe into ``flamegraph.pl``) and :func:`to_speedscope` (load
  the JSON at https://www.speedscope.app or in ``speedscope`` locally).

The clock, frame source, and thread enumerator are injectable so tests
drive the sampler deterministically without timing assumptions.

Usage::

    rt = MultiprocessRuntime(3)
    rt.start_profiling(hz=97)
    ... run the workload ...
    folded = rt.stop_profiling()
    open("prof.folded", "w").write(to_collapsed(folded))
    json.dump(to_speedscope(folded), open("prof.speedscope.json", "w"))
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "DEFAULT_HZ",
    "SamplingProfiler",
    "merge_folded",
    "register_thread",
    "registered_roles",
    "thread_role",
    "to_collapsed",
    "to_speedscope",
]

#: Default sampling rate.  A prime, so the sampler cannot phase-lock with
#: periodic runtime activity (batch ticks, liveness probes) and
#: systematically over- or under-sample it.
DEFAULT_HZ = 97.0

#: Thread ident -> stable role name.  Written once per thread lifetime by
#: :func:`register_thread`; read only by the sampler thread.  Plain dict
#: ops are atomic under the GIL, so the hot threads pay no lock.
_roles: dict[int, str] = {}


def register_thread(role: str, ident: int | None = None) -> None:
    """Register the calling thread (or *ident*) under a stable role name.

    Called once at the top of each runtime thread's loop ("sequencer",
    "replica-2", "read-flusher", "liveness-monitor", "chaos").  Idents of
    dead threads may be reused by the OS; re-registration simply
    overwrites, which is the behaviour a reincarnated replica slot wants.
    """
    _roles[threading.get_ident() if ident is None else ident] = role


def thread_role(ident: int, fallback: str = "") -> str:
    """The registered role of a thread ident, or *fallback*."""
    return _roles.get(ident, fallback)


def registered_roles() -> dict[int, str]:
    """A copy of the live ident -> role map (tests, diagnostics)."""
    return dict(_roles)


def _frame_label(frame: Any) -> str:
    """One stack entry: ``module:function`` (short, stable across runs)."""
    code = frame.f_code
    mod = frame.f_globals.get("__name__", "?")
    return f"{mod}:{code.co_name}"


def _fold_stack(role: str, frame: Any, limit: int = 64) -> str:
    """Fold one thread's stack, outermost first, rooted at its role."""
    labels: list[str] = []
    while frame is not None and len(labels) < limit:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.append(role)
    labels.reverse()
    return ";".join(labels)


def merge_folded(*folded: Mapping[str, int]) -> dict[str, int]:
    """Sum any number of folded-stack maps (cross-process merge)."""
    out: dict[str, int] = {}
    for f in folded:
        for stack, n in f.items():
            out[stack] = out.get(stack, 0) + n
    return out


class SamplingProfiler:
    """A sampler thread folding ``sys._current_frames()`` at *hz*.

    ``start``/``stop`` are idempotent; ``stop`` returns the folded-stack
    map accumulated so far (and keeps it, so late :meth:`ingest` calls
    from replica processes still merge in).  The sampler thread excludes
    itself from its own samples.

    *clock*, *frames*, and *threads* are injectable for deterministic
    tests: *frames* must mimic ``sys._current_frames`` (ident -> frame),
    *threads* must yield objects with ``ident``/``name`` attributes.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        *,
        frames: Callable[[], Mapping[int, Any]] | None = None,
        threads: Callable[[], Iterable[Any]] | None = None,
    ):
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hz = hz
        self.interval = 1.0 / hz
        self._frames = frames if frames is not None else sys._current_frames
        self._threads = threads if threads is not None else threading.enumerate
        self._folded: dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def sample_once(self, skip_ident: int | None = None) -> int:
        """Take one sample of every thread; return threads sampled.

        Threads without a registered role fall back to their ``Thread``
        name, so client threads still show up (as "client-3",
        "MainThread", ...) without any registration burden on user code.
        """
        names = {t.ident: t.name for t in self._threads()}
        folded: list[str] = []
        for ident, frame in self._frames().items():
            if ident == skip_ident:
                continue
            role = _roles.get(ident) or names.get(ident) or f"thread-{ident}"
            folded.append(_fold_stack(role, frame))
        with self._lock:
            for stack in folded:
                self._folded[stack] = self._folded.get(stack, 0) + 1
            self._samples += 1
        return len(folded)

    def _run(self) -> None:
        me = threading.get_ident()
        register_thread("profile-sampler")
        while not self._stop.wait(self.interval):
            self.sample_once(skip_ident=me)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        t = self._thread
        return t is not None and t.is_alive()

    @property
    def samples(self) -> int:
        return self._samples

    def start(self) -> "SamplingProfiler":
        """Begin sampling.  A second start on a running profiler is a no-op."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="profile-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict[str, int]:
        """Stop sampling and return the folded stacks (idempotent)."""
        self._stop.set()
        t = self._thread
        if t is not None:
            t.join(timeout=5.0)
            self._thread = None
        return self.folded()

    def ingest(self, folded: Mapping[str, int]) -> None:
        """Merge another sampler's folded stacks (replica processes)."""
        with self._lock:
            for stack, n in folded.items():
                self._folded[stack] = self._folded.get(stack, 0) + n

    def folded(self) -> dict[str, int]:
        with self._lock:
            return dict(self._folded)


# ---------------------------------------------------------------------- #
# per-process sampler (replica OS processes)
# ---------------------------------------------------------------------- #

#: The replica process's own sampler, keyed so repeated profile_start
#: queries (one per replica thread on a future multi-worker process) can
#: share one instance.  Only touched by the in-band query handlers.
_process_sampler: SamplingProfiler | None = None


def process_profile_start(hz: float = DEFAULT_HZ) -> str:
    """Start (or keep) this process's sampler — the profile_start query."""
    global _process_sampler
    if _process_sampler is None or not _process_sampler.running:
        _process_sampler = SamplingProfiler(hz=hz)
        _process_sampler.start()
    return "profiling"


def process_profile_stop() -> dict[str, int]:
    """Stop this process's sampler, return folded — the profile_stop query."""
    global _process_sampler
    sampler = _process_sampler
    _process_sampler = None
    if sampler is None:
        return {}
    return sampler.stop()


# ---------------------------------------------------------------------- #
# aggregation + exporters
# ---------------------------------------------------------------------- #


def role_summary(folded: Mapping[str, int]) -> list[tuple[str, int, float]]:
    """Per-role sample totals: ``[(role, samples, share), ...]``, hottest first."""
    per_role: dict[str, int] = {}
    for stack, n in folded.items():
        role = stack.split(";", 1)[0]
        per_role[role] = per_role.get(role, 0) + n
    total = sum(per_role.values()) or 1
    return sorted(
        ((role, n, n / total) for role, n in per_role.items()),
        key=lambda row: -row[1],
    )


def to_collapsed(folded: Mapping[str, int]) -> str:
    """Folded stacks in the classic collapsed-flamegraph text format.

    One ``stack count`` line per distinct stack — the exact input
    ``flamegraph.pl`` and most flame-graph tooling consume.
    """
    return "\n".join(
        f"{stack} {n}" for stack, n in sorted(folded.items())
    ) + ("\n" if folded else "")


def to_speedscope(
    folded: Mapping[str, int], name: str = "repro profile"
) -> dict[str, Any]:
    """Folded stacks as a speedscope "sampled" profile (JSON-dumpable).

    Weights are sample counts (unit "none"): wall-clock attribution at a
    fixed rate, which is what a sampling profiler honestly knows.
    """
    frame_index: dict[str, int] = {}
    frames: list[dict[str, str]] = []

    def frame_id(label: str) -> int:
        idx = frame_index.get(label)
        if idx is None:
            idx = frame_index[label] = len(frames)
            frames.append({"name": label})
        return idx

    samples: list[list[int]] = []
    weights: list[int] = []
    for stack, n in sorted(folded.items()):
        samples.append([frame_id(label) for label in stack.split(";")])
        weights.append(n)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro.obs.profile",
    }
