"""Live tuple-space introspection: "why is it stuck, where is it hot".

Metrics (PR 1) aggregate latencies; traces (PR 2) replay events after the
fact.  Neither answers the operator's *state* questions: which templates
are hot, which processes sit blocked on which anti-tuples, whether a
replica lags, why a bag-of-tasks run has silently wedged.  Buravlev et
al. (PAPERS.md) show match-path contention and data distribution dominate
tuple-space performance, and De Florio's fault-tolerance work argues the
key runtime recovery signal is a *stalled guard* — both are state, not
event, observations.  This module is that layer:

- :func:`enable_introspection` — one process-wide switch.  Off (default)
  the match path pays a single ``is not None`` branch and the apply path
  one module-attribute check; on, every :class:`~repro.core.matching.
  TupleStore` counts match attempts/hits per canonical template and every
  :class:`~repro.core.statemachine.TSStateMachine` stamps deposit traffic
  for the stall detector.  The switch exports ``REPRO_INTROSPECT=1`` so
  replica processes spawned afterwards come up instrumented too;

- **snapshots** — every runtime exposes ``introspection_snapshot()``
  returning one uniform plain-data shape (see :func:`empty_snapshot`),
  assembled from ``TSStateMachine.introspection()`` images that ride the
  existing in-band query path on the replicated backends — so a snapshot
  reflects the exact state after everything sequenced before it;

- :func:`detect_stalls` — flags waiters blocked beyond a threshold with
  no recent matching ``out`` traffic on their templates ("suspected
  deadlock/starvation"); a blocked waiter whose template IS being fed is
  contention, not a stall, and is not flagged;

- :func:`to_prometheus` — the merged snapshot (plus the runtime's metrics
  registry) in the Prometheus text exposition format;

- :func:`render_top` — the terminal dashboard behind
  ``python -m repro.cli top``.

Ages, not absolute stamps: every snapshot reports ``blocked_for`` and
``last_out_age`` in seconds relative to the producing machine's clock, so
images from replica OS processes and the virtual-time simulator compare
without clock-domain conversions.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core import matching as _matching

from .envflags import EnvFlag

__all__ = [
    "detect_stalls",
    "disable_introspection",
    "empty_snapshot",
    "enable_introspection",
    "introspection_enabled",
    "render_top",
    "to_prometheus",
]

_FLAG = EnvFlag("REPRO_INTROSPECT")


def enable_introspection() -> None:
    """Turn on per-template match stats and out-traffic stamps.

    Takes effect for tuple stores and state machines created *after* the
    call — enable before constructing the runtime.  Exported through the
    environment so replica processes spawned later inherit the setting.
    """
    _matching.STATS_ENABLED = True
    _FLAG.enable()


def disable_introspection() -> None:
    """Revert :func:`enable_introspection` (existing stores keep counting)."""
    _matching.STATS_ENABLED = False
    _FLAG.disable()


def introspection_enabled() -> bool:
    return _matching.STATS_ENABLED


def empty_snapshot(backend: str) -> dict[str, Any]:
    """The uniform introspection-snapshot shape every backend fills in."""
    return {
        "backend": backend,
        "sm": {"applied": 0, "waiters": [], "spaces": [], "last_out_age": {}},
        "replicas": [],
        "pending": 0,
        "wal_bytes": None,
    }


# --------------------------------------------------------------------------- #
# stall detection
# --------------------------------------------------------------------------- #


def _key_matches(
    waiter_key: tuple[Any, ...], out_key: tuple[Any, ...]
) -> bool:
    """Does a waiter's (space, first, arity) key match a deposit's?

    The waiter side may carry wildcards: ``None`` for a space handle only
    known at execution time, ``"*"`` for a non-constant first field.
    """
    w_ts, w_first, w_arity = waiter_key
    o_ts, o_first, o_arity = out_key
    if w_arity != o_arity:
        return False
    if w_ts is not None and w_ts != o_ts:
        return False
    return w_first == "*" or w_first == o_first


def detect_stalls(
    snapshot: Mapping[str, Any], threshold: float
) -> list[dict[str, Any]]:
    """Waiters blocked ≥ *threshold* s with no recent matching deposits.

    A waiter is **stalled** when every template it is parked on has seen
    no matching ``out``/``move``/``copy`` deposit within the last
    *threshold* seconds — nobody is feeding it, so it will not wake
    without intervention (suspected deadlock or starvation, De Florio's
    recovery trigger).  Requires introspection to have been enabled while
    the traffic happened; with stats off, ``last_out_age`` is empty and
    any waiter past the threshold is flagged (conservative).
    """
    sm = snapshot.get("sm", {})
    last_out = {
        tuple(k): age for k, age in sm.get("last_out_age", {}).items()
    }
    stalls: list[dict[str, Any]] = []
    for w in sm.get("waiters", []):
        if w["blocked_for"] < threshold:
            continue
        fed = False
        for entry in w.get("waiting_on", []):
            key = tuple(entry["key"])
            for out_key, age in last_out.items():
                if age <= threshold and _key_matches(key, out_key):
                    fed = True
                    break
            if fed:
                break
        if not fed:
            templates = [
                f"{e['op']} {e['space']} {e['template']}"
                for e in w.get("waiting_on", [])
            ]
            stalls.append(
                {
                    **{k: w[k] for k in (
                        "request_id", "origin_host", "process_id", "blocked_for"
                    )},
                    "templates": templates,
                    "reason": (
                        "suspected deadlock/starvation: blocked "
                        f"{w['blocked_for']:.2f}s with no matching out "
                        f"traffic in the last {threshold:g}s"
                    ),
                }
            )
    return stalls


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(**labels: Any) -> str:
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels.items())
    return f"{{{inner}}}"


def _histogram_lines(name: str, snap: Mapping[str, Any]) -> list[str]:
    """One metrics-layer histogram as a Prometheus histogram family."""
    base = f"linda_{name}_seconds"
    lines = [
        f"# HELP {base} {name} latency histogram",
        f"# TYPE {base} histogram",
    ]
    bounds: list[tuple[float, int]] = []
    overflow = 0
    for bucket, n in snap.get("buckets", {}).items():
        if bucket == "overflow":
            overflow = n
        else:
            bounds.append((float(bucket[len("le_"):]), n))
    bounds.sort()
    cum = 0
    for le, n in bounds:
        cum += n
        lines.append(f'{base}_bucket{{le="{le:g}"}} {cum}')
    lines.append(f'{base}_bucket{{le="+Inf"}} {cum + overflow}')
    lines.append(f"{base}_sum {snap.get('sum', 0.0):.9g}")
    lines.append(f"{base}_count {snap.get('count', 0)}")
    # resolved quantiles as a companion gauge family — a Prometheus
    # histogram type carries no quantile samples, and scrapers without
    # histogram_quantile() (and humans with curl) want the numbers direct
    quantiles = [
        (q, snap.get(key))
        for q, key in (
            ("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"), ("0.999", "p999")
        )
        if snap.get(key) is not None
    ]
    if quantiles:
        lines.append(f"# HELP {base}_quantile resolved {name} quantiles")
        lines.append(f"# TYPE {base}_quantile gauge")
        for q, value in quantiles:
            lines.append(f'{base}_quantile{{quantile="{q}"}} {value:.9g}')
    return lines


def _window_lines(windows: Mapping[str, Any]) -> list[str]:
    """Sliding-window quantiles and rates as labelled gauge families."""
    lines: list[str] = []
    whists = windows.get("histograms", {})
    if whists:
        lines.append(
            "# HELP linda_window_latency_seconds "
            "windowed latency quantiles (trailing windows)"
        )
        lines.append("# TYPE linda_window_latency_seconds gauge")
        for name, per_window in whists.items():
            for label, w in per_window.items():
                for q, key in (
                    ("0.5", "p50"), ("0.99", "p99"), ("0.999", "p999")
                ):
                    lines.append(
                        f"linda_window_latency_seconds"
                        f"{_labels(metric=name, window=label, quantile=q)} "
                        f"{w[key]:.9g}"
                    )
    rate_sources: list[tuple[str, str, float]] = []
    for name, per_window in whists.items():
        for label, w in per_window.items():
            rate_sources.append((name, label, w["rate"]))
    for name, per_window in windows.get("rates", {}).items():
        for label, w in per_window.items():
            rate_sources.append((name, label, w["rate"]))
    if rate_sources:
        lines.append(
            "# HELP linda_window_rate per-second op rate (trailing windows)"
        )
        lines.append("# TYPE linda_window_rate gauge")
        for name, label, rate in rate_sources:
            lines.append(
                f"linda_window_rate{_labels(metric=name, window=label)} "
                f"{rate:.9g}"
            )
    return lines


def to_prometheus(
    snapshot: Mapping[str, Any],
    metrics: Mapping[str, Any] | None = None,
    stalls: list[dict[str, Any]] | None = None,
    alerts: list[dict[str, Any]] | None = None,
) -> str:
    """Render an introspection snapshot in Prometheus text format.

    *metrics* is an optional :meth:`~repro.obs.metrics.MetricsRegistry.
    snapshot` merged in as counter/histogram families; *stalls* an
    optional :func:`detect_stalls` result exported as a gauge; *alerts*
    an optional :meth:`~repro.obs.slo.AlertEngine.snapshot` exported as
    per-rule state gauges plus the firing total.
    """
    sm = snapshot.get("sm", {})
    lines: list[str] = []

    def family(name: str, mtype: str, help_: str) -> None:
        lines.append(f"# HELP linda_{name} {help_}")
        lines.append(f"# TYPE linda_{name} {mtype}")

    family("space_tuples", "gauge", "live tuples per space")
    for sp in sm.get("spaces", []):
        label = _labels(space=f"{sp['name']}#{sp['id']}")
        lines.append(f"linda_space_tuples{label} {sp['tuples']}")
    family("space_bytes", "gauge", "approximate bytes of tuple data per space")
    for sp in sm.get("spaces", []):
        label = _labels(space=f"{sp['name']}#{sp['id']}")
        lines.append(f"linda_space_bytes{label} {sp['bytes']}")
    family("space_bucket_skew", "gauge",
           "max/mean signature-bucket occupancy (1.0 = balanced)")
    for sp in sm.get("spaces", []):
        label = _labels(space=f"{sp['name']}#{sp['id']}")
        lines.append(f"linda_space_bucket_skew{label} {sp['skew']:.6g}")

    family("template_match_attempts_total", "counter",
           "match attempts per canonical template")
    family_hits = []
    for sp in sm.get("spaces", []):
        space = f"{sp['name']}#{sp['id']}"
        for t in sp.get("templates", []):
            label = _labels(space=space, template=t["template"])
            lines.append(
                f"linda_template_match_attempts_total{label} {t['attempts']}"
            )
            family_hits.append(
                f"linda_template_match_hits_total{label} {t['hits']}"
            )
    family("template_match_hits_total", "counter",
           "successful matches per canonical template")
    lines.extend(family_hits)

    waiters = sm.get("waiters", [])
    family("waiters", "gauge", "statements parked on a blocking guard")
    lines.append(f"linda_waiters {len(waiters)}")
    family("waiter_blocked_seconds", "gauge", "age of each parked statement")
    for w in waiters:
        templates = ";".join(
            e["template"] for e in w.get("waiting_on", [])
        ) or "?"
        label = _labels(
            request_id=w["request_id"],
            process=w["process_id"],
            template=templates,
        )
        lines.append(
            f"linda_waiter_blocked_seconds{label} {w['blocked_for']:.6f}"
        )
    if stalls is not None:
        family("stalled_waiters", "gauge",
               "waiters flagged by the stall detector")
        lines.append(f"linda_stalled_waiters {len(stalls)}")

    replicas = snapshot.get("replicas", [])

    def replica_labels(r: Mapping[str, Any]) -> str:
        # sharded snapshots tag each replica row with its shard group, so
        # the same replica index in different shards stays distinguishable
        if "shard" in r:
            return _labels(replica=r["id"], shard=r["shard"])
        return _labels(replica=r["id"])

    family("replica_alive", "gauge", "1 when the replica is live")
    for r in replicas:
        lines.append(
            f"linda_replica_alive{replica_labels(r)} "
            f"{1 if r.get('alive') else 0}"
        )
    family("replica_applied_total", "counter", "commands applied per replica")
    for r in replicas:
        if r.get("applied") is not None:
            lines.append(
                f"linda_replica_applied_total{replica_labels(r)} "
                f"{r['applied']}"
            )
    family("replica_lag", "gauge",
           "commands behind the most advanced live replica")
    for r in replicas:
        if r.get("lag") is not None:
            lines.append(
                f"linda_replica_lag{replica_labels(r)} {r['lag']}"
            )

    shard_rows = snapshot.get("shards", [])
    if shard_rows:
        family("shard_tuples", "gauge", "live tuples held per shard group")
        for s in shard_rows:
            lines.append(
                f"linda_shard_tuples{_labels(shard=s['shard'])} {s['tuples']}"
            )
        family("shard_applied_total", "counter",
               "commands applied per shard group (max over its replicas)")
        for s in shard_rows:
            lines.append(
                f"linda_shard_applied_total{_labels(shard=s['shard'])} "
                f"{s['applied']}"
            )
        family("shard_skew", "gauge",
               "shard tuples over mean shard tuples (1.0 = balanced)")
        for s in shard_rows:
            lines.append(
                f"linda_shard_skew{_labels(shard=s['shard'])} {s['skew']:.6g}"
            )

    family("pending_commands", "gauge", "submissions queued at the sequencer")
    lines.append(f"linda_pending_commands {snapshot.get('pending', 0)}")
    if snapshot.get("wal_bytes") is not None:
        family("wal_bytes", "gauge", "write-ahead log size on disk")
        lines.append(f"linda_wal_bytes {snapshot['wal_bytes']}")

    if metrics:
        for name, value in metrics.get("counters", {}).items():
            family(f"{name}_total", "counter", f"{name} counter")
            lines.append(f"linda_{name}_total {value}")
        for name, value in metrics.get("gauges", {}).items():
            family(name, "gauge", f"{name} gauge")
            lines.append(f"linda_{name} {value:g}")
        for name, h in metrics.get("histograms", {}).items():
            # stage histograms export as linda_stage_*_seconds — the
            # Prometheus side of the per-AGS pipeline budget
            lines.extend(_histogram_lines(name, h))
        windows = metrics.get("windows")
        if windows:
            lines.extend(_window_lines(windows))

    if alerts is not None:
        firing = [a for a in alerts if a.get("firing")]
        # only synthesize the total when the engine's own gauge is not
        # already in the metrics snapshot (avoid a duplicate family)
        if not (metrics and "alerts_firing" in metrics.get("gauges", {})):
            family("alerts_firing", "gauge", "alert rules currently firing")
            lines.append(f"linda_alerts_firing {len(firing)}")
        family("alert_state", "gauge", "1 when the alert rule is firing")
        for a in alerts:
            label = _labels(rule=a["rule"], severity=a["severity"])
            lines.append(
                f"linda_alert_state{label} {1 if a.get('firing') else 0}"
            )
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# the `linda top` terminal dashboard
# --------------------------------------------------------------------------- #


def _fmt_bytes(n: int | None) -> str:
    if n is None:
        return "-"
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GB"  # pragma: no cover - unreachable


def _fmt_age(seconds: float) -> str:
    if seconds < 10:
        return f"{seconds:.2f}s"
    if seconds < 120:
        return f"{seconds:.0f}s"
    return f"{seconds / 60:.1f}m"


def render_top(
    snapshot: Mapping[str, Any],
    metrics: Mapping[str, Any] | None = None,
    stalls: list[dict[str, Any]] | None = None,
    alerts: list[dict[str, Any]] | None = None,
    *,
    max_rows: int = 10,
) -> str:
    """Render one dashboard frame (pure string; the CLI owns the refresh)."""
    sm = snapshot.get("sm", {})
    waiters = sm.get("waiters", [])
    stalled_ids = {s["request_id"] for s in (stalls or [])}
    firing = [a for a in (alerts or []) if a.get("firing")]
    lines: list[str] = []
    head = (
        f"linda top — backend={snapshot.get('backend', '?')}  "
        f"applied={sm.get('applied', 0)}  "
        f"pending={snapshot.get('pending', 0)}  "
        f"waiters={len(waiters)}  stalled={len(stalled_ids)}"
    )
    if snapshot.get("wal_bytes") is not None:
        head += f"  wal={_fmt_bytes(snapshot['wal_bytes'])}"
    if alerts is not None:
        head += f"  alerts={len(firing)}"
    lines.append(head)

    if firing:
        lines.append("")
        lines.append(f"{'ALERT':<22} {'SEV':<9} {'FOR':>8}  DETAIL")
        for a in firing[:max_rows]:
            lines.append(
                f"{a['rule']:<22} {a['severity']:<9} "
                f"{_fmt_age(a.get('for', 0.0)):>8}  {a.get('detail', '')}"
            )

    shard_rows = snapshot.get("shards", [])
    if shard_rows:
        lines.append("")
        lines.append(
            f"{'SHARD':<8} {'LIVE':>6} {'APPLIED':>9} {'PENDING':>8} "
            f"{'TUPLES':>8} {'WAITERS':>8} {'SKEW':>6}"
        )
        for s in shard_rows:
            lines.append(
                f"{s['shard']:<8} {s['live']}/{s['replicas']:<4} "
                f"{s['applied']:>9} {s['pending']:>8} {s['tuples']:>8} "
                f"{s['waiters']:>8} {s['skew']:>6.2f}"
            )

    replicas = snapshot.get("replicas", [])
    if replicas:
        sharded = any("shard" in r for r in replicas)
        lines.append("")
        shard_col = f"{'SHARD':<8} " if sharded else ""
        lines.append(
            f"{shard_col}{'REPLICA':>8} {'ALIVE':>6} {'APPLIED':>9} {'LAG':>6}"
        )
        for r in replicas:
            prefix = f"{r.get('shard', ''):<8} " if sharded else ""
            lines.append(
                f"{prefix}{r['id']:>8} {('yes' if r.get('alive') else 'NO'):>6} "
                f"{(r['applied'] if r.get('applied') is not None else '-'):>9} "
                f"{(r['lag'] if r.get('lag') is not None else '-'):>6}"
            )

    spaces = sm.get("spaces", [])
    if spaces:
        lines.append("")
        lines.append(
            f"{'SPACE':<16} {'TUPLES':>8} {'BYTES':>9} {'BUCKETS':>8} "
            f"{'MAXBKT':>7} {'SKEW':>6}"
        )
        for sp in spaces[:max_rows]:
            lines.append(
                f"{sp['name'] + '#' + str(sp['id']):<16} {sp['tuples']:>8} "
                f"{_fmt_bytes(sp['bytes']):>9} {sp['buckets']:>8} "
                f"{sp['max_bucket']:>7} {sp['skew']:>6.2f}"
            )

    hot: list[tuple[str, dict[str, Any]]] = []
    for sp in spaces:
        for t in sp.get("templates", []):
            hot.append((f"{sp['name']}#{sp['id']}", t))
    hot.sort(key=lambda pair: -pair[1]["attempts"])
    if hot:
        lines.append("")
        lines.append(
            f"{'HOT TEMPLATE':<40} {'SPACE':<12} {'ATTEMPTS':>9} "
            f"{'HITS':>8} {'HIT%':>6}"
        )
        for space, t in hot[:max_rows]:
            pct = 100.0 * t["hits"] / t["attempts"] if t["attempts"] else 0.0
            lines.append(
                f"{t['template']:<40.40} {space:<12} {t['attempts']:>9} "
                f"{t['hits']:>8} {pct:>5.1f}%"
            )

    if waiters:
        lines.append("")
        lines.append(
            f"{'WAITER':>8} {'PROC':>6} {'HOST':>6} {'BLOCKED':>9}  BLOCKED ON"
        )
        for w in sorted(waiters, key=lambda w: -w["blocked_for"])[:max_rows]:
            what = "; ".join(
                f"{e['op']} {e['space']} {e['template']}"
                for e in w.get("waiting_on", [])
            ) or "?"
            flag = "  ** STALLED **" if w["request_id"] in stalled_ids else ""
            lines.append(
                f"{w['request_id']:>8} {w['process_id']:>6} "
                f"{w['origin_host']:>6} {_fmt_age(w['blocked_for']):>9}  "
                f"{what}{flag}"
            )
    else:
        lines.append("")
        lines.append("(no blocked statements)")

    if stalls:
        lines.append("")
        for s in stalls[:max_rows]:
            lines.append(f"!! waiter #{s['request_id']}: {s['reason']}")

    if metrics:
        hists = metrics.get("histograms", {})
        shown = [
            (name, h)
            for name, h in sorted(hists.items())
            if h.get("count") and name in (
                "ags_e2e", "submit_to_order", "order_to_apply", "batch_size"
            )
        ]
        if shown:
            lines.append("")
            lines.append(
                f"{'LATENCY':<16} {'N':>8} {'MEAN':>10} {'P50':>10} "
                f"{'P95':>10} {'P99':>10} {'P999':>10}"
            )
            for name, h in shown:
                lines.append(
                    f"{name:<16} {h['count']:>8} {h['mean']:>10.6f} "
                    f"{h['p50']:>10.6f} {h['p95']:>10.6f} {h['p99']:>10.6f} "
                    f"{h.get('p999', h['p99']):>10.6f}"
                )
        # the "now" view: windowed quantiles/rates next to the cumulative
        # table, so a load change shows up within one window
        whists = (metrics.get("windows") or {}).get("histograms", {})
        wshown = [
            (name, per_window)
            for name, per_window in sorted(whists.items())
            if any(w["count"] for w in per_window.values())
        ]
        if wshown:
            lines.append("")
            lines.append(
                f"{'WINDOWED':<16} {'WIN':>5} {'N':>8} {'RATE/S':>8} "
                f"{'P50':>10} {'P99':>10} {'P999':>10}"
            )
            for name, per_window in wshown[:max_rows]:
                for label, w in per_window.items():
                    if not w["count"]:
                        continue
                    lines.append(
                        f"{name:<16} {label:>5} {w['count']:>8} "
                        f"{w['rate']:>8.1f} {w['p50']:>10.6f} "
                        f"{w['p99']:>10.6f} {w['p999']:>10.6f}"
                    )
        from repro.obs.stages import render_budget

        budget = render_budget(metrics)
        if budget:
            lines.append("")
            lines.append(budget)
    return "\n".join(lines)
