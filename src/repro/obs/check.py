"""Trace-driven replica-consistency checking.

The whole FT-Linda design stands on one invariant (Sec. 5 of the paper,
Schneider's state-machine approach): **every replica applies the same
commands in the same total order**.  The flight recorder captures, for
every traced command, an ``apply`` span per replica carrying that
replica's ``(slot, request_id)`` coordinates — ``slot`` being the count
of commands the replica has applied, i.e. the command's position in the
replica's local view of the total order.  This module replays those
per-replica streams and asserts they describe one order:

- within each replica, slots must be strictly increasing (a repeated or
  backwards slot means the replica double-applied or reordered);
- across replicas, every slot observed by two or more replicas must name
  the same ``request_id`` (a mismatch is a fork: two replicas disagree
  about what the n-th command was).

Replicas that crashed or recovered mid-trace simply have gaps in their
stream; only slots witnessed by at least two replicas are compared, so
fault-injection runs check cleanly as long as the survivors agree —
which is exactly the guarantee the paper's protocol makes.

Works on any iterable of :class:`~repro.obs.tracing.SpanEvent` — from a
:class:`~repro.obs.tracing.FlightRecorder` on the threaded/multiproc
backends or from the simulated cluster's tracer — and is usable from
tests, fault-injection harnesses, and ``python -m repro.cli trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.tracing import FlightRecorder, SpanEvent

__all__ = ["ConsistencyReport", "apply_streams", "check_apply_streams", "check_consistency"]

#: One replica's apply stream: [(slot, request_id), ...] in apply order.
Stream = list[tuple[int, int]]


@dataclass
class ConsistencyReport:
    """The verdict of one consistency check over recorded apply streams."""

    ok: bool
    violations: list[str] = field(default_factory=list)
    streams: dict[str, Stream] = field(default_factory=dict)
    #: How many slots were witnessed by >= 2 replicas (the compared set).
    compared_slots: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        replicas = ", ".join(
            f"{track}:{len(seq)}" for track, seq in sorted(self.streams.items())
        )
        head = (
            f"consistency {'OK' if self.ok else 'VIOLATED'} — "
            f"{self.compared_slots} slots cross-checked "
            f"({replicas or 'no apply events'})"
        )
        if self.ok:
            return head
        return "\n".join([head, *(f"  ! {v}" for v in self.violations)])


def apply_streams(events: Iterable[SpanEvent]) -> dict[str, Stream]:
    """Extract per-replica ``(slot, request_id)`` apply streams."""
    streams: dict[str, Stream] = {}
    for e in events:
        if e.name != "apply":
            continue
        slot = e.args.get("slot")
        rid = e.args.get("request_id")
        if slot is None or rid is None:
            continue
        streams.setdefault(e.track, []).append((slot, rid))
    return streams


def _shard_of_track(track: str) -> str:
    """The ordering domain a replica track belongs to.

    Sharded deployments run one independently sequenced replica group per
    shard and name replica tracks ``shard<k>/replica-<i>``; slot counters
    are per shard, so cross-replica slot comparison is only meaningful
    *within* a shard.  Legacy single-group tracks (``replica-<i>``, no
    prefix) all fall into the ``""`` domain — the previous behaviour.
    """
    prefix, sep, _rest = track.partition("/")
    return prefix if sep else ""


def check_apply_streams(streams: dict[str, Stream]) -> ConsistencyReport:
    """Assert the streams describe one total order (see module docstring).

    With sharded tracks (``shard<k>/replica-<i>``), "one total order"
    holds per shard: each shard's replicas must agree among themselves,
    while different shards legitimately assign the same slot numbers to
    different commands.
    """
    violations: list[str] = []
    for track, seq in sorted(streams.items()):
        for (a, _ra), (b, rb) in zip(seq, seq[1:]):
            if b <= a:
                violations.append(
                    f"{track}: applied slot {b} (request {rb}) after slot {a} "
                    f"— local order not strictly increasing"
                )
    by_slot: dict[tuple[str, int], dict[str, int]] = {}
    for track, seq in streams.items():
        shard = _shard_of_track(track)
        for slot, rid in seq:
            by_slot.setdefault((shard, slot), {})[track] = rid
    compared = 0
    for shard, slot in sorted(by_slot):
        owners = by_slot[(shard, slot)]
        if len(owners) < 2:
            continue
        compared += 1
        if len(set(owners.values())) > 1:
            detail = ", ".join(f"{t}={r}" for t, r in sorted(owners.items()))
            where = f"{shard} slot {slot}" if shard else f"slot {slot}"
            violations.append(
                f"{where}: replicas disagree on the {slot}-th command "
                f"({detail}) — apply order has forked"
            )
    return ConsistencyReport(
        ok=not violations,
        violations=violations,
        streams=streams,
        compared_slots=compared,
    )


def check_consistency(
    events: Iterable[SpanEvent] | FlightRecorder,
) -> ConsistencyReport:
    """Check replica consistency over recorded events (or a recorder)."""
    if isinstance(events, FlightRecorder):
        events = events.events()
    return check_apply_streams(apply_streams(events))
