"""Runtime observability: metrics, tracing, and consistency checking.

Buravlev et al. (PAPERS.md) show that the *submission path* — ordering
plus marshalling — dominates tuple-space cost.  To optimize that path we
must first measure it, identically, on every backend.  This package holds
the one metrics implementation all runtimes share
(:mod:`repro.obs.metrics`), the flight recorder + Chrome-trace exporter
that makes the replication pipeline visible span by span
(:mod:`repro.obs.tracing`), and the trace-driven replica-consistency
checker built on top of the recorded apply streams
(:mod:`repro.obs.check`), and the live state-introspection layer — waiter
registry, hot-template profiler, stall detector, Prometheus exporter —
behind ``python -m repro.cli top`` (:mod:`repro.obs.inspect`).

PR 8 grows the package into a *networked telemetry plane*: sliding
time-window aggregation (:mod:`repro.obs.window`), a declarative SLO
alert engine (:mod:`repro.obs.slo`), a structured event log
(:mod:`repro.obs.events`), and the HTTP endpoint that serves all of it
(:mod:`repro.obs.server` — ``rt.serve_telemetry()``).
"""

from repro.obs.check import ConsistencyReport, check_consistency
from repro.obs.envflags import EnvFlag, telemetry_port
from repro.obs.events import EventLog, emit, get_log
from repro.obs.inspect import (
    detect_stalls,
    disable_introspection,
    enable_introspection,
    introspection_enabled,
    render_top,
    to_prometheus,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, format_snapshot
from repro.obs.server import TelemetryServer, serve_telemetry
from repro.obs.slo import AlertEngine, AlertRule, default_rules
from repro.obs.window import SlidingHistogram, SlidingRate, WindowRegistry
from repro.obs.profile import (
    SamplingProfiler,
    merge_folded,
    register_thread,
    to_collapsed,
    to_speedscope,
)
from repro.obs.stages import (
    disable_stage_attribution,
    enable_stage_attribution,
    render_budget,
    stage_budget,
    stages_enabled,
)
from repro.obs.tracing import FlightRecorder, SpanEvent, render_events, to_chrome_trace

__all__ = [
    "AlertEngine",
    "AlertRule",
    "ConsistencyReport",
    "Counter",
    "EnvFlag",
    "EventLog",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "SamplingProfiler",
    "SlidingHistogram",
    "SlidingRate",
    "SpanEvent",
    "TelemetryServer",
    "WindowRegistry",
    "check_consistency",
    "default_rules",
    "detect_stalls",
    "disable_introspection",
    "disable_stage_attribution",
    "emit",
    "enable_introspection",
    "enable_stage_attribution",
    "format_snapshot",
    "get_log",
    "introspection_enabled",
    "merge_folded",
    "register_thread",
    "render_budget",
    "render_events",
    "render_top",
    "serve_telemetry",
    "stage_budget",
    "stages_enabled",
    "telemetry_port",
    "to_chrome_trace",
    "to_collapsed",
    "to_prometheus",
    "to_speedscope",
]
