"""Runtime observability: metrics, tracing, and consistency checking.

Buravlev et al. (PAPERS.md) show that the *submission path* — ordering
plus marshalling — dominates tuple-space cost.  To optimize that path we
must first measure it, identically, on every backend.  This package holds
the one metrics implementation all runtimes share
(:mod:`repro.obs.metrics`), the flight recorder + Chrome-trace exporter
that makes the replication pipeline visible span by span
(:mod:`repro.obs.tracing`), and the trace-driven replica-consistency
checker built on top of the recorded apply streams
(:mod:`repro.obs.check`), and the live state-introspection layer — waiter
registry, hot-template profiler, stall detector, Prometheus exporter —
behind ``python -m repro.cli top`` (:mod:`repro.obs.inspect`).
"""

from repro.obs.check import ConsistencyReport, check_consistency
from repro.obs.inspect import (
    detect_stalls,
    disable_introspection,
    enable_introspection,
    introspection_enabled,
    render_top,
    to_prometheus,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, format_snapshot
from repro.obs.profile import (
    SamplingProfiler,
    merge_folded,
    register_thread,
    to_collapsed,
    to_speedscope,
)
from repro.obs.stages import (
    disable_stage_attribution,
    enable_stage_attribution,
    render_budget,
    stage_budget,
    stages_enabled,
)
from repro.obs.tracing import FlightRecorder, SpanEvent, render_events, to_chrome_trace

__all__ = [
    "ConsistencyReport",
    "Counter",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "SamplingProfiler",
    "SpanEvent",
    "check_consistency",
    "detect_stalls",
    "disable_introspection",
    "disable_stage_attribution",
    "enable_introspection",
    "enable_stage_attribution",
    "format_snapshot",
    "introspection_enabled",
    "merge_folded",
    "register_thread",
    "render_budget",
    "render_events",
    "render_top",
    "stage_budget",
    "stages_enabled",
    "to_chrome_trace",
    "to_collapsed",
    "to_prometheus",
    "to_speedscope",
]
