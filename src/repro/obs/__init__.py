"""Runtime observability: counters and latency histograms.

Buravlev et al. (PAPERS.md) show that the *submission path* — ordering
plus marshalling — dominates tuple-space cost.  To optimize that path we
must first measure it, identically, on every backend.  This package holds
the one metrics implementation all runtimes share; see
:mod:`repro.obs.metrics`.
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry, format_snapshot

__all__ = ["Counter", "Histogram", "MetricsRegistry", "format_snapshot"]
