"""Process-wide opt-in switches, inherited by spawned replica processes.

Three observability planes share the same enablement discipline: off by
default, flipped on before runtime construction, and **exported through
the environment** so replica OS processes spawned afterwards come up
with the setting too (``multiprocessing`` re-imports modules in the
child, which re-reads ``os.environ``).  The pattern grew up ad hoc —
``REPRO_INTROSPECT`` in :mod:`repro.core.matching`, ``REPRO_STAGES`` in
:mod:`repro.obs.stages` — and this module is its one implementation:

- :class:`EnvFlag` — a boolean switch backed by an env var.  ``enable``
  sets both the in-process flag and the variable (children inherit);
  ``enabled`` answers True when either is set, so a spawned child whose
  module state is fresh still reads the parent's decision.

- :func:`int_env` — an optional integer setting (``REPRO_TELEMETRY=0``
  means "serve on an ephemeral port", unset means "don't serve"), used
  by the parallel runtimes to start the HTTP telemetry endpoint with no
  code changes in benchmarks, chaos runs, and examples.

Flags deliberately do not cache the environment read: ``enabled()`` is
called once per runtime/store construction, never on a hot path.
"""

from __future__ import annotations

import os

__all__ = ["EnvFlag", "TELEMETRY_ENV", "int_env", "telemetry_port"]

#: Set to a port number to auto-serve the HTTP telemetry endpoint from
#: every parallel runtime constructed afterwards (``0`` = ephemeral).
TELEMETRY_ENV = "REPRO_TELEMETRY"


class EnvFlag:
    """A process-wide boolean switch exported through the environment."""

    __slots__ = ("name", "_enabled")

    def __init__(self, name: str):
        self.name = name
        self._enabled = False

    def enable(self) -> None:
        """Turn the flag on for this process and every child spawned after."""
        self._enabled = True
        os.environ[self.name] = "1"

    def disable(self) -> None:
        """Revert :meth:`enable` for future runtimes (and future children)."""
        self._enabled = False
        os.environ.pop(self.name, None)

    def enabled(self) -> bool:
        """True when enabled here or inherited from a parent process."""
        return self._enabled or os.environ.get(self.name) == "1"


def int_env(name: str) -> int | None:
    """An optional integer env setting; unset/empty/garbage reads as None."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def telemetry_port() -> int | None:
    """The ``REPRO_TELEMETRY`` port, or None when auto-serve is off."""
    port = int_env(TELEMETRY_ENV)
    if port is not None and not (0 <= port <= 65535):
        return None
    return port
