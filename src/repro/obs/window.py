"""Sliding time-window aggregation: what the pipeline looks like *now*.

Every :class:`~repro.obs.metrics.Histogram` is cumulative since process
start — after ten minutes of traffic, ``cli top``'s p99 is the p99 of
the whole run, and a latency regression that started thirty seconds ago
is invisible under the accumulated mass.  Alerting (``repro.obs.slo``)
and live dashboards need the *recent* distribution, so this module adds
ring-of-buckets instruments that report over the trailing 10s / 60s /
5m simultaneously:

- :class:`SlidingHistogram` — a ring of per-second slices, each slice a
  full geometric bucket array (the same bounds as the cumulative
  :class:`~repro.obs.metrics.Histogram`, so windowed and cumulative
  quantiles are directly comparable).  ``record`` touches exactly one
  slice: find the current second's slot, reset it if it still holds an
  expired second, bump one bucket — O(1), one lock, no per-window cost.
  A window snapshot merges the slices stamped inside the window and
  resolves p50/p95/p99/p999 the same way the cumulative histogram does.

- :class:`SlidingRate` — the counter equivalent: a ring of per-second
  counts, reported as ops/second over each window.

- :class:`WindowRegistry` — named get-or-create over both, living
  inside every :class:`~repro.obs.metrics.MetricsRegistry` so windowed
  instruments merge, snapshot, and shard-aggregate exactly like the
  cumulative ones.

Clocks are injectable (default ``time.monotonic``) and the structures
are defensive about them: a slice is only counted into a window when its
stamp lies in ``(now - window, now]``, so a clock stepping far forward
simply expires everything (the window really is empty of recent
samples), and a slice stamped in the "future" after a backward step is
ignored rather than double-counted.  Ring capacity is sized to the
largest window; wraparound reuses slots second by second, which is what
keeps a 5-minute window at 300 fixed slices regardless of load.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Iterable

__all__ = [
    "WINDOWS",
    "SlidingHistogram",
    "SlidingRate",
    "WindowRegistry",
    "window_label",
]

#: The trailing windows every instrument reports, in seconds.
WINDOWS: tuple[int, ...] = (10, 60, 300)


def window_label(seconds: int) -> str:
    """The snapshot key for a window length ("10s", "60s", "5m")."""
    if seconds % 60 == 0 and seconds > 60:
        return f"{seconds // 60}m"
    return f"{seconds}s"


def _default_bounds(lo: float = 1e-6, factor: float = 2.0, n: int = 30) -> list[float]:
    bounds: list[float] = []
    b = lo
    for _ in range(n):
        bounds.append(b)
        b *= factor
    return bounds


class SlidingHistogram:
    """Ring-of-buckets latency histogram over multiple trailing windows."""

    __slots__ = (
        "name", "windows", "_bounds", "_n_slices", "_stamps", "_counts",
        "_sums", "_maxes", "_buckets", "_clock", "_lock",
    )

    def __init__(
        self,
        name: str,
        *,
        windows: Iterable[int] = WINDOWS,
        lo: float = 1e-6,
        factor: float = 2.0,
        n_buckets: int = 30,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.windows = tuple(sorted(int(w) for w in windows))
        if not self.windows or self.windows[0] < 1:
            raise ValueError("windows must be positive second counts")
        self._bounds = _default_bounds(lo, factor, n_buckets)
        self._n_slices = self.windows[-1]
        width = n_buckets + 1  # +1 = overflow
        self._stamps = [-1] * self._n_slices  # epoch second held by the slot
        self._counts = [0] * self._n_slices
        self._sums = [0.0] * self._n_slices
        self._maxes = [0.0] * self._n_slices
        self._buckets = [[0] * width for _ in range(self._n_slices)]
        self._clock = clock
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        if not (value >= 0.0):  # clamp NaN/negative like the cumulative hist
            value = 0.0
        sec = int(self._clock())
        idx = sec % self._n_slices
        bucket = bisect_left(self._bounds, value)
        with self._lock:
            if self._stamps[idx] != sec:
                # the slot still holds a second that expired a full ring
                # ago (or is untouched): recycle it for the current second
                self._stamps[idx] = sec
                self._counts[idx] = 0
                self._sums[idx] = 0.0
                self._maxes[idx] = 0.0
                b = self._buckets[idx]
                for i in range(len(b)):
                    b[i] = 0
            self._buckets[idx][bucket] += 1
            self._counts[idx] += 1
            self._sums[idx] += value
            if value > self._maxes[idx]:
                self._maxes[idx] = value

    def _merged(self, window_s: int, now: float) -> tuple[list[int], int, float, float]:
        """Fold live slices of the trailing *window_s* under the lock."""
        lo = now - window_s
        merged = [0] * (len(self._bounds) + 1)
        count, total, vmax = 0, 0.0, 0.0
        with self._lock:
            for idx in range(self._n_slices):
                stamp = self._stamps[idx]
                # strictly (now - window, now]: future-stamped slices left
                # behind by a backward clock step are not recent samples
                if stamp < 0 or stamp <= lo - 1 or stamp > now:
                    continue
                b = self._buckets[idx]
                for i, n in enumerate(b):
                    merged[i] += n
                count += self._counts[idx]
                total += self._sums[idx]
                if self._maxes[idx] > vmax:
                    vmax = self._maxes[idx]
        return merged, count, total, vmax

    def _quantile(
        self, buckets: list[int], count: int, vmax: float, q: float
    ) -> float:
        if not count:
            return 0.0
        target = max(q * count, 1.0)
        seen = 0
        for i, n in enumerate(buckets):
            seen += n
            if seen >= target:
                if i < len(self._bounds):
                    return self._bounds[i]
                return vmax
        return vmax

    def window_snapshot(self, window_s: int) -> dict[str, Any]:
        """Count/mean/quantiles/rate of the trailing *window_s* seconds."""
        now = self._clock()
        buckets, count, total, vmax = self._merged(window_s, now)
        return {
            "count": count,
            "mean": (total / count) if count else 0.0,
            "max": vmax,
            "p50": self._quantile(buckets, count, vmax, 0.50),
            "p95": self._quantile(buckets, count, vmax, 0.95),
            "p99": self._quantile(buckets, count, vmax, 0.99),
            "p999": self._quantile(buckets, count, vmax, 0.999),
            "rate": count / window_s,
        }

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All configured windows, keyed by label ("10s"/"60s"/"5m")."""
        return {window_label(w): self.window_snapshot(w) for w in self.windows}

    def merge(self, other: "SlidingHistogram") -> None:
        """Fold *other*'s live slices into this ring, second by second.

        Used when aggregating per-shard (or per-replica) registries into
        one runtime-wide view: slices holding the same second sum; a
        slice holding a *newer* second than ours replaces the stale slot,
        exactly as a local ``record`` in that second would have.
        """
        if other._bounds != self._bounds:
            raise ValueError(
                f"cannot merge sliding histograms with different bucket "
                f"layouts ({self.name!r} vs {other.name!r})"
            )
        if other._n_slices != self._n_slices:
            raise ValueError("cannot merge sliding histograms of different spans")
        with other._lock:
            stamps = list(other._stamps)
            counts = list(other._counts)
            sums = list(other._sums)
            maxes = list(other._maxes)
            buckets = [list(b) for b in other._buckets]
        with self._lock:
            for idx in range(self._n_slices):
                stamp = stamps[idx]
                if stamp < 0 or not counts[idx]:
                    continue
                if self._stamps[idx] == stamp:
                    mine = self._buckets[idx]
                    for i, n in enumerate(buckets[idx]):
                        mine[i] += n
                    self._counts[idx] += counts[idx]
                    self._sums[idx] += sums[idx]
                    if maxes[idx] > self._maxes[idx]:
                        self._maxes[idx] = maxes[idx]
                elif stamp > self._stamps[idx]:
                    self._stamps[idx] = stamp
                    self._buckets[idx] = buckets[idx]
                    self._counts[idx] = counts[idx]
                    self._sums[idx] = sums[idx]
                    self._maxes[idx] = maxes[idx]


class SlidingRate:
    """Per-second event counts over multiple trailing windows."""

    __slots__ = ("name", "windows", "_n_slices", "_stamps", "_counts",
                 "_clock", "_lock")

    def __init__(
        self,
        name: str,
        *,
        windows: Iterable[int] = WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.windows = tuple(sorted(int(w) for w in windows))
        if not self.windows or self.windows[0] < 1:
            raise ValueError("windows must be positive second counts")
        self._n_slices = self.windows[-1]
        self._stamps = [-1] * self._n_slices
        self._counts = [0] * self._n_slices
        self._clock = clock
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        sec = int(self._clock())
        idx = sec % self._n_slices
        with self._lock:
            if self._stamps[idx] != sec:
                self._stamps[idx] = sec
                self._counts[idx] = 0
            self._counts[idx] += n

    def window_count(self, window_s: int) -> int:
        now = self._clock()
        lo = now - window_s
        total = 0
        with self._lock:
            for idx in range(self._n_slices):
                stamp = self._stamps[idx]
                if stamp < 0 or stamp <= lo - 1 or stamp > now:
                    continue
                total += self._counts[idx]
        return total

    def rate(self, window_s: int) -> float:
        """Events per second over the trailing *window_s* seconds."""
        return self.window_count(window_s) / window_s

    def snapshot(self) -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        for w in self.windows:
            count = self.window_count(w)
            out[window_label(w)] = {"count": count, "rate": count / w}
        return out

    def merge(self, other: "SlidingRate") -> None:
        if other._n_slices != self._n_slices:
            raise ValueError("cannot merge sliding rates of different spans")
        with other._lock:
            stamps = list(other._stamps)
            counts = list(other._counts)
        with self._lock:
            for idx in range(self._n_slices):
                stamp = stamps[idx]
                if stamp < 0 or not counts[idx]:
                    continue
                if self._stamps[idx] == stamp:
                    self._counts[idx] += counts[idx]
                elif stamp > self._stamps[idx]:
                    self._stamps[idx] = stamp
                    self._counts[idx] = counts[idx]


class WindowRegistry:
    """Named sliding instruments, one per :class:`MetricsRegistry`.

    ``histogram``/``rate`` are get-or-create (creation kwargs apply on
    first creation only), mirroring the cumulative registry's contract.
    The *clock* set here is inherited by every instrument it creates —
    tests inject a fake clock once and every window follows it.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._histograms: dict[str, SlidingHistogram] = {}
        self._rates: dict[str, SlidingRate] = {}

    def histogram(self, name: str, **kwargs: Any) -> SlidingHistogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                kwargs.setdefault("clock", self._clock)
                h = self._histograms[name] = SlidingHistogram(name, **kwargs)
            return h

    def rate(self, name: str, **kwargs: Any) -> SlidingRate:
        with self._lock:
            r = self._rates.get(name)
            if r is None:
                kwargs.setdefault("clock", self._clock)
                r = self._rates[name] = SlidingRate(name, **kwargs)
            return r

    def merge(self, other: "WindowRegistry") -> None:
        with other._lock:
            hists = list(other._histograms.values())
            rates = list(other._rates.values())
        for h in hists:
            self.histogram(
                h.name,
                windows=h.windows,
                lo=h._bounds[0],
                factor=h._bounds[1] / h._bounds[0] if len(h._bounds) > 1 else 2.0,
                n_buckets=len(h._bounds),
            ).merge(h)
        for r in rates:
            self.rate(r.name, windows=r.windows).merge(r)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data image: per-window quantiles and rates, by name."""
        with self._lock:
            hists = dict(self._histograms)
            rates = dict(self._rates)
        return {
            "histograms": {
                n: h.snapshot() for n, h in sorted(hists.items())
            },
            "rates": {n: r.snapshot() for n, r in sorted(rates.items())},
        }
