"""End-to-end AGS tracing: a flight recorder plus a Chrome-trace exporter.

The replication invariant — every replica applies the same commands in
the same total order — was only observable after the fact (fingerprints)
and only on the simulated cluster (``repro.sim.trace``).  This module
gives the *real* backends the same footing:

- :class:`SpanEvent` — the one event schema shared by every producer:
  the flight recorder on the threaded/multiproc/local runtimes and the
  simulated cluster's :class:`~repro.sim.trace.Tracer` (whose events are
  a subclass), so simulated and real runs render identically;
- :class:`FlightRecorder` — a bounded ring buffer of span events.  The
  record path is lock-free under the GIL (one atomic counter bump + one
  list slot store), so it is cheap enough to leave on during fault
  injection; a runaway trace overwrites its own tail instead of eating
  the heap;
- :func:`to_chrome_trace` — export any iterable of span events to the
  Chrome trace-event JSON format (load the file in Perfetto or
  ``chrome://tracing``): one track per replica plus one per client
  thread, complete spans for ``submit_to_order`` / ``broadcast`` /
  ``apply`` / ``e2e`` nesting under one per-AGS trace id.

Tracing is **opt-in and zero-overhead when disabled**: every emit site
is guarded by a ``tracer is not None`` check (the same discipline as the
sim tracer's hook), and commands carry ``trace_id=None`` until a
recorder is attached to the replica group.

Timestamps are ``time.monotonic()`` seconds.  On Linux CLOCK_MONOTONIC
is system-wide, so spans recorded inside replica OS processes line up
with the parent's client spans on one timeline.

Usage::

    from repro.obs.tracing import FlightRecorder, to_chrome_trace

    tracer = FlightRecorder()
    rt = MultiprocessRuntime(3, tracer=tracer)
    ... run ...
    json.dump(to_chrome_trace(tracer.events()), open("trace.json", "w"))
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Iterable

__all__ = [
    "FlightRecorder",
    "SpanEvent",
    "render_events",
    "to_chrome_trace",
]


class SpanEvent:
    """One span (or instant) on one track — the shared trace schema.

    ``ts`` and ``dur`` are seconds (the sim converts virtual µs, the same
    convention the metrics layer uses); ``dur is None`` marks an instant
    event.  ``track`` names the timeline row ("client:MainThread",
    "sequencer", "replica-0", "host-2"); ``cat`` is the producing layer;
    ``name`` the event kind; ``trace_id`` ties every span of one AGS
    together across tracks and process boundaries.
    """

    __slots__ = ("ts", "dur", "track", "cat", "name", "trace_id", "args")

    def __init__(
        self,
        ts: float,
        track: str,
        cat: str,
        name: str,
        *,
        dur: float | None = None,
        trace_id: int | None = None,
        args: dict[str, Any] | None = None,
    ):
        self.ts = ts
        self.dur = dur
        self.track = track
        self.cat = cat
        self.name = name
        self.trace_id = trace_id
        self.args = args if args is not None else {}

    def __repr__(self) -> str:
        dur = f" dur={self.dur * 1e3:.3f}ms" if self.dur is not None else ""
        tid = f" trace={self.trace_id}" if self.trace_id is not None else ""
        return (
            f"[{self.ts * 1e3:12.3f}ms {self.track:>16} {self.cat:>8}] "
            f"{self.name}{dur}{tid} {self.args}"
        )


class FlightRecorder:
    """A bounded ring buffer of :class:`SpanEvent`\\ s.

    ``record`` is one counter bump plus one slot store — both atomic
    under the GIL — so concurrent clients, the sequencer thread and the
    transport collector threads all record without contention.  When the
    buffer wraps, the oldest events are overwritten (a flight recorder
    keeps the most recent history, not the first).
    """

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError("need at least one slot")
        self.capacity = capacity
        self._slots: list[tuple[int, SpanEvent] | None] = [None] * capacity
        self._seq = itertools.count()
        self._trace_ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def next_trace_id(self) -> int:
        """Mint a fresh per-AGS trace id (atomic under the GIL)."""
        return next(self._trace_ids)

    def record(self, event: SpanEvent) -> None:
        i = next(self._seq)
        self._slots[i % self.capacity] = (i, event)

    def record_span(
        self,
        ts: float,
        track: str,
        cat: str,
        name: str,
        *,
        dur: float | None = None,
        trace_id: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Construct and record one event (convenience for emit sites)."""
        self.record(
            SpanEvent(ts, track, cat, name, dur=dur, trace_id=trace_id, args=args)
        )

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def events(self) -> list[SpanEvent]:
        """The retained events, oldest first."""
        entries = [e for e in self._slots if e is not None]
        entries.sort(key=lambda pair: pair[0])
        return [ev for _i, ev in entries]

    def spans(
        self,
        name: str | None = None,
        *,
        track: str | None = None,
        cat: str | None = None,
        trace_id: int | None = None,
    ) -> list[SpanEvent]:
        """Filtered view of :meth:`events`."""
        return [
            e
            for e in self.events()
            if (name is None or e.name == name)
            and (track is None or e.track == track)
            and (cat is None or e.cat == cat)
            and (trace_id is None or e.trace_id == trace_id)
        ]

    def clear(self) -> None:
        self._slots = [None] * self.capacity
        self._seq = itertools.count()

    def to_chrome(self) -> dict[str, Any]:
        return to_chrome_trace(self.events())

    def __len__(self) -> int:
        return len([e for e in self._slots if e is not None])


# ---------------------------------------------------------------------- #
# exporters
# ---------------------------------------------------------------------- #

def _track_sort_key(track: str) -> tuple[int, str]:
    """Client tracks first, then the sequencer, then replicas/hosts."""
    if track.startswith("client"):
        group = 0
    elif track in ("sequencer", "monitor"):
        group = 1
    elif track.startswith(("replica", "host")):
        group = 2
    else:
        group = 3
    return (group, track)


def to_chrome_trace(events: Iterable[SpanEvent]) -> dict[str, Any]:
    """Render *events* as a Chrome trace-event JSON object.

    The result is ``json.dump``-able and loads directly in Perfetto or
    ``chrome://tracing``.  Spans with a duration become complete events
    (``"ph": "X"``); instants (``dur is None``) become instant events.
    Each distinct track gets its own named thread row, ordered client →
    sequencer → replicas.
    """
    events = list(events)
    tracks = sorted({e.track for e in events}, key=_track_sort_key)
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for track, tid in tids.items():
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
        out.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for e in events:
        args = dict(e.args)
        if e.trace_id is not None:
            args["trace_id"] = e.trace_id
        record: dict[str, Any] = {
            "name": e.name,
            "cat": e.cat,
            "pid": 1,
            "tid": tids[e.track],
            "ts": e.ts * 1e6,  # chrome wants microseconds
            "args": args,
        }
        if e.dur is None:
            record["ph"] = "i"
            record["s"] = "t"
        else:
            record["ph"] = "X"
            record["dur"] = e.dur * 1e6
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def render_events(events: Iterable[SpanEvent], limit: int = 200) -> str:
    """A printable text timeline (most recent *limit* events, in order)."""
    picked = list(events)[-limit:]
    return "\n".join(repr(e) for e in picked)
