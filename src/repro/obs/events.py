"""Structured event log: the discrete-occurrence channel of the plane.

Metrics answer "how much / how fast"; traces answer "where did the time
go inside one operation".  Neither can answer "what *happened* at
14:02:07" — a replica was declared dead, an auto-recovery succeeded, the
chaos monkey poisoned a command, an alert fired.  Those are discrete,
low-frequency, high-information occurrences, and this module gives them
one spine:

- :class:`EventLog` — a bounded ring of structured events (dicts with
  ``seq``/``ts``/``kind``/``severity`` plus free-form fields), cheap to
  emit from any thread and drained without consuming via ``events(since=
  seq)`` so multiple readers (the HTTP ``/events`` endpoint, tests, the
  CLI) can each keep their own cursor.

- an optional **NDJSON sink**: attach a path or file object and every
  event is also appended as one JSON line — durable evidence for chaos
  runs and postmortems, in a format ``jq`` and log shippers already
  speak.

- a module-level default log (:func:`emit` / :func:`get_log`): liveness
  detection lives in the replica group, chaos in its own module, alert
  transitions in ``obs.slo`` — a process-wide singleton is what lets
  them share a timeline with zero plumbing.  Events carry ``trace_id``
  when the emitter has one, tying the discrete record to the span
  timeline in the flight recorder.

Emission is deliberately never load-bearing: a broken sink is detached
and noted in-band rather than raised into the replication pipeline.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, IO

__all__ = ["EventLog", "emit", "get_log", "reset_default_log"]


class EventLog:
    """A bounded, thread-safe ring of structured events."""

    def __init__(self, capacity: int = 4096, *, clock=time.time):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._clock = clock
        self._lock = threading.Lock()
        self._sink: IO[str] | None = None
        self._sink_owned = False

    def emit(
        self,
        kind: str,
        *,
        severity: str = "info",
        trace_id: str | None = None,
        **fields: Any,
    ) -> dict[str, Any]:
        """Append one event; returns the stored record (with its seq)."""
        event: dict[str, Any] = {
            "seq": 0,  # assigned under the lock
            "ts": self._clock(),
            "kind": kind,
            "severity": severity,
        }
        if trace_id is not None:
            event["trace_id"] = trace_id
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._events.append(event)
            sink = self._sink
            if sink is not None:
                try:
                    sink.write(json.dumps(event, default=str) + "\n")
                    sink.flush()
                except (OSError, ValueError):
                    # a dead sink must never take the pipeline down with
                    # it: detach, and leave the evidence in the ring
                    self._detach_locked()
                    self._events.append({
                        "seq": self._seq + 1,
                        "ts": self._clock(),
                        "kind": "event_sink_failed",
                        "severity": "warning",
                    })
                    self._seq += 1
        return event

    def events(self, since: int = 0) -> list[dict[str, Any]]:
        """Events with ``seq > since``, oldest first (non-consuming)."""
        with self._lock:
            return [e for e in self._events if e["seq"] > since]

    @property
    def last_seq(self) -> int:
        return self._seq

    def attach_sink(self, target: "str | IO[str]") -> None:
        """Mirror every future event to *target* as NDJSON lines.

        *target* is a path (opened for append, owned and closed by the
        log) or an open text file object (borrowed, left open on detach).
        """
        with self._lock:
            self._detach_locked()
            if isinstance(target, (str, bytes)):
                self._sink = open(target, "a", encoding="utf-8")
                self._sink_owned = True
            else:
                self._sink = target
                self._sink_owned = False

    def detach_sink(self) -> None:
        with self._lock:
            self._detach_locked()

    def _detach_locked(self) -> None:
        sink, owned = self._sink, self._sink_owned
        self._sink = None
        self._sink_owned = False
        if sink is not None and owned:
            try:
                sink.close()
            except OSError:
                pass

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


_DEFAULT = EventLog()


def get_log() -> EventLog:
    """The process-wide default log all subsystems emit into."""
    return _DEFAULT


def emit(kind: str, **kwargs: Any) -> dict[str, Any]:
    """Emit into the process-wide default log (see :meth:`EventLog.emit`)."""
    return _DEFAULT.emit(kind, **kwargs)


def reset_default_log() -> None:
    """Drop the default log's contents and sink (test isolation)."""
    _DEFAULT.detach_sink()
    _DEFAULT.clear()
