"""FT-Linda runtimes: the programmer-facing API over the state machine.

The paper's programming model is: processes share tuple spaces; every
interaction is a tuple-space operation; single operations are sugar for
one-branch atomic guarded statements.  This module defines

- :class:`BaseRuntime` — the abstract API (``out``/``in_``/``rd``/``inp``/
  ``rdp``/``move``/``copy``/``execute``/``ts_create``/``eval_``), with all
  the convenience wrappers implemented once on top of a single abstract
  ``_submit(ags, process_id)``;
- :class:`ProcessView` — the API a spawned (``eval``'ed) process sees,
  bound to its process id;
- :class:`LocalRuntime` — a single-host, thread-safe implementation that
  executes statements directly against one
  :class:`~repro.core.statemachine.TSStateMachine`.  This is both the unit
  under test for most of the suite and the paper's "single processor"
  measurement configuration (Sec. 5.3): no replication, no network, pure
  tuple-processing overhead.

Distributed implementations (simulated network + Consul, threads/processes
with a replica group) live in :mod:`repro.consul` and :mod:`repro.parallel`
and share this exact API, so every example and paradigm runs unchanged on
any backend.
"""

from __future__ import annotations

import abc
import itertools
import threading
import time
from typing import Any, Callable, Sequence

from repro._errors import AGSError, RuntimeFailure, TimeoutError_
from repro.core.ags import AGS, AGSResult, Guard, Op
from repro.core.spaces import MAIN_TS, Resilience, Scope, TSHandle
from repro.core.statemachine import (
    Command,
    CreateSpace,
    DestroySpace,
    ExecuteAGS,
    TSStateMachine,
)
from repro.core.tuples import Formal, LindaTuple
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FlightRecorder

__all__ = ["BaseRuntime", "LocalRuntime", "ProcessView", "SnapshotView"]

#: Origin-host id LocalRuntime stamps on its own commands.  It is reserved:
#: failure injection uses non-negative *logical* host ids (worker ids), and
#: a HostFailed command drops blocked statements whose origin matches the
#: failed host — the runtime's own statements must never match.
_LOCAL_ORIGIN = -1


def _autoname(fields: Sequence[Any]) -> tuple[list[Any], list[tuple[int, str]]]:
    """Give anonymous formals synthetic names so results can be rebuilt.

    Classic Linda's ``in("count", ?int)`` returns the matched tuple; the
    AGS machinery only reports *named* formal bindings.  The convenience
    wrappers therefore rename every anonymous formal to ``_fI`` (its field
    index) and use the bindings to reconstruct the full matched tuple.
    """
    out: list[Any] = []
    renamed: list[tuple[int, str]] = []
    for i, f in enumerate(fields):
        if isinstance(f, Formal) and f.name is None:
            nm = f"_f{i}"
            out.append(Formal(object if not f.typed else f.ftype, nm))
            renamed.append((i, nm))
        else:
            out.append(f)
            if isinstance(f, Formal):
                renamed.append((i, f.name))  # type: ignore[arg-type]
    return out, renamed


def _rebuild(fields: Sequence[Any], result: AGSResult) -> LindaTuple:
    """Reconstruct the matched tuple from pattern fields and bindings."""
    vals: list[Any] = []
    for i, f in enumerate(fields):
        if isinstance(f, Formal):
            vals.append(result.bindings[f.name])
        elif hasattr(f, "evaluate"):
            vals.append(f.evaluate(result.bindings))
        else:
            vals.append(f)
    return LindaTuple(vals)


class BaseRuntime(abc.ABC):
    """Abstract FT-Linda runtime: classic Linda ops as one-op AGSs.

    Subclasses provide command submission and process creation; everything
    user-facing is defined here so all backends behave identically.
    """

    def __init__(self) -> None:
        self._proc_ids = itertools.count(1)
        self._procs: list["ProcessHandle"] = []
        self._telemetry = None  # TelemetryServer once serve_telemetry runs

    # ------------------------------------------------------------------ #
    # abstract transport
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _submit(
        self, ags: AGS, process_id: int, *, timeout: float | None = None
    ) -> AGSResult:
        """Execute *ags* with atomicity/ordering guarantees; block as needed."""

    @abc.abstractmethod
    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        """``ts_create`` (Sec. 3)."""

    @abc.abstractmethod
    def destroy_space(self, handle: TSHandle) -> None:
        """``ts_destroy``."""

    def eval_(
        self, fn: Callable[..., Any], *args: Any, process_id: int | None = None
    ) -> "ProcessHandle":
        """Linda's ``eval``: create a live tuple (a new process).

        *fn* receives a :class:`ProcessView` bound to the new process as
        its first argument, then *args*.  ``eval`` is deliberately NOT
        allowed inside an AGS (Sec. 3's restrictions), hence a runtime
        method rather than an opcode.

        Every single-machine backend spawns Linda processes as client
        threads (replication happens underneath, in the command pipeline),
        so the default implementation lives here once.
        """
        pid = process_id if process_id is not None else next(self._proc_ids)
        handle = ProcessHandle(pid)

        def run() -> None:
            try:
                handle._result = fn(self.view(pid), *args)
            except BaseException as exc:  # noqa: BLE001 - reported via join()
                handle._error = exc

        t = threading.Thread(target=run, name=f"linda-proc-{pid}", daemon=True)
        handle._thread = t
        self._procs.append(handle)
        t.start()
        return handle

    def metrics_snapshot(self) -> dict[str, Any]:
        """Plain-data image of this runtime's metrics registry.

        Every backend exposes the same instruments (``submit_to_order``,
        ``order_to_apply``, ``ags_e2e`` histograms plus submission
        counters) so experiments can report identical numbers regardless
        of where they ran.  Runtimes without a registry return ``{}``.
        """
        metrics = getattr(self, "metrics", None)
        return metrics.snapshot() if metrics is not None else {}

    def introspection_snapshot(self) -> dict[str, Any]:
        """Uniform live-state image: spaces, hot templates, waiters, replicas.

        Every backend returns the same plain-data shape (see
        :func:`repro.obs.inspect.empty_snapshot`) so the stall detector,
        Prometheus exporter, and ``cli top`` dashboard work unchanged on
        any of them.  The base implementation reports an empty image.
        """
        from repro.obs.inspect import empty_snapshot

        return empty_snapshot(type(self).__name__)

    def serve_telemetry(self, port: int = 0, **kwargs: Any):
        """Expose this runtime's observability plane over HTTP.

        Starts (or returns the already-running) :class:`~repro.obs.
        server.TelemetryServer` bound to this runtime — ``/metrics``,
        ``/health``, ``/snapshot``, ``/events``, ``/debug/trace``,
        ``/debug/profile``.  ``port=0`` binds an ephemeral port; read it
        back from the returned server's ``.port``/``.url``.  The server
        is closed automatically by the backends' ``shutdown``.
        """
        if self._telemetry is None:
            from repro.obs.server import serve_telemetry

            self._telemetry = serve_telemetry(self, port, **kwargs)
        return self._telemetry

    def _close_telemetry(self) -> None:
        """Stop the HTTP endpoint if one is running (idempotent)."""
        server, self._telemetry = self._telemetry, None
        if server is not None:
            server.close()

    # ------------------------------------------------------------------ #
    # the Linda operations (single-op AGS sugar)
    # ------------------------------------------------------------------ #

    def execute(
        self, ags: AGS, *, process_id: int = 0, timeout: float | None = None
    ) -> AGSResult:
        """Execute an arbitrary atomic guarded statement.

        Unlike the classic-op wrappers below, ``execute`` never raises on
        an aborted statement — callers inspect :attr:`AGSResult.error`.
        """
        return self._submit(ags, process_id, timeout=timeout)

    @staticmethod
    def _checked(res: AGSResult) -> AGSResult:
        """Raise the deterministic error carried by an aborted result."""
        if res.aborted:
            if isinstance(res.error, Exception):
                raise res.error
            raise RuntimeFailure(str(res.error))
        return res

    def out(self, ts: TSHandle, *fields: Any, process_id: int = 0) -> None:
        """Deposit a tuple (classic ``out``)."""
        self._checked(self._submit(AGS.atomic(Op.out(ts, *fields)), process_id))

    def in_(
        self,
        ts: TSHandle,
        *fields: Any,
        process_id: int = 0,
        timeout: float | None = None,
    ) -> LindaTuple:
        """Withdraw a matching tuple, blocking until one exists."""
        named, _ = _autoname(fields)
        res = self._checked(
            self._submit(AGS.single(Guard.in_(ts, *named)), process_id, timeout=timeout)
        )
        return _rebuild(named, res)

    def rd(
        self,
        ts: TSHandle,
        *fields: Any,
        process_id: int = 0,
        timeout: float | None = None,
    ) -> LindaTuple:
        """Read a matching tuple without withdrawing it, blocking."""
        named, _ = _autoname(fields)
        res = self._checked(
            self._submit(AGS.single(Guard.rd(ts, *named)), process_id, timeout=timeout)
        )
        return _rebuild(named, res)

    def inp(self, ts: TSHandle, *fields: Any, process_id: int = 0) -> LindaTuple | None:
        """Non-blocking ``in`` with FT-Linda's *strong* semantics.

        Returns the matched tuple, or ``None`` as a guarantee that no
        matching tuple existed at this operation's point in the total
        order (Sec. 6).
        """
        named, _ = _autoname(fields)
        res = self._checked(self._submit(AGS.single(Guard.inp(ts, *named)), process_id))
        if not res.succeeded:
            return None
        return _rebuild(named, res)

    def rdp(self, ts: TSHandle, *fields: Any, process_id: int = 0) -> LindaTuple | None:
        """Non-blocking ``rd`` with strong semantics."""
        named, _ = _autoname(fields)
        res = self._checked(self._submit(AGS.single(Guard.rdp(ts, *named)), process_id))
        if not res.succeeded:
            return None
        return _rebuild(named, res)

    def move(
        self, src: TSHandle, dst: TSHandle, *fields: Any, process_id: int = 0
    ) -> None:
        """Atomically transfer every matching tuple from *src* to *dst*."""
        self._checked(self._submit(AGS.atomic(Op.move(src, dst, *fields)), process_id))

    def copy(
        self, src: TSHandle, dst: TSHandle, *fields: Any, process_id: int = 0
    ) -> None:
        """Atomically duplicate every matching tuple from *src* into *dst*."""
        self._checked(self._submit(AGS.atomic(Op.copy(src, dst, *fields)), process_id))

    def eval_out(
        self, ts: TSHandle, *fields: Any, process_id: int = 0
    ) -> "ProcessHandle":
        """Classic Linda's *live tuple*: ``eval(ts, f1, fn, f2, …)``.

        In Gelernter's original model, ``eval`` deposits an *active* tuple:
        fields that are functions are evaluated by freshly created
        processes, concurrently, and when all of them finish the tuple
        turns *passive* — it materializes in the space and becomes
        matchable.  (FT-Linda keeps ``eval`` outside AGSs; this is the
        plain-Linda form, offered on every runtime.)

        Callable fields take no arguments and return a valid field value.
        Returns the handle of the coordinating process; ``join`` yields
        the deposited tuple.
        """
        callables = [(i, f) for i, f in enumerate(fields) if callable(f)]
        for i, f in enumerate(fields):
            if not callable(f) and isinstance(f, Formal):
                raise AGSError("live tuples take values or functions, not formals")

        def coordinator(proc: "ProcessView") -> LindaTuple:
            results: dict[int, Any] = {}
            children = [
                (i, proc.eval_(lambda _p, fn=fn: fn())) for i, fn in callables
            ]
            for i, h in children:
                results[i] = h.join()
            resolved = [
                results[i] if callable(f) else f for i, f in enumerate(fields)
            ]
            proc.out(ts, *resolved)
            return LindaTuple(resolved)

        return self.eval_(coordinator)

    def view(self, process_id: int) -> "ProcessView":
        """An API facade bound to *process_id* (what ``eval`` hands out)."""
        return ProcessView(self, process_id)

    @property
    def main_ts(self) -> TSHandle:
        """The default shared stable tuple space."""
        return MAIN_TS


class ProcessView:
    """The FT-Linda API as seen by one process: same ops, pid pre-bound."""

    __slots__ = ("_runtime", "process_id")

    def __init__(self, runtime: BaseRuntime, process_id: int):
        self._runtime = runtime
        self.process_id = process_id

    def execute(self, ags: AGS, *, timeout: float | None = None) -> AGSResult:
        return self._runtime.execute(
            ags, process_id=self.process_id, timeout=timeout
        )

    def out(self, ts: TSHandle, *fields: Any) -> None:
        self._runtime.out(ts, *fields, process_id=self.process_id)

    def in_(self, ts: TSHandle, *fields: Any, timeout: float | None = None) -> LindaTuple:
        return self._runtime.in_(
            ts, *fields, process_id=self.process_id, timeout=timeout
        )

    def rd(self, ts: TSHandle, *fields: Any, timeout: float | None = None) -> LindaTuple:
        return self._runtime.rd(
            ts, *fields, process_id=self.process_id, timeout=timeout
        )

    def inp(self, ts: TSHandle, *fields: Any) -> LindaTuple | None:
        return self._runtime.inp(ts, *fields, process_id=self.process_id)

    def rdp(self, ts: TSHandle, *fields: Any) -> LindaTuple | None:
        return self._runtime.rdp(ts, *fields, process_id=self.process_id)

    def move(self, src: TSHandle, dst: TSHandle, *fields: Any) -> None:
        self._runtime.move(src, dst, *fields, process_id=self.process_id)

    def copy(self, src: TSHandle, dst: TSHandle, *fields: Any) -> None:
        self._runtime.copy(src, dst, *fields, process_id=self.process_id)

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
    ) -> TSHandle:
        owner = self.process_id if scope is Scope.PRIVATE else None
        return self._runtime.create_space(name, resilience, scope, owner)

    def destroy_space(self, handle: TSHandle) -> None:
        self._runtime.destroy_space(handle)

    def eval_(self, fn: Callable[..., Any], *args: Any) -> "ProcessHandle":
        return self._runtime.eval_(fn, *args)

    @property
    def main_ts(self) -> TSHandle:
        return self._runtime.main_ts


class ProcessHandle:
    """Handle of an ``eval``'ed process (join/result inspection)."""

    __slots__ = ("process_id", "_thread", "_result", "_error")

    def __init__(self, process_id: int, thread: threading.Thread | None = None):
        self.process_id = process_id
        self._thread = thread
        self._result: Any = None
        self._error: BaseException | None = None

    def join(self, timeout: float | None = None) -> Any:
        """Wait for the process to finish; re-raises its exception."""
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError_(
                    f"process {self.process_id} still running after {timeout}s"
                )
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def done(self) -> bool:
        return self._thread is None or not self._thread.is_alive()


class LocalRuntime(BaseRuntime):
    """Single-host FT-Linda: one state machine, threads as processes.

    All statements execute under one lock, which *is* the total order —
    this configuration trades distribution for exactness and is what the
    paper measures in its single-processor Table 1 numbers.  ``in``/``rd``
    block on a condition variable and are re-tried by the state machine's
    deterministic wake-up scan whenever any statement completes.
    """

    def __init__(
        self, *, op_stats: bool = False, tracer: FlightRecorder | None = None
    ):
        super().__init__()
        self._sm = TSStateMachine(op_stats=op_stats)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._req_ids = itertools.count(1)
        self._results: dict[int, AGSResult] = {}
        self.metrics = MetricsRegistry()
        self.tracer = tracer
        self._h_submit = self.metrics.histogram("submit_to_order")
        self._h_apply = self.metrics.histogram("order_to_apply")
        self._h_e2e = self.metrics.histogram("ags_e2e")
        self._c_cmds = self.metrics.counter("commands_submitted")

    # ------------------------------------------------------------------ #
    # BaseRuntime implementation
    # ------------------------------------------------------------------ #

    def _submit(
        self, ags: AGS, process_id: int, *, timeout: float | None = None
    ) -> AGSResult:
        t_submit = _now()
        tracer = self.tracer
        self._c_cmds.inc()
        with self._cond:
            # lock acquisition is this runtime's total order: waiting for
            # the lock is the submit->order leg, executing is order->apply
            t_ordered = _now()
            self._h_submit.record(t_ordered - t_submit)
            rid = next(self._req_ids)
            completions = self._sm.apply(
                ExecuteAGS(rid, _LOCAL_ORIGIN, process_id, ags)
            )
            t_applied = _now()
            self._h_apply.record(t_applied - t_ordered)
            trace_id = None
            if tracer is not None:
                # same span vocabulary as the replica group: one trace per
                # AGS, the single state machine playing replica-0
                trace_id = tracer.next_trace_id()
                track = f"client:{threading.current_thread().name}"
                tracer.record_span(
                    t_submit, track, "client", "submit_to_order",
                    dur=t_ordered - t_submit, trace_id=trace_id,
                    args={"request_id": rid},
                )
                tracer.record_span(
                    t_ordered, "replica-0", "replica", "apply",
                    dur=t_applied - t_ordered, trace_id=trace_id,
                    args={"slot": self._sm.applied_count, "request_id": rid},
                )
            for c in completions:
                self._results[c.request_id] = c.result
            if any(c.request_id != rid for c in completions):
                # our statement unblocked someone else's — wake their threads
                self._cond.notify_all()
            if rid in self._results:
                result = self._results.pop(rid)
                self._finish_e2e(t_submit, rid, trace_id)
                return result
            # parked: wait until some later statement completes ours
            deadline = None if timeout is None else _now() + timeout
            while rid not in self._results:
                remaining = None if deadline is None else deadline - _now()
                if remaining is not None and remaining <= 0:
                    self._cancel_blocked(rid)
                    raise TimeoutError_(
                        f"in/rd guard not satisfied within {timeout}s"
                    )
                self._cond.wait(remaining)
            result = self._results.pop(rid)
            self._finish_e2e(t_submit, rid, trace_id)
            return result

    def _finish_e2e(self, t_submit: float, rid: int, trace_id: int | None) -> None:
        now = _now()
        self._h_e2e.record(now - t_submit)
        if self.tracer is not None and trace_id is not None:
            self.tracer.record_span(
                t_submit,
                f"client:{threading.current_thread().name}",
                "client",
                "e2e",
                dur=now - t_submit,
                trace_id=trace_id,
                args={"request_id": rid},
            )

    def _cancel_blocked(self, rid: int) -> None:
        self._sm.unpark(rid)

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        with self._cond:
            rid = next(self._req_ids)
            completions = self._sm.apply(
                CreateSpace(rid, _LOCAL_ORIGIN, name, resilience, scope, owner)
            )
            result = completions[0].result
            if isinstance(result, Exception):
                raise result
            return result

    def destroy_space(self, handle: TSHandle) -> None:
        with self._cond:
            rid = next(self._req_ids)
            completions = self._sm.apply(DestroySpace(rid, _LOCAL_ORIGIN, handle))
            result = completions[0].result
            if isinstance(result, Exception):
                raise result

    def join_all(self, timeout: float | None = None) -> None:
        """Wait for every ``eval``'ed process to finish."""
        for h in list(self._procs):
            h.join(timeout)

    # ------------------------------------------------------------------ #
    # failure injection (paradigm tests / baselines)
    # ------------------------------------------------------------------ #

    def inject_failure(self, host_id: int) -> None:
        """Simulate the fail-stop notification for logical host *host_id*.

        On the distributed backends the membership protocol does this
        automatically; on a single-host runtime, tests and examples model
        "worker w's processor crashed" by stopping the worker's thread and
        calling ``inject_failure(w)`` — which deposits the distinguished
        failure tuple and drops the dead host's blocked statements, exactly
        as the runtime does in the paper (Sec. 2.2).
        """
        from repro.core.statemachine import HostFailed

        with self._cond:
            rid = next(self._req_ids)
            completions = self._sm.apply(HostFailed(rid, _LOCAL_ORIGIN, host_id))
            for c in completions:
                self._results[c.request_id] = c.result
            if completions:
                self._cond.notify_all()

    def inject_recovery(self, host_id: int) -> None:
        """Deposit the recovery tuple for logical host *host_id*."""
        from repro.core.statemachine import HostRecovered

        with self._cond:
            rid = next(self._req_ids)
            completions = self._sm.apply(HostRecovered(rid, _LOCAL_ORIGIN, host_id))
            for c in completions:
                self._results[c.request_id] = c.result
            if completions:
                self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # inspection (tests, benchmarks)
    # ------------------------------------------------------------------ #

    @property
    def state_machine(self) -> TSStateMachine:
        return self._sm

    def introspection_snapshot(self) -> dict[str, Any]:
        from repro.obs.inspect import empty_snapshot

        snap = empty_snapshot(type(self).__name__)
        with self._lock:
            snap["sm"] = self._sm.introspection()
            snap["wal_bytes"] = self._wal_bytes()
        return snap

    def _wal_bytes(self) -> int | None:
        """WAL size gauge; overridden by the persistent runtime."""
        return None

    def space_size(self, handle: TSHandle) -> int:
        with self._lock:
            return len(self._sm.registry.store(handle))

    def space_tuples(self, handle: TSHandle) -> list[LindaTuple]:
        with self._lock:
            return self._sm.registry.store(handle).to_list()

    # ------------------------------------------------------------------ #
    # snapshot-isolated reads
    # ------------------------------------------------------------------ #

    def retain_snapshot(self) -> int:
        """Take (and retain) a COW snapshot at the current slot boundary.

        Only the O(dirty-buckets) image capture runs under the runtime
        lock; returns the slot the image is pinned at, usable with
        :meth:`read_at`.  The persistent runtimes retain one of these per
        compaction automatically.
        """
        with self._lock:
            return self._sm.cow_snapshot(retain=True).applied_count

    def snapshot_slots(self) -> list[int]:
        """Slots currently answerable by :meth:`read_at`, oldest first."""
        return self._sm.retained_slots()

    def read_at(self, slot: int | None = None) -> "SnapshotView":
        """Snapshot-isolated reads at a retained slot (newest by default).

        The returned view is materialized from an immutable snapshot
        image on the *caller's* thread — it holds no runtime lock and
        shares no mutable structure with the live state machine, so
        reads against it never contend with concurrent ``out``/``in``
        traffic, and always observe exactly the state at the slot
        boundary the snapshot was taken at.
        """
        view, actual = self._sm.read_view(slot)
        return SnapshotView(view, actual)


class SnapshotView:
    """Read-only tuple-space queries frozen at one snapshot slot.

    Produced by :meth:`LocalRuntime.read_at`; every method evaluates
    against a private state machine materialized from the retained
    snapshot image, so results are stable no matter how much the live
    space churns underneath.
    """

    __slots__ = ("_sm", "slot")

    def __init__(self, sm: TSStateMachine, slot: int):
        self._sm = sm
        self.slot = slot

    def rdp(self, ts: TSHandle, *fields: Any) -> LindaTuple | None:
        """Non-blocking read against the frozen state."""
        named, _ = _autoname(fields)
        res = self._sm.try_read(AGS.single(Guard.rdp(ts, *named)), 0)
        if res is None or not res.succeeded:
            return None
        return _rebuild(named, res)

    def count(self, ts: TSHandle, *fields: Any) -> int:
        """Number of tuples matching the pattern at the frozen slot."""
        from repro.core.tuples import Pattern

        return self._sm.registry.store(ts).count(Pattern(tuple(fields)))

    def size(self, ts: TSHandle) -> int:
        return len(self._sm.registry.store(ts))

    def tuples(self, ts: TSHandle) -> list[LindaTuple]:
        return self._sm.registry.store(ts).to_list()

    def fingerprint(self) -> int:
        return self._sm.fingerprint()


def _now() -> float:
    return time.monotonic()
