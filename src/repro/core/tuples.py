"""Tuples, patterns and typed formals — the data model of tuple space.

A Linda *tuple* is an ordered sequence of typed values ("actuals").  A
*pattern* (also called an anti-tuple or template) is a sequence mixing
actuals with typed wildcards ("formals", written ``?var`` in the paper's
notation).  A pattern matches a tuple when arities are equal, every actual
compares equal with the exact same runtime type, and every formal's type
equals the type of the value in its position.

The paper's FT-lcc precompiler catalogs the *signature* of every pattern —
"an ordered list of the types for each distinct pattern … used primarily
for matching purposes" (Sec. 5.2).  :func:`signature_of` and
:func:`pattern_signature` reproduce that: signatures are the primary key
of the matching index in :mod:`repro.core.matching`.

Field types are restricted to immutable values so tuples can be hashed,
replicated and compared deterministically: ``bool``, ``int``, ``float``,
``str``, ``bytes``, ``None`` and (nested) tuples of these.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro._errors import MatchTypeError, TupleError

__all__ = [
    "ALLOWED_FIELD_TYPES",
    "Formal",
    "LindaTuple",
    "Pattern",
    "formal",
    "is_valid_field",
    "make_tuple",
    "match",
    "pattern_signature",
    "signature_of",
    "type_name",
]

#: Exact runtime types a tuple field may have.  ``bool`` is listed before
#: ``int`` for documentation only; matching always uses exact ``type()`` so
#: ``True`` never matches an ``int`` formal even though ``bool`` subclasses
#: ``int`` in Python.
ALLOWED_FIELD_TYPES = (bool, int, float, str, bytes, type(None), tuple)

#: Additional immutable value types registered by other modules (e.g.
#: :class:`repro.core.spaces.TSHandle`, so tuples can carry space handles).
_EXTRA_FIELD_TYPES: set[type] = set()

_ANY = object  # sentinel type for untyped formals


def register_field_type(t: type) -> None:
    """Allow instances of immutable value type *t* as tuple fields.

    The type must be hashable and define value equality; the library uses
    this for :class:`~repro.core.spaces.TSHandle` so that tuples can name
    other tuple spaces (the paper's examples pass TS handles in tuples).
    """
    _EXTRA_FIELD_TYPES.add(t)


def type_name(t: type) -> str:
    """Stable, human-readable name for a field type (used in signatures)."""
    if t is _ANY:
        return "?"
    return t.__name__


def is_valid_field(value: Any) -> bool:
    """Return True when *value* may appear as a tuple field.

    Nested tuples are validated recursively; any other container (list,
    dict, set) is rejected because it is mutable and would break the
    deterministic-replication guarantees of stable tuple spaces.
    """
    if type(value) is tuple:
        return all(is_valid_field(v) for v in value)
    t = type(value)
    return t in (bool, int, float, str, bytes, type(None)) or t in _EXTRA_FIELD_TYPES


class Formal:
    """A typed wildcard in a pattern — the paper's ``?var`` notation.

    Parameters
    ----------
    ftype:
        Exact runtime type the matched value must have, or ``object`` for
        an untyped wildcard (matches any field).  Untyped formals defeat
        the signature index and fall back to an arity scan, so prefer
        typed formals in hot paths.
    name:
        Optional binding name.  Named formals have their matched value
        recorded in the :class:`Binding` returned by :func:`match`; inside
        an AGS the guard's named formals become operands available to body
        operations (Sec. 3 of the paper).
    """

    __slots__ = ("ftype", "name")

    def __init__(self, ftype: type = object, name: str | None = None):
        if (
            ftype is not object
            and ftype not in ALLOWED_FIELD_TYPES
            and ftype not in _EXTRA_FIELD_TYPES
        ):
            raise MatchTypeError(
                f"formal type {ftype!r} is not an allowed tuple field type"
            )
        self.ftype = _ANY if ftype is object else ftype
        self.name = name

    @property
    def typed(self) -> bool:
        """True when this formal constrains the matched value's type."""
        return self.ftype is not _ANY

    def matches_value(self, value: Any) -> bool:
        """Type-check *value* against this formal."""
        return self.ftype is _ANY or type(value) is self.ftype

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nm = self.name or ""
        return f"?{nm}:{type_name(self.ftype)}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Formal)
            and other.ftype is self.ftype
            and other.name == self.name
        )

    def __hash__(self) -> int:
        return hash((self.ftype, self.name))


def formal(ftype: type = object, name: str | None = None) -> Formal:
    """Convenience constructor mirroring the paper's ``?name`` syntax."""
    return Formal(ftype, name)


class LindaTuple:
    """An immutable tuple-space tuple.

    Thin wrapper over a Python tuple that validates field types once at
    construction and pre-computes the signature and hash.  Instances are
    value objects: two tuples with equal fields are equal and hash alike,
    which gives tuple space its multiset (bag) semantics.
    """

    __slots__ = ("fields", "signature", "_hash")

    def __init__(self, fields: Sequence[Any]):
        fields = tuple(fields)
        if not fields:
            raise TupleError("tuples must have at least one field")
        for i, v in enumerate(fields):
            if isinstance(v, Formal):
                raise TupleError(
                    f"field {i}: formals are only allowed in patterns, not tuples"
                )
            if not is_valid_field(v):
                raise TupleError(
                    f"field {i}: {type(v).__name__} is not an allowed field type"
                )
        self.fields = fields
        self.signature = tuple(type_name(type(v)) for v in fields)
        self._hash = hash(fields)

    @property
    def arity(self) -> int:
        """Number of fields."""
        return len(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __getitem__(self, i: int) -> Any:
        return self.fields[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LindaTuple):
            return self.fields == other.fields
        if isinstance(other, tuple):
            return self.fields == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        return f"({inner})"


def make_tuple(*fields: Any) -> LindaTuple:
    """Build a :class:`LindaTuple` from positional fields.

    ``make_tuple("count", 0)`` is the paper's ``("count", 0)``.
    """
    return LindaTuple(fields)


class Pattern:
    """A match template: actuals mixed with :class:`Formal` wildcards.

    The pattern pre-computes everything the matcher needs: its signature
    (exact when fully typed), the positions and expected values of its
    actuals, and the positions/types/names of its formals.
    """

    __slots__ = (
        "fields",
        "arity",
        "signature",
        "exact_signature",
        "actual_positions",
        "formal_positions",
        "names",
        "_first_actual",
    )

    def __init__(self, fields: Sequence[Any]):
        fields = tuple(fields)
        if not fields:
            raise TupleError("patterns must have at least one field")
        actuals: list[tuple[int, Any]] = []
        formals: list[tuple[int, Formal]] = []
        names: list[str] = []
        sig: list[str] = []
        exact = True
        for i, f in enumerate(fields):
            if isinstance(f, Formal):
                formals.append((i, f))
                sig.append(type_name(f.ftype))
                if not f.typed:
                    exact = False
                if f.name is not None:
                    if f.name in names:
                        raise TupleError(
                            f"duplicate formal name {f.name!r} in pattern"
                        )
                    names.append(f.name)
            else:
                if not is_valid_field(f):
                    raise TupleError(
                        f"field {i}: {type(f).__name__} is not an allowed field type"
                    )
                actuals.append((i, f))
                sig.append(type_name(type(f)))
        self.fields = fields
        self.arity = len(fields)
        self.signature = tuple(sig)
        self.exact_signature = exact
        self.actual_positions = tuple(actuals)
        self.formal_positions = tuple(formals)
        self.names = tuple(names)
        self._first_actual = fields[0] if actuals and actuals[0][0] == 0 else None

    @property
    def first_actual(self) -> Any:
        """Value of field 0 when it is an actual, else ``None``.

        Real Linda kernels hash on the first field because by convention it
        names the logical channel ("count", "subtask", …); the store keeps
        a secondary index keyed on it.
        """
        return self._first_actual

    def matches(self, tup: LindaTuple) -> bool:
        """True when this pattern matches *tup* (no binding produced)."""
        if tup.arity != self.arity:
            return False
        flds = tup.fields
        for i, expected in self.actual_positions:
            v = flds[i]
            if type(v) is not type(expected) or v != expected:
                return False
        for i, fm in self.formal_positions:
            if not fm.matches_value(flds[i]):
                return False
        return True

    def bind(self, tup: LindaTuple) -> dict[str, Any]:
        """Binding of named formals against *tup* (assumes it matches)."""
        out: dict[str, Any] = {}
        for i, fm in self.formal_positions:
            if fm.name is not None:
                out[fm.name] = tup.fields[i]
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Pattern) and other.fields == self.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        return f"Pattern({inner})"


def signature_of(fields: Iterable[Any]) -> tuple[str, ...]:
    """Signature (ordered type-name list) of a sequence of actual values."""
    return tuple(type_name(type(v)) for v in fields)


def pattern_signature(pattern: Pattern) -> tuple[str, ...]:
    """Signature of a pattern (formals contribute their declared type)."""
    return pattern.signature


def match(pattern: Pattern, tup: LindaTuple) -> Mapping[str, Any] | None:
    """Match *pattern* against *tup*.

    Returns the binding mapping (possibly empty) on success, ``None`` on
    failure — the one-call form used throughout the tests.
    """
    if not pattern.matches(tup):
        return None
    return pattern.bind(tup)
