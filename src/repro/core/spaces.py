"""Multiple tuple spaces: attributes, handles and the space registry.

FT-Linda generalizes Linda's single global tuple space to many, each
created with two attributes (Sec. 3 of the paper):

- **resilience** — ``STABLE`` spaces survive processor failures (they are
  replicated on every host by the state-machine layer); ``VOLATILE``
  spaces are as fast as ordinary memory but lost on a crash.
- **scope** — ``SHARED`` spaces are accessible to every process;
  ``PRIVATE`` spaces belong to a single logical process (used e.g. to
  checkpoint a worker's private state into a stable private space).

A :class:`TSHandle` is the value processes pass around to name a space
(handles are themselves valid tuple fields, so a tuple can carry a handle
to another space).  The :class:`SpaceRegistry` owns handle allocation and
the :class:`~repro.core.matching.TupleStore` of every live space; it is
part of the replicated state, so handle ids must be allocated
deterministically — they are, by a plain counter driven from the totally
ordered command stream.
"""

from __future__ import annotations

import enum
from typing import Any, Iterator, Mapping

from repro._errors import ScopeError, SpaceError
from repro.core.matching import StoreImage, TupleStore
from repro.core.tuples import register_field_type

__all__ = [
    "Resilience",
    "Scope",
    "TSHandle",
    "SpaceRegistry",
    "RegistryImage",
    "MAIN_TS",
]


class Resilience(enum.Enum):
    """Whether a space's contents survive host crashes."""

    STABLE = "stable"
    VOLATILE = "volatile"


class Scope(enum.Enum):
    """Who may operate on a space."""

    SHARED = "shared"
    PRIVATE = "private"


class TSHandle:
    """An opaque, hashable name for a tuple space.

    Handles are immutable value objects; equality is by id.  The default
    shared stable space has id 0 and is exported as :data:`MAIN_TS`.
    """

    __slots__ = ("id", "name", "resilience", "scope")

    def __init__(self, id: int, name: str, resilience: Resilience, scope: Scope):
        self.id = id
        self.name = name
        self.resilience = resilience
        self.scope = scope

    @property
    def stable(self) -> bool:
        return self.resilience is Resilience.STABLE

    @property
    def shared(self) -> bool:
        return self.scope is Scope.SHARED

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TSHandle) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("TSHandle", self.id))

    def __repr__(self) -> str:
        return (
            f"TS<{self.name}#{self.id} {self.resilience.value},{self.scope.value}>"
        )


register_field_type(TSHandle)

#: Handle of the default shared, stable tuple space every runtime creates.
MAIN_TS = TSHandle(0, "main", Resilience.STABLE, Scope.SHARED)


class SpaceRegistry:
    """Allocation and lookup of tuple spaces.

    One registry instance exists per state-machine replica (for stable
    spaces) and per host (for volatile spaces).  All mutating entry points
    are deterministic functions of their arguments so that replicas stay
    identical.
    """

    def __init__(self, *, create_main: bool = True, first_id: int = 1):
        # Distributed runtimes give host-local (volatile) registries a
        # disjoint id range so volatile handles can never collide with the
        # replicated stable ones.
        self._next_id = first_id  # 0 is MAIN_TS
        self._spaces: dict[int, TupleStore] = {}
        self._handles: dict[int, TSHandle] = {}
        self._owners: dict[int, int | None] = {}  # ts id -> owning process id
        if create_main:
            self._spaces[MAIN_TS.id] = TupleStore()
            self._handles[MAIN_TS.id] = MAIN_TS
            self._owners[MAIN_TS.id] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def create(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        """``ts_create``: allocate a new, empty tuple space.

        *owner* is the process id that owns a ``PRIVATE`` space; it is
        ignored (and normalized to ``None``) for shared spaces.
        """
        if scope is Scope.PRIVATE and owner is None:
            raise SpaceError("private tuple spaces require an owner process id")
        hid = self._next_id
        self._next_id += 1
        handle = TSHandle(hid, name, resilience, scope)
        self._spaces[hid] = TupleStore()
        self._handles[hid] = handle
        self._owners[hid] = owner if scope is Scope.PRIVATE else None
        return handle

    def adopt(self, handle: TSHandle, owner: int | None = None) -> TSHandle:
        """Register an existing *handle* with a fresh, empty store.

        Used by the sharded router's scratch state machines: a cross-shard
        AGS executes against a throwaway registry holding only the spaces
        it touches, under their *original* handles (ids allocated by the
        real replicated registries).  Adopting never advances ``_next_id``
        and is a no-op when the handle is already registered.
        """
        if handle.id in self._spaces:
            return self._handles[handle.id]
        self._spaces[handle.id] = TupleStore()
        self._handles[handle.id] = handle
        self._owners[handle.id] = owner if handle.scope is Scope.PRIVATE else None
        return handle

    def destroy(self, handle: TSHandle) -> None:
        """``ts_destroy``: drop a space and all its tuples."""
        if handle.id == MAIN_TS.id:
            raise SpaceError("the main tuple space cannot be destroyed")
        if handle.id not in self._spaces:
            raise SpaceError(f"unknown or already-destroyed tuple space {handle!r}")
        del self._spaces[handle.id]
        del self._handles[handle.id]
        del self._owners[handle.id]

    def destroy_owned_by(self, process_id: int) -> list[TSHandle]:
        """Drop every private space owned by *process_id* (process exit)."""
        doomed = [
            self._handles[hid]
            for hid, owner in self._owners.items()
            if owner == process_id
        ]
        for h in doomed:
            self.destroy(h)
        return doomed

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def store(self, handle: TSHandle, *, accessor: int | None = None) -> TupleStore:
        """The backing store of *handle*, with a private-scope check.

        *accessor* is the calling process id; pass ``None`` for internal
        (runtime) access, which bypasses the ownership check.
        """
        try:
            store = self._spaces[handle.id]
        except KeyError:
            raise SpaceError(f"unknown or destroyed tuple space {handle!r}") from None
        owner = self._owners[handle.id]
        if owner is not None and accessor is not None and accessor != owner:
            raise ScopeError(
                f"process {accessor} may not access private space {handle!r} "
                f"owned by process {owner}"
            )
        return store

    def exists(self, handle: TSHandle) -> bool:
        return handle.id in self._spaces

    def handles(self) -> list[TSHandle]:
        """All live handles, in creation (id) order."""
        return [self._handles[hid] for hid in sorted(self._handles)]

    def stable_handles(self) -> list[TSHandle]:
        return [h for h in self.handles() if h.stable]

    def __iter__(self) -> Iterator[tuple[TSHandle, TupleStore]]:
        for hid in sorted(self._spaces):
            yield self._handles[hid], self._spaces[hid]

    def __len__(self) -> int:
        return len(self._spaces)

    # ------------------------------------------------------------------ #
    # replication support
    # ------------------------------------------------------------------ #

    def snapshot(self, *, stable_only: bool = True) -> dict[str, Any]:
        """Serializable image of the registry for state transfer."""
        spaces = []
        for hid in sorted(self._spaces):
            h = self._handles[hid]
            if stable_only and not h.stable:
                continue
            spaces.append(
                {
                    "id": h.id,
                    "name": h.name,
                    "resilience": h.resilience.value,
                    "scope": h.scope.value,
                    "owner": self._owners[hid],
                    "store": self._spaces[hid].snapshot(),
                }
            )
        return {"next_id": self._next_id, "spaces": spaces}

    def cow_image(self, *, stable_only: bool = False) -> "RegistryImage":
        """Copy-on-write registry image; O(dirty buckets + live spaces).

        Per-space metadata is tiny and rebuilt every call; the tuple data
        — the part that scales — goes through each store's
        :meth:`~repro.core.matching.TupleStore.cow_image`, so spaces (and
        buckets) untouched since the previous image are shared, not
        copied.  The result serializes to exactly :meth:`snapshot`'s
        shape via :meth:`RegistryImage.to_snapshot`.
        """
        spaces: list[tuple[tuple, StoreImage]] = []
        for hid in sorted(self._spaces):
            h = self._handles[hid]
            if stable_only and not h.stable:
                continue
            meta = (
                h.id, h.name, h.resilience.value, h.scope.value,
                self._owners[hid],
            )
            spaces.append((meta, self._spaces[hid].cow_image()))
        return RegistryImage(self._next_id, tuple(spaces))

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, Any]) -> "SpaceRegistry":
        reg = cls(create_main=False)
        reg._next_id = snap["next_id"]
        for sp in snap["spaces"]:
            handle = TSHandle(
                sp["id"], sp["name"], Resilience(sp["resilience"]), Scope(sp["scope"])
            )
            reg._handles[handle.id] = handle
            reg._owners[handle.id] = sp["owner"]
            reg._spaces[handle.id] = TupleStore.from_snapshot(sp["store"])
        return reg

    def fingerprint(self) -> int:
        """Order-insensitive, process-independent hash of all spaces."""
        from repro.core.matching import stable_hash

        acc = stable_hash(self._next_id)
        for hid in sorted(self._spaces):
            h = self._handles[hid]
            acc ^= stable_hash(
                (h.id, h.name, h.resilience, h.scope, self._owners[hid])
            )
            acc ^= self._spaces[hid].fingerprint() * (hid + 1)
        return acc


class RegistryImage:
    """Immutable COW image of a :class:`SpaceRegistry` (see ``cow_image``)."""

    __slots__ = ("next_id", "spaces")

    def __init__(self, next_id: int, spaces: tuple):
        self.next_id = next_id
        #: ``((id, name, resilience, scope, owner), StoreImage)`` pairs in
        #: ascending handle-id order.
        self.spaces = spaces

    def to_snapshot(self) -> dict[str, Any]:
        """The canonical :meth:`SpaceRegistry.snapshot` dict (O(n) merge)."""
        spaces = []
        for (hid, name, resilience, scope, owner), image in self.spaces:
            spaces.append(
                {
                    "id": hid,
                    "name": name,
                    "resilience": resilience,
                    "scope": scope,
                    "owner": owner,
                    "store": image.to_snapshot(),
                }
            )
        return {"next_id": self.next_id, "spaces": spaces}
