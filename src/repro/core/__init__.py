"""Core FT-Linda machinery: tuples, matching, tuple spaces, AGS, runtime."""
