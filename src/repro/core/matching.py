"""Signature-indexed tuple store with deterministic matching.

This is the matching engine underneath every tuple space in the library.
Two properties matter and are enforced here:

**Associative lookup is indexed.**  Following the paper's FT-lcc, which
"analyzes and catalogs the signatures of all patterns" (Sec. 5.2), tuples
are bucketed by *signature* (the ordered list of field type names) and,
within a bucket, by the value of their first field when real programs use
it as a logical channel name ("count", "subtask", …).  A pattern whose
formals are all typed resolves to exactly one bucket; untyped formals fall
back to scanning every arity-compatible bucket.

**Matching is deterministic.**  Replicated state machines (Sec. 5) only
stay consistent if every replica, given the same operation sequence, picks
the *same* tuple for every ``in``/``rd``.  The store therefore stamps each
tuple with a monotonically increasing sequence number and always returns
the *oldest* match (smallest sequence number), the "oldest matching
semantics" the paper attributes to [27].  Iteration order, ``find_all``
order and snapshots are equally deterministic.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Iterator, Mapping

from repro.core.tuples import Formal, LindaTuple, Pattern, type_name

__all__ = [
    "ANY_FIRST",
    "Match",
    "StoreImage",
    "TupleStore",
    "pattern_key",
    "shard_key",
    "shard_of",
    "stable_hash",
]

#: Process-wide gate for per-template match statistics.  Off by default so
#: the match hot path pays exactly one ``is not None`` branch; flipped by
#: :func:`repro.obs.inspect.enable_introspection`, which also exports
#: ``REPRO_INTROSPECT=1`` so spawned replica processes (multiproc backend)
#: come up instrumented too — this module reads the variable at import.
STATS_ENABLED = os.environ.get("REPRO_INTROSPECT", "") == "1"


#: Wildcard partition key: "any first field".  A plain string (picklable,
#: repr-stable) rather than a singleton object so it survives process
#: boundaries by value.  A shard *selector* carrying this value matches
#: every tuple of the space; an AGS whose first field is only known at
#: execution time classifies to this and takes the cross-shard path.
ANY_FIRST = "<any-first-field>"


def stable_hash(obj: Any) -> int:
    """A hash that is identical across *processes* (unlike ``hash(str)``).

    Python salts string hashing per process (PYTHONHASHSEED), so replica
    fingerprints built on ``hash()`` would differ between spawned replica
    processes even for identical state.  ``repr`` of our field values
    (scalars, nested tuples, TSHandles, enums) is canonical, so hashing
    its bytes gives a process-independent digest.
    """
    digest = hashlib.blake2b(repr(obj).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big", signed=True)


def shard_key(space_id: int, first_field: Any) -> int:
    """Stable partition key of ``(space, first-field signature)``.

    Every component that maps a tuple or template to a shard — the AGS
    classifier, the ShardedGroup router, the cross-shard scatter path —
    MUST derive the shard through this helper (or :func:`shard_of`), never
    through builtin ``hash()``: clients and replicas live in different
    processes, and ``hash(str)`` is salted per process (PYTHONHASHSEED),
    so a builtin-hash partitioner would route the same tuple to different
    shards on different hosts.  ``repr`` of field values is canonical
    (same property :func:`stable_hash` relies on for fingerprints), so
    hashing its bytes is process-independent.
    """
    key = (space_id, type(first_field), first_field)
    try:
        cached = _shard_key_cache.get(key)
    except TypeError:  # unhashable first field: compute, skip the cache
        key = None
        cached = None
    if cached is not None:
        return cached
    payload = repr((space_id, first_field)).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    value = int.from_bytes(digest, "big", signed=False)
    if key is not None:
        if len(_shard_key_cache) >= _SHARD_KEY_CACHE_CAP:
            _shard_key_cache.clear()
        _shard_key_cache[key] = value
    return value


#: Process-local memo for :func:`shard_key` — routing sits on the submit
#: hot path and real workloads reuse a small set of channel names.  The
#: cache key is type-qualified because ``1``, ``1.0`` and ``True`` are
#: ``==``/hash-equal yet repr (hence shard) distinct; a plain value key
#: would silently alias them.  Using builtin hashing *for the memo* is
#: fine: a hit returns the same digest the miss path would compute.
_shard_key_cache: dict[tuple[int, type, Any], int] = {}
_SHARD_KEY_CACHE_CAP = 1 << 16


def shard_of(space_id: int, first_field: Any, n_shards: int) -> int:
    """The shard owning tuples of *space_id* whose first field is *first_field*."""
    if n_shards <= 1:
        return 0
    return shard_key(space_id, first_field) % n_shards


class Match:
    """Result of a successful match: the tuple, its id and the binding."""

    __slots__ = ("seqno", "tup", "binding")

    def __init__(self, seqno: int, tup: LindaTuple, binding: Mapping[str, Any]):
        self.seqno = seqno
        self.tup = tup
        self.binding = binding

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Match(#{self.seqno}, {self.tup!r}, {dict(self.binding)!r})"


def _hashable(value: Any) -> bool:
    # All allowed field types are hashable; nested tuples of them are too.
    return True


def pattern_key(pattern: Pattern) -> str:
    """Canonical template string of *pattern* for the match profiler.

    Actuals render as their repr, formals as ``?typename`` with names
    stripped — so ``in(ts, "task", ?x:int)`` and ``in(ts, "task", ?y:int)``
    profile as the same hot template ``("task", ?int)``, matching the
    static keys :meth:`repro.core.ags.Op.template_key` derives for parked
    guards.
    """
    parts = [
        f"?{type_name(f.ftype)}" if isinstance(f, Formal) else repr(f)
        for f in pattern.fields
    ]
    return f"({', '.join(parts)})"


class _StoreStats:
    """Per-store match-profiler state (exists only when introspection is on)."""

    __slots__ = ("attempts", "hits")

    def __init__(self) -> None:
        self.attempts: dict[str, int] = {}
        self.hits: dict[str, int] = {}


class StoreImage:
    """Immutable copy-on-write image of a :class:`TupleStore`.

    Per-signature bucket tuples of ``(seqno, fields)`` pairs, each sorted
    by seqno.  Successive images share the bucket tuples of every bucket
    that was not mutated between them — the incremental-snapshot
    mechanism: building an image costs O(dirty buckets), holding one
    costs only the delta against its predecessor.
    """

    __slots__ = ("next_seq", "buckets")

    def __init__(
        self,
        next_seq: int,
        buckets: dict[tuple[str, ...], tuple[tuple[int, tuple], ...]],
    ):
        self.next_seq = next_seq
        self.buckets = buckets

    def __len__(self) -> int:
        return sum(len(b) for b in self.buckets.values())

    def to_snapshot(self) -> dict[str, Any]:
        """The canonical flat snapshot dict (``TupleStore.snapshot`` shape).

        This is the O(n) merge step; callers run it *off* the apply
        loop's lock — the image itself is immutable, so serialization
        never contends with writers.
        """
        entries: list[tuple[int, tuple]] = []
        for bucket in self.buckets.values():
            entries.extend(bucket)
        entries.sort(key=lambda e: e[0])
        return {"next_seq": self.next_seq, "entries": entries}

    def to_store(self) -> "TupleStore":
        """Materialize a store equal to the image's source at image time."""
        return TupleStore.from_snapshot(self.to_snapshot())


class TupleStore:
    """A multiset of tuples with indexed, deterministic associative lookup.

    The store is a pure data structure: no locking, no blocking.  Blocking
    semantics (``in`` waiting for a tuple) are layered on top by the state
    machine and runtimes.
    """

    __slots__ = (
        "_next_seq", "_by_sig", "_key_index", "_size", "_stats",
        "_dirty", "_image",
    )

    def __init__(self) -> None:
        self._next_seq = 0
        # signature -> {seqno: tuple}, insertion ordered (dicts preserve it)
        self._by_sig: dict[tuple[str, ...], dict[int, LindaTuple]] = {}
        # (signature, first-field value) -> {seqno: tuple}
        self._key_index: dict[tuple[tuple[str, ...], Any], dict[int, LindaTuple]] = {}
        self._size = 0
        self._stats = _StoreStats() if STATS_ENABLED else None
        # Buckets mutated since the last cow_image(); cleared there.  Every
        # mutation path (add/_remove_entry/reinsert) marks its signature,
        # so "not dirty" is a proof the cached bucket image is still exact.
        self._dirty: set[tuple[str, ...]] = set()
        self._image: StoreImage | None = None

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, tup: LindaTuple) -> int:
        """Deposit *tup*; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        sig = tup.signature
        self._by_sig.setdefault(sig, {})[seq] = tup
        self._key_index.setdefault((sig, tup.fields[0]), {})[seq] = tup
        self._size += 1
        self._dirty.add(sig)
        return seq

    def _remove_entry(self, sig: tuple[str, ...], seqno: int, tup: LindaTuple) -> None:
        bucket = self._by_sig[sig]
        del bucket[seqno]
        if not bucket:
            del self._by_sig[sig]
        kkey = (sig, tup.fields[0])
        kbucket = self._key_index[kkey]
        del kbucket[seqno]
        if not kbucket:
            del self._key_index[kkey]
        self._size -= 1
        self._dirty.add(sig)

    def reinsert(self, seqno: int, tup: LindaTuple) -> None:
        """Undo support: put back a withdrawn tuple under its original id.

        Restoring the original sequence number keeps oldest-first matching
        deterministic across an abort/rollback — the tuple regains exactly
        the priority it had.  Buckets are re-sorted by seqno to restore the
        insertion-order invariant the matcher relies on.
        """
        sig = tup.signature
        bucket = self._by_sig.setdefault(sig, {})
        bucket[seqno] = tup
        if any(s > seqno for s in bucket if s != seqno):
            ordered = dict(sorted(bucket.items()))
            bucket.clear()
            bucket.update(ordered)
        kkey = (sig, tup.fields[0])
        kbucket = self._key_index.setdefault(kkey, {})
        kbucket[seqno] = tup
        if any(s > seqno for s in kbucket if s != seqno):
            ordered = dict(sorted(kbucket.items()))
            kbucket.clear()
            kbucket.update(ordered)
        self._size += 1
        self._dirty.add(sig)

    def remove_seqno(self, seqno: int, tup: LindaTuple) -> None:
        """Undo support: withdraw the specific tuple deposited as *seqno*."""
        self._remove_entry(tup.signature, seqno, tup)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def _candidate_buckets(
        self, pattern: Pattern
    ) -> list[tuple[tuple[str, ...], dict[int, LindaTuple]]]:
        """Buckets that could contain a match, cheapest index first."""
        if pattern.exact_signature:
            sig = pattern.signature
            if pattern.first_actual is not None:
                bucket = self._key_index.get((sig, pattern.first_actual))
                return [(sig, bucket)] if bucket else []
            bucket = self._by_sig.get(sig)
            return [(sig, bucket)] if bucket else []
        # Untyped formals: scan arity-compatible buckets whose signature
        # agrees with the pattern at every typed position.  When the first
        # field is a bound actual (the usual channel-name idiom), narrow
        # each compatible signature through the key index instead — buckets
        # holding no tuple with that first field are skipped entirely.
        out = []
        psig = pattern.signature
        arity = pattern.arity
        first = pattern.first_actual
        wild = {i for i, f in pattern.formal_positions if not f.typed}
        for sig, bucket in self._by_sig.items():
            if len(sig) != arity:
                continue
            if not all(sig[i] == psig[i] for i in range(arity) if i not in wild):
                continue
            if first is not None:
                keyed = self._key_index.get((sig, first))
                if keyed:
                    out.append((sig, keyed))
                continue
            out.append((sig, bucket))
        return out

    def find(self, pattern: Pattern, *, remove: bool) -> Match | None:
        """Oldest tuple matching *pattern*; optionally withdraw it.

        This is the engine behind ``in``/``inp`` (``remove=True``) and
        ``rd``/``rdp`` (``remove=False``).
        """
        best_seq: int | None = None
        best_tup: LindaTuple | None = None
        best_sig: tuple[str, ...] | None = None
        for sig, bucket in self._candidate_buckets(pattern):
            for seqno, tup in bucket.items():
                if best_seq is not None and seqno >= best_seq:
                    # buckets are insertion ordered: nothing older remains
                    break
                if pattern.matches(tup):
                    best_seq, best_tup, best_sig = seqno, tup, sig
                    break
        st = self._stats
        if st is not None:
            key = pattern_key(pattern)
            st.attempts[key] = st.attempts.get(key, 0) + 1
            if best_seq is not None:
                st.hits[key] = st.hits.get(key, 0) + 1
        if best_seq is None:
            return None
        assert best_tup is not None and best_sig is not None
        if remove:
            self._remove_entry(best_sig, best_seq, best_tup)
        return Match(best_seq, best_tup, pattern.bind(best_tup))

    def find_all(self, pattern: Pattern, *, remove: bool) -> list[Match]:
        """All matches in sequence-number order (engine behind move/copy)."""
        hits: list[tuple[int, tuple[str, ...], LindaTuple]] = []
        for sig, bucket in self._candidate_buckets(pattern):
            for seqno, tup in bucket.items():
                if pattern.matches(tup):
                    hits.append((seqno, sig, tup))
        hits.sort(key=lambda h: h[0])
        st = self._stats
        if st is not None:
            key = pattern_key(pattern)
            st.attempts[key] = st.attempts.get(key, 0) + 1
            if hits:
                st.hits[key] = st.hits.get(key, 0) + 1
        if remove:
            for seqno, sig, tup in hits:
                self._remove_entry(sig, seqno, tup)
        return [Match(seqno, tup, pattern.bind(tup)) for seqno, sig, tup in hits]

    def withdraw_by_first(self, first: Any | None) -> list[tuple[int, tuple]]:
        """Withdraw every tuple whose first field equals *first* (``None`` → all).

        Returns ``(seqno, fields)`` pairs in deposit order — the cross-shard
        extraction primitive: a shard hands its slice of a partition to the
        coordinator with original sequence numbers attached, so oldest-first
        matching priority survives the round trip.  Untouched by the match
        profiler: this is replication plumbing, not an associative lookup.
        """
        doomed: list[tuple[int, tuple[str, ...], LindaTuple]] = []
        if first is None:
            for sig, bucket in self._by_sig.items():
                for seqno, tup in bucket.items():
                    doomed.append((seqno, sig, tup))
        else:
            for (sig, key), bucket in self._key_index.items():
                if key == first:
                    for seqno, tup in bucket.items():
                        doomed.append((seqno, sig, tup))
        doomed.sort(key=lambda e: e[0])
        for seqno, sig, tup in doomed:
            self._remove_entry(sig, seqno, tup)
        return [(seqno, tup.fields) for seqno, sig, tup in doomed]

    def count(self, pattern: Pattern) -> int:
        """Number of tuples currently matching *pattern*."""
        n = 0
        for _sig, bucket in self._candidate_buckets(pattern):
            for tup in bucket.values():
                if pattern.matches(tup):
                    n += 1
        return n

    def contains(self, pattern: Pattern) -> bool:
        """True when at least one tuple matches *pattern*."""
        return self.find(pattern, remove=False) is not None

    # ------------------------------------------------------------------ #
    # inspection / replication support
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[LindaTuple]:
        """Iterate all tuples in deposit (sequence-number) order."""
        entries: list[tuple[int, LindaTuple]] = []
        for bucket in self._by_sig.values():
            entries.extend(bucket.items())
        entries.sort(key=lambda e: e[0])
        return iter([t for _s, t in entries])

    def to_list(self) -> list[LindaTuple]:
        """All tuples in deposit order (a copy)."""
        return list(iter(self))

    def snapshot(self) -> dict[str, Any]:
        """Serializable image of the store, preserving sequence numbers.

        Used for state transfer when a recovering replica rejoins the group
        (Consul's restart protocol, Sec. 5) and by tests that assert
        replica convergence.
        """
        entries: list[tuple[int, tuple[Any, ...]]] = []
        for bucket in self._by_sig.values():
            for seqno, tup in bucket.items():
                entries.append((seqno, tup.fields))
        entries.sort(key=lambda e: e[0])
        return {"next_seq": self._next_seq, "entries": entries}

    def cow_image(self) -> StoreImage:
        """Incremental copy-on-write image; O(buckets mutated since last).

        Buckets untouched since the previous ``cow_image`` call reuse the
        previous image's bucket tuples by reference; only dirty buckets
        are re-copied.  Callers run this *under* whatever lock serializes
        mutations (the apply-loop lock) — it is the cheap half of
        snapshotting; the expensive merge/serialize half lives on the
        returned immutable image and runs lock-free.
        """
        prev = self._image
        if prev is not None and not self._dirty:
            return prev
        buckets: dict[tuple[str, ...], tuple[tuple[int, tuple], ...]] = {}
        for sig, bucket in self._by_sig.items():
            if prev is not None and sig not in self._dirty:
                cached = prev.buckets.get(sig)
                if cached is not None:
                    buckets[sig] = cached
                    continue
            buckets[sig] = tuple(
                (seqno, tup.fields) for seqno, tup in bucket.items()
            )
        image = StoreImage(self._next_seq, buckets)
        self._image = image
        self._dirty.clear()
        return image

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, Any]) -> "TupleStore":
        """Rebuild a store byte-for-byte equivalent to ``snapshot()``'s source."""
        store = cls()
        for seqno, fields in snap["entries"]:
            tup = LindaTuple(fields)
            sig = tup.signature
            store._by_sig.setdefault(sig, {})[seqno] = tup
            store._key_index.setdefault((sig, tup.fields[0]), {})[seqno] = tup
            store._size += 1
        store._next_seq = snap["next_seq"]
        return store

    def introspect(self) -> dict[str, Any]:
        """Live-state image for the introspection layer (plain data).

        Occupancy and byte gauges are computed on demand — the hot path
        never maintains them — so a dashboard refresh costs one pass over
        the store, not every ``out`` a bookkeeping write.  ``skew`` is
        max-bucket / mean-bucket: 1.0 means perfectly balanced signature
        buckets, large values mean one signature dominates and untyped
        scans degrade toward linear.
        """
        sizes = [len(b) for b in self._by_sig.values()]
        n_buckets = len(sizes)
        max_bucket = max(sizes) if sizes else 0
        mean_bucket = self._size / n_buckets if n_buckets else 0.0
        st = self._stats
        templates = []
        if st is not None:
            for key, attempts in st.attempts.items():
                templates.append(
                    {
                        "template": key,
                        "attempts": attempts,
                        "hits": st.hits.get(key, 0),
                    }
                )
            templates.sort(key=lambda t: (-t["attempts"], t["template"]))
        nbytes = 0
        for bucket in self._by_sig.values():
            for tup in bucket.values():
                nbytes += len(repr(tup.fields))
        return {
            "tuples": self._size,
            "bytes": nbytes,
            "buckets": n_buckets,
            "max_bucket": max_bucket,
            "skew": (max_bucket / mean_bucket) if mean_bucket else 0.0,
            "templates": templates,
        }

    def fingerprint(self) -> int:
        """Order-sensitive hash of (seqno, fields) pairs.

        Two replicas that applied the same command sequence must have equal
        fingerprints; property tests assert exactly that.
        """
        acc = 0
        for bucket in self._by_sig.values():
            for seqno, tup in bucket.items():
                acc ^= stable_hash((seqno, tup.fields))
        return acc
