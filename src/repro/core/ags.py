"""Atomic guarded statements (AGS) — FT-Linda's atomicity construct.

An AGS is written ``< guard => body >`` in the paper: *guard* is a single
(possibly blocking) tuple-space operation or ``true``, and *body* is a
sequence of tuple-space operations executed **atomically** — all-or-nothing
with respect to both concurrency and failures (Sec. 3).  Disjunction
composes alternatives::

    < in(TS, "a", ?x) => out(TS, "b", x)
      or
      rd(TS, "c", ?y) => out(TS, "d", y) >

The statement blocks until some branch's guard can fire, then executes that
branch's body atomically.

The implementation trick that makes a *single multicast per AGS* possible
(the paper's headline efficiency claim) is that bodies are restricted so
every replica can execute them deterministically with no further
communication.  Concretely, this module enforces:

- no process creation (``eval``) inside an AGS;
- every operand is a constant, a formal bound by the guard (or an earlier
  body operation of the same branch), or a *deterministic expression* over
  those (registered pure functions only — see :func:`register_function`);
- ``in``/``rd`` in a *body* must match at execution time — if they do not,
  the whole AGS aborts and is rolled back (still all-or-nothing, and still
  deterministic because all replicas see identical state);
- ``inp``/``rdp`` never block: as guards they make the AGS non-blocking,
  and in bodies they bind their formals only on success.

The classes here are the *compiled* representation — what the paper's
FT-lcc precompiler emits as "opcode/operand" request blocks (Sec. 5.2).
The textual front end lives in :mod:`repro.lcc`; a Pythonic builder DSL
lives in :mod:`repro.dsl`.  Everything is picklable so requests can cross
process boundaries in the multiprocessing backend.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Mapping, Sequence

from repro._errors import (
    AGSError,
    FormalBindingError,
    NotDeterministicError,
)
from repro.core.matching import ANY_FIRST, shard_of
from repro.core.spaces import TSHandle
from repro.core.tuples import Formal, Pattern, is_valid_field

__all__ = [
    "AGS",
    "AGSResult",
    "Branch",
    "Const",
    "Expr",
    "FormalRef",
    "Guard",
    "GuardKind",
    "Op",
    "OpCode",
    "Operand",
    "as_operand",
    "ref",
    "register_function",
]


# --------------------------------------------------------------------------- #
# operands: constants, formal references, deterministic expressions
# --------------------------------------------------------------------------- #


class Operand:
    """Base class of values computed when an AGS branch executes.

    Operands support arithmetic/comparison operators, each of which builds
    an :class:`Expr` node — so ``ref("old") + 1`` is a deterministic
    expression the replicas can all evaluate identically.
    """

    __slots__ = ()

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def free_names(self) -> frozenset[str]:
        """Formal names this operand reads (for bind-before-use checking)."""
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------- #
    def _binop(self, fn: str, other: Any, *, swap: bool = False) -> "Expr":
        other = as_operand(other)
        args = (other, self) if swap else (self, other)
        return Expr(fn, args)

    def __add__(self, o: Any) -> "Expr":
        return self._binop("add", o)

    def __radd__(self, o: Any) -> "Expr":
        return self._binop("add", o, swap=True)

    def __sub__(self, o: Any) -> "Expr":
        return self._binop("sub", o)

    def __rsub__(self, o: Any) -> "Expr":
        return self._binop("sub", o, swap=True)

    def __mul__(self, o: Any) -> "Expr":
        return self._binop("mul", o)

    def __rmul__(self, o: Any) -> "Expr":
        return self._binop("mul", o, swap=True)

    def __floordiv__(self, o: Any) -> "Expr":
        return self._binop("floordiv", o)

    def __truediv__(self, o: Any) -> "Expr":
        return self._binop("truediv", o)

    def __mod__(self, o: Any) -> "Expr":
        return self._binop("mod", o)

    def __neg__(self) -> "Expr":
        return Expr("neg", (self,))


class Const(Operand):
    """A literal operand, fixed when the AGS is built."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        if not (is_valid_field(value) or isinstance(value, TSHandle)):
            raise AGSError(f"constant {value!r} is not a valid tuple field value")
        self.value = value

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.value

    def free_names(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class FormalRef(Operand):
    """Reference to a formal bound earlier in the same branch.

    The paper's bodies use the guard's formals as operands, e.g.
    ``< in(TS,"count",?old) => out(TS,"count",old+1) >`` — ``old`` in the
    body is a :class:`FormalRef`.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        try:
            return env[self.name]
        except KeyError:
            raise FormalBindingError(
                f"formal {self.name!r} is not bound at this point"
            ) from None

    def free_names(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return f"${self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FormalRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("FormalRef", self.name))


def ref(name: str) -> FormalRef:
    """Shorthand for :class:`FormalRef`."""
    return FormalRef(name)


#: Registry of pure, deterministic functions usable in AGS expressions.
#: Replicas evaluate expressions independently; anything here MUST be a
#: pure function of its arguments (no randomness, clocks, or I/O).
_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "floordiv": lambda a, b: a // b,
    "truediv": lambda a, b: a / b,
    "mod": lambda a, b: a % b,
    "neg": lambda a: -a,
    "min": min,
    "max": max,
    "abs": abs,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "not": lambda a: not a,
    "and": lambda a, b: bool(a and b),
    "or": lambda a, b: bool(a or b),
    "concat": lambda a, b: a + b,
    "tuple": lambda *a: tuple(a),
    "nth": lambda t, i: t[i],
    "len": len,
}


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Register a *pure, deterministic* function for AGS expressions.

    This is the hook applications use to push small computations into the
    atomic body (the paper's divide-and-conquer example splits a subtask
    inside the AGS).  Registering a non-deterministic function breaks
    replica consistency — the contract is the caller's to honor.
    """
    if name in _FUNCTIONS:
        raise AGSError(f"function {name!r} is already registered")
    _FUNCTIONS[name] = fn


class Expr(Operand):
    """Application of a registered deterministic function to operands."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: str, args: Sequence[Operand | Any]):
        if fn not in _FUNCTIONS:
            raise NotDeterministicError(
                f"function {fn!r} is not registered as deterministic"
            )
        self.fn = fn
        self.args = tuple(as_operand(a) for a in args)

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return _FUNCTIONS[self.fn](*(a.evaluate(env) for a in self.args))

    def free_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_names()
        return out

    def __repr__(self) -> str:
        return f"{self.fn}({', '.join(map(repr, self.args))})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Expr) and other.fn == self.fn and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("Expr", self.fn, self.args))


def as_operand(value: Any) -> Operand:
    """Coerce *value*: operands pass through, raw values become constants."""
    if isinstance(value, Operand):
        return value
    return Const(value)


# --------------------------------------------------------------------------- #
# operations
# --------------------------------------------------------------------------- #


class OpCode(enum.Enum):
    """Tuple-space operation codes, as in the paper's request blocks."""

    OUT = "out"
    IN = "in"
    RD = "rd"
    INP = "inp"
    RDP = "rdp"
    MOVE = "move"
    COPY = "copy"

    @property
    def is_probe(self) -> bool:
        return self in (OpCode.INP, OpCode.RDP)

    @property
    def is_blocking(self) -> bool:
        return self in (OpCode.IN, OpCode.RD)

    @property
    def withdraws(self) -> bool:
        return self in (OpCode.IN, OpCode.INP, OpCode.MOVE)


class Op:
    """One tuple-space operation inside an AGS branch.

    ``fields`` mixes :class:`Operand` instances (actuals, possibly
    expressions over formals) with :class:`~repro.core.tuples.Formal`
    wildcards (for the matching operations).  For ``MOVE``/``COPY``,
    *ts2* is the destination space and ``fields`` is the pattern selecting
    which tuples to transfer (the paper's ``move(from, to, pattern)``).
    """

    __slots__ = ("code", "ts", "fields", "ts2")

    def __init__(
        self,
        code: OpCode,
        ts: TSHandle | Operand,
        fields: Sequence[Any],
        ts2: TSHandle | Operand | None = None,
    ):
        self.code = code
        self.ts = as_operand(ts) if not isinstance(ts, Operand) else ts
        if code in (OpCode.MOVE, OpCode.COPY):
            if ts2 is None:
                raise AGSError(f"{code.value} requires a destination tuple space")
            self.ts2 = as_operand(ts2) if not isinstance(ts2, Operand) else ts2
        else:
            if ts2 is not None:
                raise AGSError(f"{code.value} takes a single tuple space")
            self.ts2 = None
        norm: list[Any] = []
        for f in fields:
            if isinstance(f, Formal):
                if code is OpCode.OUT:
                    raise AGSError("out() fields must all be actuals, not formals")
                norm.append(f)
            else:
                norm.append(as_operand(f))
        if not norm:
            raise AGSError("operations need at least one field")
        if code in (OpCode.MOVE, OpCode.COPY):
            # move/copy act on *all* matching tuples, so a named formal
            # would have no single binding — the paper's move takes a plain
            # pattern.
            for f in norm:
                if isinstance(f, Formal) and f.name is not None:
                    raise AGSError(
                        f"{code.value} patterns may not contain named formals"
                    )
        self.fields = tuple(norm)

    # -- constructors, mirroring the paper's syntax --------------------- #

    @classmethod
    def out(cls, ts: TSHandle | Operand, *fields: Any) -> "Op":
        """``out(ts, f1, …)`` — deposit a tuple."""
        return cls(OpCode.OUT, ts, fields)

    @classmethod
    def in_(cls, ts: TSHandle | Operand, *fields: Any) -> "Op":
        """``in(ts, f1, …)`` — withdraw a matching tuple."""
        return cls(OpCode.IN, ts, fields)

    @classmethod
    def rd(cls, ts: TSHandle | Operand, *fields: Any) -> "Op":
        """``rd(ts, f1, …)`` — read a matching tuple without withdrawing."""
        return cls(OpCode.RD, ts, fields)

    @classmethod
    def inp(cls, ts: TSHandle | Operand, *fields: Any) -> "Op":
        """``inp`` — non-blocking ``in``; strong semantics in FT-Linda."""
        return cls(OpCode.INP, ts, fields)

    @classmethod
    def rdp(cls, ts: TSHandle | Operand, *fields: Any) -> "Op":
        """``rdp`` — non-blocking ``rd``; strong semantics in FT-Linda."""
        return cls(OpCode.RDP, ts, fields)

    @classmethod
    def move(cls, src: TSHandle | Operand, dst: TSHandle | Operand, *fields: Any) -> "Op":
        """``move(src, dst, pattern)`` — atomically transfer all matches."""
        return cls(OpCode.MOVE, src, fields, ts2=dst)

    @classmethod
    def copy(cls, src: TSHandle | Operand, dst: TSHandle | Operand, *fields: Any) -> "Op":
        """``copy(src, dst, pattern)`` — atomically duplicate all matches."""
        return cls(OpCode.COPY, src, fields, ts2=dst)

    # -- analysis -------------------------------------------------------- #

    def binds(self) -> tuple[str, ...]:
        """Names of formals this operation binds when it succeeds."""
        return tuple(
            f.name
            for f in self.fields
            if isinstance(f, Formal) and f.name is not None
        )

    def reads(self) -> frozenset[str]:
        """Formal names this operation's operands reference."""
        out: frozenset[str] = self.ts.free_names()
        if self.ts2 is not None:
            out |= self.ts2.free_names()
        for f in self.fields:
            if isinstance(f, Operand):
                out |= f.free_names()
        return out

    def resolve_pattern(self, env: Mapping[str, Any]) -> Pattern:
        """Evaluate operand fields under *env*, producing a match pattern."""
        fields = [
            f if isinstance(f, Formal) else f.evaluate(env) for f in self.fields
        ]
        return Pattern(fields)

    def resolve_values(self, env: Mapping[str, Any]) -> tuple[Any, ...]:
        """Evaluate all fields to concrete values (OUT only)."""
        return tuple(f.evaluate(env) for f in self.fields)  # type: ignore[union-attr]

    # -- introspection ---------------------------------------------------- #

    def static_ts(self) -> TSHandle | None:
        """The target space when it is statically known, else ``None``."""
        value = getattr(self.ts, "value", None)
        return value if isinstance(value, TSHandle) else None

    def template_key(self) -> str:
        """Canonical anti-tuple description of this operation's pattern.

        Same rendering as :func:`repro.core.matching.pattern_key` when
        every actual is a constant — so a waiter parked on
        ``in(ts, "task", ?int)`` correlates with the profiler's hot
        template ``("task", ?int)``.  Operands whose value is only known
        at execution time (formal refs, expressions) render as ``*``.
        """
        from repro.core.tuples import type_name

        parts = []
        for f in self.fields:
            if isinstance(f, Formal):
                parts.append(f"?{type_name(f.ftype)}")
            elif isinstance(f, Const):
                parts.append(repr(f.value))
            else:
                parts.append("*")
        return f"({', '.join(parts)})"

    def shard_hints(self) -> list[tuple[TSHandle | None, Any, bool]]:
        """Partition hints: ``(space, first-field value, extracts)`` per target.

        The shard classifier reduces an AGS to the set of
        ``(space, first-field)`` partitions it can touch.  Each hint's
        *space* is the statically known handle (``None`` when the space is
        itself an operand resolved at execution time), *first* is the
        first field's constant value or :data:`~repro.core.matching.
        ANY_FIRST` when it is a formal/expression, and *extracts* says
        whether the operation needs to *match* existing tuples there
        (guards, body in/rd/probes, and move/copy sources) as opposed to
        only depositing (``out`` and move/copy destinations).

        MOVE/COPY contribute two hints: the source (extracting) and the
        destination (deposit-only) — transferred tuples keep their first
        field, so the destination hint reuses the pattern's first value.
        """
        first_field = self.fields[0]
        first = first_field.value if isinstance(first_field, Const) else ANY_FIRST
        hints = [(self.static_ts(), first, self.code is not OpCode.OUT)]
        if self.ts2 is not None:
            dst = getattr(self.ts2, "value", None)
            hints.append((dst if isinstance(dst, TSHandle) else None, first, False))
        return hints

    def correlation_key(self) -> tuple[int | None, str, int]:
        """``(space_id, first_field, arity)`` for out-traffic correlation.

        ``space_id`` is ``None`` and ``first_field`` is ``"*"`` when not
        statically known; the stall detector treats both as wildcards.
        """
        ts = self.static_ts()
        first = self.fields[0]
        first_repr = repr(first.value) if isinstance(first, Const) else "*"
        return (ts.id if ts is not None else None, first_repr, len(self.fields))

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        if self.ts2 is not None:
            return f"{self.code.value}({self.ts!r} -> {self.ts2!r}; {inner})"
        return f"{self.code.value}({self.ts!r}; {inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Op)
            and other.code == self.code
            and other.ts == self.ts
            and other.ts2 == self.ts2
            and other.fields == self.fields
        )

    def __hash__(self) -> int:
        return hash((self.code, self.ts, self.ts2, self.fields))


# --------------------------------------------------------------------------- #
# guards and branches
# --------------------------------------------------------------------------- #


class GuardKind(enum.Enum):
    TRUE = "true"
    OP = "op"


class Guard:
    """The guard of an AGS branch: ``true`` or a single tuple operation.

    Blocking guards (``in``/``rd``) delay the branch until a match exists.
    Probe guards (``inp``/``rdp``) make the whole AGS non-blocking: when no
    branch can fire, the statement completes immediately having done
    nothing, and reports which (if any) branch fired — this is FT-Linda's
    *strong* ``inp``/``rdp`` semantics, possible because all operations are
    totally ordered (Sec. 6).
    """

    __slots__ = ("kind", "op")

    def __init__(self, kind: GuardKind, op: Op | None = None):
        if kind is GuardKind.OP:
            if op is None:
                raise AGSError("operation guards need an operation")
            if op.code not in (OpCode.IN, OpCode.RD, OpCode.INP, OpCode.RDP):
                raise AGSError(
                    f"{op.code.value} cannot be a guard (only in/rd/inp/rdp)"
                )
        elif op is not None:
            raise AGSError("true guards take no operation")
        self.kind = kind
        self.op = op

    @classmethod
    def true(cls) -> "Guard":
        return cls(GuardKind.TRUE)

    @classmethod
    def in_(cls, ts: TSHandle | Operand, *fields: Any) -> "Guard":
        return cls(GuardKind.OP, Op.in_(ts, *fields))

    @classmethod
    def rd(cls, ts: TSHandle | Operand, *fields: Any) -> "Guard":
        return cls(GuardKind.OP, Op.rd(ts, *fields))

    @classmethod
    def inp(cls, ts: TSHandle | Operand, *fields: Any) -> "Guard":
        return cls(GuardKind.OP, Op.inp(ts, *fields))

    @classmethod
    def rdp(cls, ts: TSHandle | Operand, *fields: Any) -> "Guard":
        return cls(GuardKind.OP, Op.rdp(ts, *fields))

    @property
    def blocking(self) -> bool:
        """True when this guard may delay the AGS (in/rd, not probes)."""
        return self.kind is GuardKind.OP and self.op.code.is_blocking  # type: ignore[union-attr]

    def binds(self) -> tuple[str, ...]:
        return self.op.binds() if self.op is not None else ()

    def reads(self) -> frozenset[str]:
        return self.op.reads() if self.op is not None else frozenset()

    def __repr__(self) -> str:
        return "true" if self.kind is GuardKind.TRUE else repr(self.op)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Guard)
            and other.kind == self.kind
            and other.op == self.op
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.op))


class Branch:
    """One ``guard => body`` alternative of a (possibly disjunctive) AGS."""

    __slots__ = ("guard", "body")

    def __init__(self, guard: Guard, body: Sequence[Op]):
        self.guard = guard
        self.body = tuple(body)
        self._validate()

    def _validate(self) -> None:
        bound: set[str] = set(self.guard.binds())
        # Guard operands may only use constants (nothing is bound yet)
        # except the TS position, which is also constant-only here.
        unbound = self.guard.reads()
        if unbound:
            raise FormalBindingError(
                f"guard references unbound formals {sorted(unbound)}"
            )
        # Note: in/rd are allowed in bodies but never block there — when no
        # match exists at execution time the whole AGS aborts and rolls
        # back (deterministically, since replicas see identical state).
        for i, op in enumerate(self.body):
            missing = op.reads() - bound
            if missing:
                raise FormalBindingError(
                    f"body op {i} ({op.code.value}) references formals "
                    f"{sorted(missing)} not bound earlier in this branch"
                )
            for nm in op.binds():
                if nm in bound:
                    raise AGSError(
                        f"body op {i} rebinds formal {nm!r}; names must be "
                        "single-assignment within a branch"
                    )
                bound.add(nm)

    def __repr__(self) -> str:
        body = "; ".join(repr(op) for op in self.body)
        return f"{self.guard!r} => [{body}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Branch)
            and other.guard == self.guard
            and other.body == self.body
        )

    def __hash__(self) -> int:
        return hash((self.guard, self.body))


class AGS:
    """A compiled atomic guarded statement (one or more branches).

    This is the unit of atomicity *and* the unit of communication: the
    runtime marshals one :class:`AGS` (plus its origin metadata) into a
    single atomic-multicast message, and every replica executes it
    deterministically on delivery (Sec. 5).
    """

    __slots__ = ("branches",)

    def __init__(self, branches: Sequence[Branch]):
        if not branches:
            raise AGSError("an AGS needs at least one branch")
        self.branches = tuple(branches)

    @classmethod
    def single(cls, guard: Guard, body: Sequence[Op] = ()) -> "AGS":
        """The common non-disjunctive form ``< guard => body >``."""
        return cls([Branch(guard, body)])

    @classmethod
    def atomic(cls, *body: Op) -> "AGS":
        """``< true => body >`` — an unconditional atomic block."""
        return cls([Branch(Guard.true(), body)])

    @property
    def blocking(self) -> bool:
        """True when the AGS can delay (every guard is in/rd).

        If any branch has a ``true`` or probe guard the statement always
        completes immediately.
        """
        return all(b.guard.blocking for b in self.branches)

    @property
    def read_only(self) -> bool:
        """True when no execution of this AGS can mutate replicated state.

        Every guard is ``rd``/``rdp`` (or ``true``) and every body op is
        ``rd``/``rdp`` — nothing withdraws, deposits or transfers, on any
        branch, whether the statement fires, probes out, or aborts.  With
        the replicated state machine keeping every replica identical
        after each ordered command, such a statement can be answered by
        any single up-to-date replica without the atomic-multicast round
        trip (the replica group's read fast path).
        """
        for branch in self.branches:
            op = branch.guard.op
            if op is not None and op.code not in (OpCode.RD, OpCode.RDP):
                return False
            for body_op in branch.body:
                if body_op.code not in (OpCode.RD, OpCode.RDP):
                    return False
        return True

    def waiting_on(self) -> list[dict[str, Any]]:
        """What a parked instance of this AGS is blocked on (plain data).

        One entry per blocking guard: the space (named when statically
        known), the canonical anti-tuple template, and the correlation key
        the stall detector matches against recent ``out`` traffic.
        """
        out: list[dict[str, Any]] = []
        for branch in self.branches:
            guard = branch.guard
            if not guard.blocking or guard.op is None:
                continue
            op = guard.op
            ts = op.static_ts()
            out.append(
                {
                    "op": op.code.value,
                    "space": f"{ts.name}#{ts.id}" if ts is not None else "?",
                    "template": op.template_key(),
                    "key": op.correlation_key(),
                }
            )
        return out

    def shard_hints(self) -> list[tuple[TSHandle | None, Any, bool]]:
        """Deduplicated partition hints over every branch (guards + bodies).

        A hint that appears both extracting and deposit-only collapses to
        the extracting form — extraction subsumes deposit for routing.
        """
        merged: dict[tuple[int | None, Any], tuple[TSHandle | None, Any, bool]] = {}
        for branch in self.branches:
            ops = list(branch.body)
            if branch.guard.op is not None:
                ops.insert(0, branch.guard.op)
            for op in ops:
                for ts, first, extracts in op.shard_hints():
                    key = (ts.id if ts is not None else None, first)
                    prev = merged.get(key)
                    if prev is None or (extracts and not prev[2]):
                        merged[key] = (ts, first, extracts)
        return list(merged.values())

    def shard_set(self, n_shards: int) -> frozenset[int] | None:
        """Shards this AGS can touch, or ``None`` when not statically pinnable.

        ``None`` means some hint has a dynamic space or a wildcard first
        field — the router must take the cross-shard path.  A concrete
        frozenset of size 1 is the fast case: the whole AGS lives on one
        shard and keeps the single-multicast cost.
        """
        if n_shards <= 1:
            return frozenset((0,))
        shards: set[int] = set()
        for ts, first, _extracts in self.shard_hints():
            if ts is None or first == ANY_FIRST:
                return None
            shards.add(shard_of(ts.id, first, n_shards))
        return frozenset(shards)

    def bound_names(self, branch_index: int) -> tuple[str, ...]:
        """All formal names the given branch can bind (guard + body)."""
        b = self.branches[branch_index]
        names = list(b.guard.binds())
        for op in b.body:
            names.extend(op.binds())
        return tuple(names)

    def __repr__(self) -> str:
        inner = " or ".join(repr(b) for b in self.branches)
        return f"<{inner}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AGS) and other.branches == self.branches

    def __hash__(self) -> int:
        return hash(self.branches)


class AGSResult:
    """Outcome of executing an AGS.

    Attributes
    ----------
    fired:
        Index of the branch whose guard fired, or ``None`` when the AGS
        was non-blocking and no guard was satisfiable (failed probe).
    bindings:
        Values of every named formal bound by the fired branch.
    probe_results:
        Per-body-op success flags for ``inp``/``rdp`` ops in the body,
        keyed by op index within the branch.
    error:
        ``None`` normally; a message (or the deterministic exception, e.g.
        a :class:`~repro._errors.ScopeError`) when the fired branch aborted.
        An aborted AGS left **no** effects behind — the state machine
        rolled everything back.
    """

    __slots__ = ("fired", "bindings", "probe_results", "error")

    def __init__(
        self,
        fired: int | None,
        bindings: Mapping[str, Any] | None = None,
        probe_results: Mapping[int, bool] | None = None,
        error: str | Exception | None = None,
    ):
        self.fired = fired
        self.bindings = dict(bindings or {})
        self.probe_results = dict(probe_results or {})
        self.error = error

    def __eq__(self, other: Any) -> bool:
        """Structural equality: results of identical executions compare equal.

        Needed because results now live in replicated state (the state
        machine's completed-request memo travels in snapshots, and
        snapshots of identical histories must compare equal).  Errors are
        compared by type and message — deterministic exceptions re-raised
        at different sites are distinct objects with identical meaning.
        """
        if not isinstance(other, AGSResult):
            return NotImplemented

        def key(e: Any) -> Any:
            return (type(e).__name__, str(e)) if isinstance(e, Exception) else e

        return (
            self.fired == other.fired
            and self.bindings == other.bindings
            and self.probe_results == other.probe_results
            and key(self.error) == key(other.error)
        )

    # identity hashing, as before structural __eq__ existed: results are
    # mutable-ish containers and are never used as value-keyed dict keys
    __hash__ = object.__hash__

    @property
    def succeeded(self) -> bool:
        """True when some branch fired and its body completed."""
        return self.fired is not None and self.error is None

    @property
    def aborted(self) -> bool:
        """True when a branch fired but its body failed and rolled back."""
        return self.error is not None

    def __getitem__(self, name: str) -> Any:
        return self.bindings[name]

    def get(self, name: str, default: Any = None) -> Any:
        return self.bindings.get(name, default)

    def __repr__(self) -> str:
        if not self.succeeded:
            return "AGSResult(no branch fired)"
        return f"AGSResult(branch={self.fired}, {self.bindings!r})"
