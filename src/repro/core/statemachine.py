"""The tuple-space state machine: deterministic execution of commands.

FT-Linda realizes stable tuple spaces with the **replicated state machine
approach** (Schneider [37]): every host runs an identical copy of the TS
state machine, commands are disseminated by atomic multicast, delivered in
the same total order everywhere, and executed deterministically — so the
replicas never diverge and no further coordination is needed (Sec. 5 of
the paper).  This module is that state machine, factored out of any
particular transport so the same code runs:

- under the discrete-event simulator (``repro.consul`` delivers commands),
- under the threads/multiprocessing backends,
- standalone, as the "single processor" configuration the paper's Table 1
  micro-benchmarks measure.

Determinism contract: :meth:`TSStateMachine.apply` is a pure function of
(current state, command).  Anything nondeterministic — client identity,
timestamps, random payloads — must already be *inside* the command.

Commands
--------
:class:`ExecuteAGS`     run an atomic guarded statement (the workhorse)
:class:`CreateSpace`    ``ts_create``
:class:`DestroySpace`   ``ts_destroy``
:class:`HostFailed`     membership notification; deposits the paper's
                        *failure tuple* and drops the dead host's blocked
                        statements
:class:`HostRecovered`  membership notification of a rejoin (bookkeeping)
:class:`CancelRequest`  withdraw a parked statement (ordered timeout)

Blocking is implemented replica-side: an :class:`ExecuteAGS` whose guards
all fail and are all blocking is parked on a FIFO of blocked statements.
After every state-mutating command the machine rescans that FIFO in order
until quiescence, so statements wake in a deterministic order at every
replica — the same trick lets ``inp``/``rdp`` give the *strong* semantics
the paper highlights (a probe's answer is exact at its point in the total
order).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Mapping, Sequence

from repro._errors import FormalBindingError, SpaceError, TupleError
from repro.core import matching as _matching
from repro.core.ags import AGS, AGSResult, GuardKind, Op, OpCode
from repro.core.matching import TupleStore
from repro.core.spaces import (
    MAIN_TS,
    RegistryImage,
    Resilience,
    Scope,
    SpaceRegistry,
    TSHandle,
)
from repro.core.tuples import LindaTuple

__all__ = [
    "CancelRequest",
    "Command",
    "Completion",
    "CreateSpace",
    "DepositTuples",
    "DestroySpace",
    "ExecuteAGS",
    "ExtractTuples",
    "FAILURE_TAG",
    "HostFailed",
    "HostRecovered",
    "MachineImage",
    "TSStateMachine",
]

#: First field of the distinguished failure tuple the runtime deposits when
#: a host crashes (Sec. 2.2: fail-silent failures are converted to
#: fail-stop "by providing failure notification in the form of a
#: distinguished failure tuple that gets deposited into TS").
FAILURE_TAG = "ft_failure"

#: First field of the recovery tuple deposited when a host rejoins.
RECOVERY_TAG = "ft_recovery"

#: How many completed request ids each replica remembers for duplicate
#: suppression (client retries after an unknown-outcome timeout).  Eviction
#: is deterministic (insertion order, i.e. completion order in the total
#: order), so every replica forgets the same ids at the same points.
DEDUP_CAP = 4096

#: Distinguishes "no memoized result" from a memoized result of any value.
_NO_MEMO = object()


class Command:
    """Base class of totally ordered state-machine commands.

    ``trace_id`` is observability metadata, not replicated state: it stays
    ``None`` unless a flight recorder is attached to the replica group, in
    which case the group stamps a fresh per-AGS id at submission.  It
    rides inside the command through batching and the pickled multiproc
    blob, so the replica apply loops can tag their ``apply`` spans with
    the same id the client's ``e2e`` span carries.
    """

    __slots__ = ("request_id", "origin_host", "trace_id")

    def __init__(self, request_id: int, origin_host: int):
        self.request_id = request_id
        self.origin_host = origin_host
        self.trace_id: int | None = None


class ExecuteAGS(Command):
    """Run *ags* on behalf of process *process_id* at *origin_host*."""

    __slots__ = ("process_id", "ags")

    def __init__(self, request_id: int, origin_host: int, process_id: int, ags: AGS):
        super().__init__(request_id, origin_host)
        self.process_id = process_id
        self.ags = ags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecuteAGS(#{self.request_id} h{self.origin_host} {self.ags!r})"


class CreateSpace(Command):
    """``ts_create(name, resilience, scope)``."""

    __slots__ = ("name", "resilience", "scope", "owner")

    def __init__(
        self,
        request_id: int,
        origin_host: int,
        name: str,
        resilience: Resilience,
        scope: Scope,
        owner: int | None,
    ):
        super().__init__(request_id, origin_host)
        self.name = name
        self.resilience = resilience
        self.scope = scope
        self.owner = owner


class DestroySpace(Command):
    """``ts_destroy(handle)``."""

    __slots__ = ("handle",)

    def __init__(self, request_id: int, origin_host: int, handle: TSHandle):
        super().__init__(request_id, origin_host)
        self.handle = handle


class HostFailed(Command):
    """Membership says *failed_host* crashed (fail-silent → fail-stop).

    *shard* is ``None`` in a single-group deployment (deposit the failure
    tuple into every failure space) or ``(index, n_shards)`` when this
    command is sequenced on shard *index* of a sharded deployment: each
    shard then deposits the notification only into the spaces whose
    ``(space, FAILURE_TAG)`` partition it owns, so a failure broadcast to
    every shard group yields exactly one failure tuple per space globally.
    """

    __slots__ = ("failed_host", "shard")

    def __init__(
        self,
        request_id: int,
        origin_host: int,
        failed_host: int,
        shard: tuple[int, int] | None = None,
    ):
        super().__init__(request_id, origin_host)
        self.failed_host = failed_host
        self.shard = shard


class HostRecovered(Command):
    """Membership says *recovered_host* rejoined the group.

    *shard* filters the recovery-tuple deposit exactly like
    :class:`HostFailed`.
    """

    __slots__ = ("recovered_host", "shard")

    def __init__(
        self,
        request_id: int,
        origin_host: int,
        recovered_host: int,
        shard: tuple[int, int] | None = None,
    ):
        super().__init__(request_id, origin_host)
        self.recovered_host = recovered_host
        self.shard = shard


class ExtractTuples(Command):
    """Cross-shard support: withdraw tuples by ``(space, first-field)``.

    *selectors* is a sequence of ``(handle, first)`` pairs: *first* is a
    concrete first-field value, :data:`~repro.core.matching.ANY_FIRST`
    (withdraw every tuple of the space) or ``None`` (withdraw nothing —
    an existence probe, used for spaces the cross-shard AGS only deposits
    into).  The result reports which selected spaces exist plus every
    withdrawn tuple with its original sequence number, so the coordinator
    can rebuild oldest-first matching priority deterministically.

    Only the sharded router issues this command, and only for partitions
    the target shard owns; like every command it is totally ordered within
    its shard, which is what serializes the cross-shard rung against that
    shard's single-shard traffic.
    """

    __slots__ = ("selectors",)

    def __init__(
        self,
        request_id: int,
        origin_host: int,
        selectors: Sequence[tuple[TSHandle, Any]],
    ):
        super().__init__(request_id, origin_host)
        self.selectors = tuple(selectors)


class DepositTuples(Command):
    """Cross-shard support: bulk-deposit tuples and wake blocked guards.

    *deposits* is an ordered sequence of ``(handle, fields)`` pairs — the
    order is part of the protocol (it recreates the coordinator's scratch
    sequence numbering, keeping oldest-match priority deterministic).
    Deposits into spaces destroyed since extraction are dropped; the
    result is the number actually deposited.
    """

    __slots__ = ("deposits",)

    def __init__(
        self,
        request_id: int,
        origin_host: int,
        deposits: Sequence[tuple[TSHandle, tuple]],
    ):
        super().__init__(request_id, origin_host)
        self.deposits = tuple(deposits)


class CancelRequest(Command):
    """Withdraw a parked ExecuteAGS (client-side timeout or abort).

    Like everything else, cancellation flows through the total order, so
    either every replica still has the statement parked (all drop it and
    the origin replica reports the cancellation) or none does (the cancel
    is a no-op everywhere — the statement already fired).  There is no
    in-between: that is precisely what the total order buys.
    """

    __slots__ = ("target_request_id",)

    def __init__(self, request_id: int, origin_host: int, target_request_id: int):
        super().__init__(request_id, origin_host)
        self.target_request_id = target_request_id


class Completion:
    """A finished request: routed back to the client by the replica layer."""

    __slots__ = ("request_id", "origin_host", "process_id", "result")

    def __init__(
        self,
        request_id: int,
        origin_host: int,
        process_id: int | None,
        result: Any,
    ):
        self.request_id = request_id
        self.origin_host = origin_host
        self.process_id = process_id
        self.result = result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Completion(#{self.request_id} -> h{self.origin_host}: {self.result!r})"


class _Blocked:
    """A parked ExecuteAGS awaiting a guard match.

    ``since`` is the machine's local clock reading at park time.  It is
    observability metadata, NOT replicated state: replicas stamp their own
    local times, it is excluded from snapshots and fingerprints, and no
    state transition ever reads it — so the determinism contract holds.
    """

    __slots__ = ("command", "since")

    def __init__(self, command: ExecuteAGS, since: float = 0.0):
        self.command = command
        self.since = since


class TSStateMachine:
    """Deterministic executor of tuple-space commands over a registry.

    Parameters
    ----------
    registry:
        The space registry to execute against.  Replicas of a stable TS
        group each own one registry; host-local volatile spaces use a
        second, host-private machine.
    failure_spaces:
        Handles that receive the distinguished failure/recovery tuples.
        Defaults to ``[MAIN_TS]``.
    op_stats:
        When True, counts per-opcode execution totals (used by the Table 1
        benchmarks to confirm what actually ran).
    """

    def __init__(
        self,
        registry: SpaceRegistry | None = None,
        failure_spaces: Sequence[TSHandle] | None = None,
        *,
        op_stats: bool = False,
    ):
        self.registry = registry if registry is not None else SpaceRegistry()
        self.failure_spaces = list(failure_spaces) if failure_spaces else [MAIN_TS]
        self.blocked: list[_Blocked] = []
        self.applied_count = 0
        #: Completed-request memo for at-most-once semantics under client
        #: retries: request_id -> result, bounded by DEDUP_CAP.  This IS
        #: replicated state (it travels in snapshots and is maintained
        #: deterministically), but it is excluded from fingerprints —
        #: results are arbitrary objects without a stable cross-process
        #: hash, and the memo is a deterministic function of the command
        #: history the fingerprinted state already reflects.
        self.completed: dict[int, Any] = {}
        self._completed_order: deque[int] = deque()
        #: Request ids currently parked in ``blocked`` — duplicates of a
        #: parked statement are dropped instead of double-parked.
        self._blocked_rids: set[int] = set()
        self.op_counts: dict[str, int] | None = {} if op_stats else None
        #: Local clock used for waiter/last-out stamps only (never state
        #: transitions).  The simulated cluster repoints it at virtual time.
        self.clock = time.monotonic
        #: (space_id, first_field_repr, arity) -> clock reading of the most
        #: recent deposit.  Only maintained while introspection is enabled;
        #: local observability data, not part of snapshots or fingerprints.
        self.last_out: dict[tuple[int, str, int], float] = {}
        #: Retained COW snapshot images keyed by the slot (applied_count)
        #: they were taken at, plus lazily materialized read-only views.
        #: Bounded by _retain_limit; see cow_snapshot()/read_view().
        self._retained: dict[int, "MachineImage"] = {}
        self._views: dict[int, "TSStateMachine"] = {}
        self._retain_limit = 4

    # ------------------------------------------------------------------ #
    # command dispatch
    # ------------------------------------------------------------------ #

    def apply(self, command: Command) -> list[Completion]:
        """Execute *command*; return completions it (transitively) produced.

        A single command can complete several requests: depositing a tuple
        may wake any number of blocked statements.  Completions are listed
        in deterministic wake order.

        Duplicate suppression: a command whose request id already
        completed replays the memoized result without re-executing, and a
        duplicate of a statement still parked is dropped (the original
        will complete it).  Both outcomes are pure functions of replicated
        state, so retried submissions stay deterministic group-wide.
        """
        rid = command.request_id
        memo = self.completed.get(rid, _NO_MEMO)
        if memo is not _NO_MEMO:
            self.applied_count += 1
            return [
                Completion(
                    rid,
                    command.origin_host,
                    getattr(command, "process_id", None),
                    memo,
                )
            ]
        if rid in self._blocked_rids:
            self.applied_count += 1
            return []
        completions: list[Completion] = []
        if isinstance(command, ExecuteAGS):
            result = self._try_execute(command.ags, command.process_id)
            if result is None:
                self.blocked.append(_Blocked(command, self.clock()))
                self._blocked_rids.add(rid)
            else:
                completions.append(
                    Completion(
                        command.request_id,
                        command.origin_host,
                        command.process_id,
                        result,
                    )
                )
                self._drain_blocked(completions)
        elif isinstance(command, CreateSpace):
            try:
                result: Any = self.registry.create(
                    command.name, command.resilience, command.scope, command.owner
                )
            except SpaceError as exc:
                # deterministic failure: every replica takes this branch, so
                # it must become a result, never an exception that could
                # kill the delivery path
                result = exc
            completions.append(
                Completion(command.request_id, command.origin_host, None, result)
            )
        elif isinstance(command, DestroySpace):
            try:
                self.registry.destroy(command.handle)
                result = True
            except SpaceError as exc:
                result = exc
            completions.append(
                Completion(command.request_id, command.origin_host, None, result)
            )
            # destroying a space can never wake a guard, no drain needed
        elif isinstance(command, CancelRequest):
            target = command.target_request_id
            for i, b in enumerate(self.blocked):
                if b.command.request_id == target:
                    del self.blocked[i]
                    self._blocked_rids.discard(target)
                    completions.append(
                        Completion(
                            target,
                            b.command.origin_host,
                            b.command.process_id,
                            AGSResult(None, error="cancelled"),
                        )
                    )
                    break
        elif isinstance(command, HostFailed):
            self._apply_host_failed(command)
            self._drain_blocked(completions)
        elif isinstance(command, HostRecovered):
            self._deposit_notification(
                RECOVERY_TAG, command.recovered_host, command.shard
            )
            self._drain_blocked(completions)
        elif isinstance(command, ExtractTuples):
            result = self._apply_extract(command)
            completions.append(
                Completion(command.request_id, command.origin_host, None, result)
            )
            # extraction only withdraws, it can never wake a guard
        elif isinstance(command, DepositTuples):
            deposited = 0
            for handle, fields in command.deposits:
                if not self.registry.exists(handle):
                    continue
                tup = LindaTuple(fields)
                self.registry.store(handle).add(tup)
                deposited += 1
                if _matching.STATS_ENABLED:
                    self._note_out(handle, tup)
            completions.append(
                Completion(command.request_id, command.origin_host, None, deposited)
            )
            self._drain_blocked(completions)
        else:
            # Unknown command types raise — and the replica apply loop's
            # poison barrier turns that into a deterministic CommandFailed
            # completion (the chaos harness injects exactly this).
            raise TypeError(f"unknown command type {type(command).__name__}")
        self.applied_count += 1
        # Memoize every result produced by executing a command — but never
        # a cancellation: a cancelled statement did NOT run, and a client
        # that retries its id after an unknown-outcome timeout must get a
        # fresh execution, not a replayed "cancelled".
        if not isinstance(command, CancelRequest):
            for c in completions:
                self._remember(c.request_id, c.result)
        return completions

    def _remember(self, request_id: int, result: Any) -> None:
        if request_id not in self.completed:
            self._completed_order.append(request_id)
            if len(self._completed_order) > DEDUP_CAP:
                evicted = self._completed_order.popleft()
                del self.completed[evicted]
        self.completed[request_id] = result

    def unpark(self, request_id: int) -> None:
        """Drop a parked statement without completing it (local timeout).

        The single-host runtimes cancel under their own lock instead of
        sequencing a :class:`CancelRequest`; this keeps the blocked list
        and the duplicate-suppression index in step for them.
        """
        self.blocked = [
            b for b in self.blocked if b.command.request_id != request_id
        ]
        self._blocked_rids.discard(request_id)

    def try_read(self, ags: AGS, process_id: int) -> AGSResult | None:
        """Evaluate a read-only AGS against current state, mutating nothing.

        The replica group's read fast path: a statement whose every
        operation is ``rd``/``rdp`` touches no replicated state, so one
        up-to-date replica can answer it locally — outside the total
        order and without parking.  Returns ``None`` when every guard is
        blocking and none can fire right now; the caller falls back to
        the ordered path instead of parking here (a locally parked read
        would wake nondeterministically relative to the order).

        Not counted in ``applied_count``: reads are not commands.
        """
        if not ags.read_only:
            raise ValueError("try_read is only valid for read-only statements")
        return self._try_execute(ags, process_id)

    def _apply_host_failed(self, command: HostFailed) -> None:
        # Blocked statements from the dead host will never be claimed;
        # dropping them is deterministic because HostFailed sits at a fixed
        # point in the total order.
        kept = []
        for b in self.blocked:
            if b.command.origin_host != command.failed_host:
                kept.append(b)
            else:
                self._blocked_rids.discard(b.command.request_id)
        self.blocked = kept
        self._deposit_notification(FAILURE_TAG, command.failed_host, command.shard)

    def _deposit_notification(
        self, tag: str, host_id: int, shard: tuple[int, int] | None = None
    ) -> None:
        for handle in self.failure_spaces:
            if shard is not None:
                index, n_shards = shard
                if _matching.shard_of(handle.id, tag, n_shards) != index:
                    continue
            if self.registry.exists(handle):
                self.registry.store(handle).add(LindaTuple((tag, host_id)))

    def _apply_extract(self, command: ExtractTuples) -> dict[str, Any]:
        """Withdraw tuples for the cross-shard rung (see :class:`ExtractTuples`)."""
        exists: list[int] = []
        extracted: list[tuple[int, int, tuple]] = []
        for handle, first in command.selectors:
            if not self.registry.exists(handle):
                continue
            exists.append(handle.id)
            if first is None:
                continue
            store = self.registry.store(handle)
            match_first = None if first == _matching.ANY_FIRST else first
            for seqno, fields in store.withdraw_by_first(match_first):
                extracted.append((handle.id, seqno, fields))
        return {"spaces": exists, "extracted": extracted}

    def _drain_blocked(self, completions: list[Completion]) -> None:
        """Wake blocked statements, oldest first, until a fixpoint."""
        progress = True
        while progress:
            progress = False
            for i, blocked in enumerate(self.blocked):
                cmd = blocked.command
                result = self._try_execute(cmd.ags, cmd.process_id)
                if result is not None:
                    del self.blocked[i]
                    self._blocked_rids.discard(cmd.request_id)
                    completions.append(
                        Completion(
                            cmd.request_id, cmd.origin_host, cmd.process_id, result
                        )
                    )
                    progress = True
                    break  # restart scan: state changed

    # ------------------------------------------------------------------ #
    # AGS execution
    # ------------------------------------------------------------------ #

    def _count_op(self, code: OpCode) -> None:
        if self.op_counts is not None:
            self.op_counts[code.value] = self.op_counts.get(code.value, 0) + 1

    def _resolve_ts(
        self, operand: Any, env: Mapping[str, Any], accessor: int | None
    ) -> TupleStore:
        value = operand.evaluate(env)
        if not isinstance(value, TSHandle):
            raise SpaceError(f"operand {value!r} is not a tuple-space handle")
        return self.registry.store(value, accessor=accessor)

    def _try_execute(self, ags: AGS, process_id: int) -> AGSResult | None:
        """Attempt the AGS against current state.

        Returns ``None`` when every guard is blocking and none can fire
        (caller parks the statement).  Otherwise returns the result —
        including the no-branch-fired result for probe guards and the
        aborted-and-rolled-back result for body failures.  Deterministic
        execution errors (unknown space, scope violation) become aborted
        results, never exceptions: every replica computes the same outcome.
        """
        for index, branch in enumerate(ags.branches):
            guard = branch.guard
            env: dict[str, Any] = {}
            undo: list[tuple] = []
            if guard.kind is GuardKind.TRUE:
                fired = True
            else:
                op = guard.op
                assert op is not None
                self._count_op(op.code)
                try:
                    store = self._resolve_ts(op.ts, env, process_id)
                    pattern = op.resolve_pattern(env)
                except (SpaceError, FormalBindingError) as exc:
                    return AGSResult(index, {}, {}, error=exc)
                m = store.find(pattern, remove=op.code.withdraws)
                if m is None:
                    fired = False
                else:
                    fired = True
                    env.update(m.binding)
                    if op.code.withdraws:
                        undo.append(("removed", store, m.seqno, m.tup))
            if not fired:
                continue
            # guard fired: run the body atomically, rolling back on failure
            error: str | Exception | None = None
            probe_results: dict[int, bool] = {}
            for i, op in enumerate(branch.body):
                try:
                    self._execute_body_op(op, env, undo, probe_results, i, process_id)
                except _BodyAbort as abort:
                    error = str(abort)
                    break
                except (FormalBindingError, SpaceError) as exc:
                    error = exc
                    break
            if error is not None:
                self._rollback(undo)
                return AGSResult(index, {}, probe_results, error=error)
            return AGSResult(index, env, probe_results)
        # no guard fired
        if ags.blocking:
            return None
        return AGSResult(None)

    def _execute_body_op(
        self,
        op: Op,
        env: dict[str, Any],
        undo: list[tuple],
        probe_results: dict[int, bool],
        op_index: int,
        process_id: int | None = None,
    ) -> None:
        self._count_op(op.code)
        code = op.code
        if code is OpCode.OUT:
            store = self._resolve_ts(op.ts, env, process_id)
            try:
                tup = LindaTuple(op.resolve_values(env))
            except TupleError as exc:
                raise _BodyAbort(str(exc)) from None
            seqno = store.add(tup)
            undo.append(("added", store, seqno, tup))
            if _matching.STATS_ENABLED:
                self._note_out(op.ts.evaluate(env), tup)
        elif code in (OpCode.IN, OpCode.RD, OpCode.INP, OpCode.RDP):
            store = self._resolve_ts(op.ts, env, process_id)
            pattern = op.resolve_pattern(env)
            m = store.find(pattern, remove=code.withdraws)
            if m is None:
                if code.is_probe:
                    probe_results[op_index] = False
                    return
                raise _BodyAbort(
                    f"body {code.value} found no match for {pattern!r}"
                )
            if code.is_probe:
                probe_results[op_index] = True
            env.update(m.binding)
            if code.withdraws:
                undo.append(("removed", store, m.seqno, m.tup))
        elif code in (OpCode.MOVE, OpCode.COPY):
            src = self._resolve_ts(op.ts, env, process_id)
            assert op.ts2 is not None
            dst = self._resolve_ts(op.ts2, env, process_id)
            pattern = op.resolve_pattern(env)
            matches = src.find_all(pattern, remove=(code is OpCode.MOVE))
            if code is OpCode.MOVE:
                for m in matches:
                    undo.append(("removed", src, m.seqno, m.tup))
            note_outs = _matching.STATS_ENABLED and matches
            dst_handle = op.ts2.evaluate(env) if note_outs else None
            for m in matches:
                seqno = dst.add(m.tup)
                undo.append(("added", dst, seqno, m.tup))
                if note_outs:
                    self._note_out(dst_handle, m.tup)
        else:  # pragma: no cover - defensive
            raise _BodyAbort(f"opcode {code.value} is not executable in a body")

    def _note_out(self, handle: Any, tup: LindaTuple) -> None:
        """Record deposit traffic for the stall detector (introspection on)."""
        if isinstance(handle, TSHandle):
            self.last_out[(handle.id, repr(tup.fields[0]), len(tup.fields))] = (
                self.clock()
            )

    # ------------------------------------------------------------------ #
    # introspection (the waiter registry + live-state image)
    # ------------------------------------------------------------------ #

    def waiters(self, now: float | None = None) -> list[dict[str, Any]]:
        """Every parked statement: who is blocked, on what, for how long.

        Plain data (picklable) so the same image travels the in-band query
        path from replica processes.  ``blocked_for`` is an age in seconds
        relative to this machine's local clock — ages, unlike absolute
        stamps, compare meaningfully across process and clock domains.
        """
        t = self.clock() if now is None else now
        return [
            {
                "request_id": b.command.request_id,
                "origin_host": b.command.origin_host,
                "process_id": b.command.process_id,
                "blocked_for": max(t - b.since, 0.0),
                "waiting_on": b.command.ags.waiting_on(),
            }
            for b in self.blocked
        ]

    def introspection(self, now: float | None = None) -> dict[str, Any]:
        """Live-state image: spaces, hot templates, waiters, out traffic.

        Everything is computed on demand from current state — the apply
        hot path maintains nothing beyond the gated match counters and
        ``last_out`` stamps — and returned as plain data.
        """
        t = self.clock() if now is None else now
        spaces = []
        for handle, store in self.registry:
            info = store.introspect()
            info.update(
                {
                    "id": handle.id,
                    "name": handle.name,
                    "resilience": handle.resilience.value,
                    "scope": handle.scope.value,
                }
            )
            spaces.append(info)
        return {
            "applied": self.applied_count,
            "waiters": self.waiters(t),
            "spaces": spaces,
            "last_out_age": {
                key: max(t - stamp, 0.0) for key, stamp in self.last_out.items()
            },
        }

    @staticmethod
    def _rollback(undo: list[tuple]) -> None:
        """Reverse recorded effects, newest first (all-or-nothing)."""
        for entry in reversed(undo):
            kind, store, seqno, tup = entry
            if kind == "added":
                store.remove_seqno(seqno, tup)
            else:  # "removed"
                store.reinsert(seqno, tup)

    # ------------------------------------------------------------------ #
    # replication support
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, Any]:
        """State-transfer image: registry plus parked statements.

        Blocked commands are part of replicated state — a recovering
        replica must wake the same statements at the same points in the
        order as everyone else.  The completed-request memo travels too,
        in completion order, so a recovered replica suppresses the same
        duplicate submissions as its donor.
        """
        return {
            "registry": self.registry.snapshot(stable_only=False),
            "blocked": [
                (
                    b.command.request_id,
                    b.command.origin_host,
                    b.command.process_id,
                    b.command.ags,
                )
                for b in self.blocked
            ],
            "applied_count": self.applied_count,
            "completed": [
                (rid, self.completed[rid]) for rid in self._completed_order
            ],
        }

    def cow_snapshot(self, *, retain: bool = True) -> "MachineImage":
        """Incremental snapshot at the current slot boundary; O(dirty).

        The returned :class:`MachineImage` is immutable and structurally
        shares every tuple bucket unmutated since the previous call, so
        taking one under the apply-loop lock costs only the delta; the
        O(n) serialization (:meth:`MachineImage.to_snapshot`) runs later,
        lock-free.  ``retain=True`` additionally parks the image in the
        bounded retained set so :meth:`read_view` can answer
        snapshot-isolated reads at this slot.
        """
        image = MachineImage(
            self.registry.cow_image(stable_only=False),
            tuple(
                (
                    b.command.request_id,
                    b.command.origin_host,
                    b.command.process_id,
                    b.command.ags,
                )
                for b in self.blocked
            ),
            self.applied_count,
            tuple((rid, self.completed[rid]) for rid in self._completed_order),
        )
        if retain:
            self._retained[image.applied_count] = image
            while len(self._retained) > self._retain_limit:
                oldest = min(self._retained)
                del self._retained[oldest]
                self._views.pop(oldest, None)
        return image

    def retained_slots(self) -> list[int]:
        """Slots with a retained snapshot image, oldest first."""
        return sorted(self._retained)

    def read_view(self, slot: int | None = None) -> tuple["TSStateMachine", int]:
        """A read-only machine frozen at a retained snapshot slot.

        Returns ``(machine, slot)``.  ``slot=None`` picks the newest
        retained image.  Materialization is lazy and cached per slot; it
        builds private stores from the immutable image, so reads against
        the view never touch — and never contend with — live writer
        state.  Raises ``KeyError`` when the slot is not retained.
        """
        if not self._retained:
            raise KeyError("no retained snapshots (call cow_snapshot first)")
        if slot is None:
            slot = max(self._retained)
        image = self._retained[slot]
        view = self._views.get(slot)
        if view is None:
            view = TSStateMachine.from_snapshot(image.to_snapshot())
            self._views[slot] = view
        return view, slot

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, Any], **kwargs: Any) -> "TSStateMachine":
        sm = cls(SpaceRegistry.from_snapshot(snap["registry"]), **kwargs)
        t_install = sm.clock()  # waiter ages restart at install time
        sm.blocked = [
            _Blocked(ExecuteAGS(rid, host, pid, ags), t_install)
            for rid, host, pid, ags in snap["blocked"]
        ]
        sm._blocked_rids = {b.command.request_id for b in sm.blocked}
        sm.applied_count = snap["applied_count"]
        # .get(): snapshots written before the dedup memo existed lack it
        for rid, result in snap.get("completed", ()):
            sm.completed[rid] = result
            sm._completed_order.append(rid)
        return sm

    def fingerprint(self) -> int:
        """Hash of all replicated state; equal across consistent replicas
        — including replicas in different OS processes (no hash salting).

        The completed-request memo is deliberately excluded: results are
        arbitrary objects with no stable cross-process hash, and the memo
        is a deterministic function of the command history the rest of
        the fingerprinted state already witnesses.
        """
        from repro.core.matching import stable_hash

        acc = self.registry.fingerprint()
        for i, b in enumerate(self.blocked):
            acc ^= stable_hash((i, b.command.request_id, b.command.origin_host))
        return acc


class MachineImage:
    """Immutable COW snapshot of a :class:`TSStateMachine` at one slot.

    Produced by :meth:`TSStateMachine.cow_snapshot` under the apply-loop
    lock in O(dirty); consumed lock-free — :meth:`to_snapshot` performs
    the O(n) merge into the canonical dict that
    :meth:`TSStateMachine.from_snapshot` (and the WAL snapshot files, and
    replica state transfer) all speak.
    """

    __slots__ = ("registry_image", "blocked", "applied_count", "completed")

    def __init__(
        self,
        registry_image: "RegistryImage",
        blocked: tuple,
        applied_count: int,
        completed: tuple,
    ):
        self.registry_image = registry_image
        self.blocked = blocked
        self.applied_count = applied_count
        self.completed = completed

    def to_snapshot(self) -> dict[str, Any]:
        """The canonical :meth:`TSStateMachine.snapshot` dict."""
        return {
            "registry": self.registry_image.to_snapshot(),
            "blocked": list(self.blocked),
            "applied_count": self.applied_count,
            "completed": list(self.completed),
        }


class _BodyAbort(Exception):
    """Internal: a body operation failed; the AGS must roll back."""
