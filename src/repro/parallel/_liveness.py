"""Shared kwarg plumbing for the parallel runtimes' liveness options."""

from __future__ import annotations

from repro.obs.profile import register_thread
from repro.replication import LivenessPolicy

__all__ = ["MONITOR_ROLE", "register_monitor_thread", "resolve_liveness"]

#: The stable profiler role for the liveness plane's monitor thread —
#: shared by every backend so folded stacks from threaded and multiproc
#: runs aggregate under one name.
MONITOR_ROLE = "liveness-monitor"


def register_monitor_thread(qualifier: str = "") -> None:
    """Register the calling monitor thread under :data:`MONITOR_ROLE`.

    *qualifier* is the owning group's shard name, when sharded, so each
    shard's monitor is distinguishable in a merged profile.  Imported
    lazily by :mod:`repro.replication.group` (this module already imports
    replication the other way around).
    """
    role = f"{qualifier}/{MONITOR_ROLE}" if qualifier else MONITOR_ROLE
    register_thread(role)


def resolve_liveness(
    detect_failures: bool | LivenessPolicy, auto_recover: bool
) -> LivenessPolicy | None:
    """Fold the runtime-level kwargs into one group-level policy.

    ``auto_recover=True`` implies detection (a supervisor with no
    detector would never fire), and overrides the flag on a caller-built
    policy — the runtime kwarg is the more explicit request.
    """
    if isinstance(detect_failures, LivenessPolicy):
        policy = detect_failures
    elif detect_failures or auto_recover:
        policy = LivenessPolicy()
    else:
        return None
    if auto_recover:
        policy.auto_recover = True
    return policy
