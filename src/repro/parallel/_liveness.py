"""Shared kwarg plumbing for the parallel runtimes' liveness options."""

from __future__ import annotations

from repro.replication import LivenessPolicy

__all__ = ["resolve_liveness"]


def resolve_liveness(
    detect_failures: bool | LivenessPolicy, auto_recover: bool
) -> LivenessPolicy | None:
    """Fold the runtime-level kwargs into one group-level policy.

    ``auto_recover=True`` implies detection (a supervisor with no
    detector would never fire), and overrides the flag on a caller-built
    policy — the runtime kwarg is the more explicit request.
    """
    if isinstance(detect_failures, LivenessPolicy):
        policy = detect_failures
    elif detect_failures or auto_recover:
        policy = LivenessPolicy()
    else:
        return None
    if auto_recover:
        policy.auto_recover = True
    return policy
