"""Threaded replica group: state-machine replication with real threads.

Architecture (one process, many threads):

- a **bus**: commands are sequenced under a lock — acquiring the lock *is*
  the atomic multicast's total order — and appended to every live
  replica's FIFO;
- N **replica threads**, each looping ``pop → apply`` on its own
  :class:`~repro.core.statemachine.TSStateMachine`;
- clients are ordinary threads (``eval_`` spawns them); each submission
  parks on an event until the **origin replica** (replica 0, or the oldest
  live one) reports the completion.

Because replicas really do race on their own schedules, this backend
exercises the determinism contract with genuine interleavings — the
convergence tests would catch any state-machine nondeterminism that the
single-threaded tests cannot.

Crash injection: :meth:`ThreadedReplicaRuntime.crash_replica` halts one
replica mid-stream (its FIFO is dropped on the floor), deposits the
failure tuple via a :class:`~repro.core.statemachine.HostFailed` command,
and the group continues — N-1 replicas hold the stable spaces.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Any, Callable

from repro._errors import TimeoutError_
from repro.core.ags import AGS, AGSResult
from repro.core.runtime import BaseRuntime, ProcessHandle
from repro.core.spaces import Resilience, Scope, TSHandle
from repro.core.statemachine import (
    CancelRequest,
    Command,
    CreateSpace,
    DestroySpace,
    ExecuteAGS,
    HostFailed,
    TSStateMachine,
)

__all__ = ["ThreadedReplicaRuntime"]

_CLIENT_ORIGIN = -1


class _Replica:
    """One replica: a state machine plus its applier thread."""

    def __init__(self, replica_id: int, runtime: "ThreadedReplicaRuntime"):
        self.id = replica_id
        self.runtime = runtime
        self.sm = TSStateMachine()
        self.fifo: "queue.Queue[Command | None]" = queue.Queue()
        self.alive = True
        self.applied = 0
        self.thread = threading.Thread(
            target=self._loop, name=f"replica-{replica_id}", daemon=True
        )
        self.thread.start()

    def _loop(self) -> None:
        while True:
            cmd = self.fifo.get()
            if cmd is None or not self.alive:
                return
            completions = self.sm.apply(cmd)
            self.applied += 1
            # every replica reports; the waiter map pops exactly once, so
            # duplicates are free and a crashed replica can never strand a
            # client waiting on a completion it alone knew about
            self.runtime._deliver_completions(completions)

    def stop(self) -> None:
        self.alive = False
        self.fifo.put(None)


class ThreadedReplicaRuntime(BaseRuntime):
    """FT-Linda over N threaded replicas (see module docstring)."""

    def __init__(self, n_replicas: int = 3):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self._bus_lock = threading.Lock()
        self._req_ids = itertools.count(1)
        self._proc_ids = itertools.count(1)
        self._waiters: dict[int, tuple[threading.Event, list]] = {}
        self._waiters_lock = threading.Lock()
        self._bcast_count = 0
        self.replicas = [_Replica(i, self) for i in range(n_replicas)]
        self._procs: list[ProcessHandle] = []

    # ------------------------------------------------------------------ #
    # the bus (total order by lock acquisition)
    # ------------------------------------------------------------------ #

    def _origin_replica(self) -> _Replica:
        """The replica that reports completions: oldest live one."""
        for r in self.replicas:
            if r.alive:
                return r
        raise TimeoutError_("all replicas have crashed")

    def _broadcast(self, cmd: Command) -> None:
        with self._bus_lock:
            self._bcast_count += 1
            for r in self.replicas:
                if r.alive:
                    r.fifo.put(cmd)

    def _deliver_completions(self, completions: list) -> None:
        for c in completions:
            with self._waiters_lock:
                waiter = self._waiters.pop(c.request_id, None)
            if waiter is not None:
                event, slot = waiter
                slot.append(c.result)
                event.set()

    def _call(self, cmd: Command, timeout: float | None = None) -> Any:
        event = threading.Event()
        slot: list = []
        with self._waiters_lock:
            self._waiters[cmd.request_id] = (event, slot)
        self._broadcast(cmd)
        if event.wait(timeout):
            return slot[0]
        # timed out: cancel through the total order, then take whichever
        # outcome won the race (completion vs cancellation)
        self._broadcast(
            CancelRequest(next(self._req_ids), _CLIENT_ORIGIN, cmd.request_id)
        )
        event.wait()
        result = slot[0]
        if isinstance(result, AGSResult) and result.error == "cancelled":
            raise TimeoutError_(f"guard not satisfied within {timeout}s")
        return result

    # ------------------------------------------------------------------ #
    # BaseRuntime implementation
    # ------------------------------------------------------------------ #

    def _submit(
        self, ags: AGS, process_id: int, *, timeout: float | None = None
    ) -> AGSResult:
        rid = next(self._req_ids)
        return self._call(
            ExecuteAGS(rid, _CLIENT_ORIGIN, process_id, ags), timeout
        )

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        rid = next(self._req_ids)
        result = self._call(
            CreateSpace(rid, _CLIENT_ORIGIN, name, resilience, scope, owner)
        )
        if isinstance(result, Exception):
            raise result
        return result

    def destroy_space(self, handle: TSHandle) -> None:
        rid = next(self._req_ids)
        result = self._call(DestroySpace(rid, _CLIENT_ORIGIN, handle))
        if isinstance(result, Exception):
            raise result

    def eval_(
        self, fn: Callable[..., Any], *args: Any, process_id: int | None = None
    ) -> ProcessHandle:
        pid = process_id if process_id is not None else next(self._proc_ids)
        handle = ProcessHandle(pid)

        def run() -> None:
            try:
                handle._result = fn(self.view(pid), *args)
            except BaseException as exc:  # noqa: BLE001 - reported via join()
                handle._error = exc

        t = threading.Thread(target=run, name=f"linda-proc-{pid}", daemon=True)
        handle._thread = t
        self._procs.append(handle)
        t.start()
        return handle

    # ------------------------------------------------------------------ #
    # failure injection / inspection
    # ------------------------------------------------------------------ #

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """Halt one replica; optionally deposit its failure tuple."""
        self.replicas[replica_id].stop()
        if notify and any(r.alive for r in self.replicas):
            self._broadcast(
                HostFailed(next(self._req_ids), _CLIENT_ORIGIN, replica_id)
            )

    def inject_failure(self, host_id: int) -> None:
        """Deposit a failure tuple for a *logical* host (worker) id."""
        self._broadcast(HostFailed(next(self._req_ids), _CLIENT_ORIGIN, host_id))

    def quiesce(self, timeout: float = 10.0) -> None:
        """Wait until every live replica has applied every broadcast."""
        import time

        target = self._bcast_count
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(r.applied >= target for r in self.replicas if r.alive):
                return
            time.sleep(0.002)
        raise TimeoutError_("replicas did not quiesce in time")

    def fingerprints(self) -> list[int]:
        """Stable-state fingerprints of all live replicas (after quiesce)."""
        self.quiesce()
        return [r.sm.fingerprint() for r in self.replicas if r.alive]

    def converged(self) -> bool:
        return len(set(self.fingerprints())) <= 1

    def space_size(self, handle: TSHandle) -> int:
        self.quiesce()
        return len(self._origin_replica().sm.registry.store(handle))

    def shutdown(self) -> None:
        for r in self.replicas:
            r.stop()
