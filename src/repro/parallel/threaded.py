"""Threaded replica group: state-machine replication with real threads.

Architecture (one process, many threads): a shared
:class:`~repro.replication.group.ReplicaGroup` sequences commands — with
batching — over an :class:`~repro.replication.transport.InMemoryTransport`
(one FIFO + applier thread per replica); clients are ordinary threads
(``eval_`` spawns them) that park until the group reports a completion.
Read-only statements (``rd``/``rdp``) skip sequencing entirely by default
— one replica answers them at a consistent session floor (the group's
read fast path; pass ``read_fastpath=False`` to force every operation
through the total order).

Because replicas really do race on their own schedules, this backend
exercises the determinism contract with genuine interleavings — the
convergence tests would catch any state-machine nondeterminism that the
single-threaded tests cannot.

Crash injection: :meth:`ThreadedReplicaRuntime.crash_replica` halts one
replica mid-stream (its FIFO is dropped on the floor), deposits the
failure tuple via an ordered ``HostFailed`` command, and the group
continues — N-1 replicas hold the stable spaces.

All sequencing, completion dedup and query logic lives in the shared
replication core; this file only binds the :class:`~repro.core.runtime.
BaseRuntime` API to it.
"""

from __future__ import annotations

from repro.core.ags import AGS, AGSResult
from repro.core.runtime import BaseRuntime
from repro.core.spaces import Resilience, Scope, TSHandle
from repro.core.statemachine import CreateSpace, DestroySpace, ExecuteAGS
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FlightRecorder
from repro.parallel._liveness import resolve_liveness
from repro.replication import InMemoryTransport, LivenessPolicy, ReplicaGroup
from repro.replication.group import CLIENT_ORIGIN

__all__ = ["ThreadedReplicaRuntime"]


class ThreadedReplicaRuntime(BaseRuntime):
    """FT-Linda over N threaded replicas (see module docstring).

    ``detect_failures`` turns on the group's liveness plane (pass True
    for the defaults, or a :class:`~repro.replication.LivenessPolicy` to
    tune it); ``auto_recover`` additionally restarts a detected-dead
    replica thread and installs a snapshot from a live donor.
    """

    def __init__(
        self,
        n_replicas: int = 3,
        *,
        batching: bool = True,
        read_fastpath: bool = True,
        tracer: FlightRecorder | None = None,
        detect_failures: bool | LivenessPolicy = False,
        auto_recover: bool = False,
    ):
        super().__init__()
        self.group = ReplicaGroup(
            InMemoryTransport(n_replicas),
            batching=batching,
            read_fastpath=read_fastpath,
            tracer=tracer,
            liveness=resolve_liveness(detect_failures, auto_recover),
        )

    @property
    def metrics(self) -> MetricsRegistry:
        return self.group.metrics

    @property
    def tracer(self) -> FlightRecorder | None:
        return self.group.tracer

    # ------------------------------------------------------------------ #
    # BaseRuntime implementation
    # ------------------------------------------------------------------ #

    def _submit(
        self, ags: AGS, process_id: int, *, timeout: float | None = None
    ) -> AGSResult:
        rid = self.group.next_request_id()
        return self.group.call(
            ExecuteAGS(rid, CLIENT_ORIGIN, process_id, ags), timeout
        )

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        rid = self.group.next_request_id()
        result = self.group.call(
            CreateSpace(rid, CLIENT_ORIGIN, name, resilience, scope, owner)
        )
        if isinstance(result, Exception):
            raise result
        return result

    def destroy_space(self, handle: TSHandle) -> None:
        rid = self.group.next_request_id()
        result = self.group.call(DestroySpace(rid, CLIENT_ORIGIN, handle))
        if isinstance(result, Exception):
            raise result

    # ------------------------------------------------------------------ #
    # failure injection / inspection (delegated to the replica group)
    # ------------------------------------------------------------------ #

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """Halt one replica; optionally deposit its failure tuple."""
        self.group.crash_replica(replica_id, notify=notify)

    def recover_replica(self, replica_id: int, *, timeout: float = 30.0) -> None:
        """Restart a halted replica thread and transfer state into it."""
        self.group.recover_replica(replica_id, timeout=timeout)

    def query(self, replica_id: int, what: str, arg=None, timeout: float = 30.0):
        """In-band query: answered after all previously sequenced commands."""
        return self.group.query(replica_id, what, arg, timeout=timeout)

    def inject_failure(self, host_id: int) -> None:
        """Deposit a failure tuple for a *logical* host (worker) id."""
        self.group.inject_failure(host_id)

    def quiesce(self, timeout: float = 30.0) -> None:
        """Wait until every live replica has applied every broadcast."""
        self.group.quiesce(timeout=timeout)

    def fingerprints(self) -> list[int]:
        """Stable-state fingerprints of all live replicas."""
        return self.group.fingerprints()

    def converged(self) -> bool:
        return self.group.converged()

    def space_size(self, handle: TSHandle) -> int:
        return self.group.space_size(handle)

    def introspection_snapshot(self) -> dict:
        return self.group.introspection_snapshot(type(self).__name__)

    def shutdown(self) -> None:
        self.group.shutdown()
