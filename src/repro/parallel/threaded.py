"""Threaded replica group: state-machine replication with real threads.

Architecture (one process, many threads): a shared
:class:`~repro.replication.group.ReplicaGroup` sequences commands — with
batching — over an :class:`~repro.replication.transport.InMemoryTransport`
(one FIFO + applier thread per replica); clients are ordinary threads
(``eval_`` spawns them) that park until the group reports a completion.
Read-only statements (``rd``/``rdp``) skip sequencing entirely by default
— one replica answers them at a consistent session floor (the group's
read fast path; pass ``read_fastpath=False`` to force every operation
through the total order).

Because replicas really do race on their own schedules, this backend
exercises the determinism contract with genuine interleavings — the
convergence tests would catch any state-machine nondeterminism that the
single-threaded tests cannot.

Crash injection: :meth:`ThreadedReplicaRuntime.crash_replica` halts one
replica mid-stream (its FIFO is dropped on the floor), deposits the
failure tuple via an ordered ``HostFailed`` command, and the group
continues — N-1 replicas hold the stable spaces.

All sequencing, completion dedup and query logic lives in the shared
replication core; this file only binds the :class:`~repro.core.runtime.
BaseRuntime` API to it.
"""

from __future__ import annotations

from repro.core.ags import AGS, AGSResult
from repro.core.runtime import BaseRuntime
from repro.core.spaces import Resilience, Scope, TSHandle
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FlightRecorder
from repro.parallel._liveness import resolve_liveness
from repro.replication import (
    InMemoryTransport,
    LivenessPolicy,
    ReplicaGroup,
    ShardedGroup,
)

__all__ = ["ThreadedReplicaRuntime"]


class ThreadedReplicaRuntime(BaseRuntime):
    """FT-Linda over N threaded replicas (see module docstring).

    ``detect_failures`` turns on the group's liveness plane (pass True
    for the defaults, or a :class:`~repro.replication.LivenessPolicy` to
    tune it); ``auto_recover`` additionally restarts a detected-dead
    replica thread and installs a snapshot from a live donor.

    ``shards`` partitions the tuple space into that many independently
    sequenced replica groups (each with *n_replicas* replica threads),
    routed by content hash — see :mod:`repro.replication.sharding`.  The
    default of 1 is the classic single-sequencer deployment.
    """

    def __init__(
        self,
        n_replicas: int = 3,
        *,
        shards: int = 1,
        batching: bool = True,
        read_fastpath: bool = True,
        tracer: FlightRecorder | None = None,
        detect_failures: bool | LivenessPolicy = False,
        auto_recover: bool = False,
        durable_dir: str | None = None,
        durable_fsync: bool = True,
    ):
        super().__init__()
        liveness = resolve_liveness(detect_failures, auto_recover)
        self.sharded = ShardedGroup(
            lambda: InMemoryTransport(n_replicas),
            shards,
            batching=batching,
            read_fastpath=read_fastpath,
            tracer=tracer,
            liveness=liveness,
            durable_dir=durable_dir,
            durable_fsync=durable_fsync,
        )
        from repro.obs.server import maybe_serve_from_env

        self._telemetry = maybe_serve_from_env(self)

    @property
    def group(self) -> ReplicaGroup:
        """The first shard's group — the whole pipeline when ``shards=1``."""
        return self.sharded.groups[0]

    @property
    def shard_groups(self) -> list[ReplicaGroup]:
        return self.sharded.groups

    @property
    def metrics(self) -> MetricsRegistry:
        return self.group.metrics

    @property
    def tracer(self) -> FlightRecorder | None:
        return self.group.tracer

    # ------------------------------------------------------------------ #
    # BaseRuntime implementation
    # ------------------------------------------------------------------ #

    def _submit(
        self, ags: AGS, process_id: int, *, timeout: float | None = None
    ) -> AGSResult:
        return self.sharded.execute(ags, process_id, timeout)

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        return self.sharded.create_space(name, resilience, scope, owner)

    def destroy_space(self, handle: TSHandle) -> None:
        self.sharded.destroy_space(handle)

    # ------------------------------------------------------------------ #
    # failure injection / inspection (delegated to the sharded group)
    # ------------------------------------------------------------------ #

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """Halt one replica (in every shard); optionally deposit its tuple."""
        self.sharded.crash_replica(replica_id, notify=notify)

    def recover_replica(self, replica_id: int, *, timeout: float = 30.0) -> None:
        """Restart a halted replica thread and transfer state into it."""
        self.sharded.recover_replica(replica_id, timeout=timeout)

    def compact_journal(self, *, timeout: float = 30.0) -> list:
        """Durable mode: snapshot + prune every shard's journal."""
        return self.sharded.compact_journal(timeout=timeout)

    def journal_status(self) -> list:
        """Durable mode: per-shard journal status (empty when volatile)."""
        return self.sharded.journal_status()

    def query(self, replica_id: int, what: str, arg=None, timeout: float = 30.0):
        """In-band query: answered after all previously sequenced commands."""
        return self.sharded.query(replica_id, what, arg, timeout)

    def inject_failure(self, host_id: int) -> None:
        """Deposit a failure tuple for a *logical* host (worker) id."""
        self.sharded.inject_failure(host_id)

    def quiesce(self, timeout: float = 30.0) -> None:
        """Wait until every live replica has applied every broadcast."""
        self.sharded.quiesce(timeout=timeout)

    def fingerprints(self) -> list[int]:
        """Stable-state fingerprints of all live replicas."""
        return self.sharded.fingerprints()

    def converged(self) -> bool:
        return self.sharded.converged()

    def space_size(self, handle: TSHandle) -> int:
        return self.sharded.space_size(handle)

    def metrics_snapshot(self) -> dict:
        return self.sharded.metrics_snapshot()

    def introspection_snapshot(self) -> dict:
        return self.sharded.introspection_snapshot(type(self).__name__)

    def start_profiling(self, hz: float | None = None) -> None:
        """Begin continuous sampling of the runtime's threads (opt-in).

        One in-process sampler sees every registered role — sequencers,
        replica apply threads, read flushers, liveness monitors — plus
        client threads by name.  See :mod:`repro.obs.profile`.
        """
        from repro.obs.profile import DEFAULT_HZ

        self.sharded.start_profiling(DEFAULT_HZ if hz is None else hz)

    def stop_profiling(self) -> dict[str, int]:
        """Stop sampling; return folded stacks (``role;frame;... -> n``)."""
        return self.sharded.stop_profiling()

    def shutdown(self) -> None:
        self._close_telemetry()
        self.sharded.shutdown()
