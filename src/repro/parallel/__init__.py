"""Real-parallelism backends: threads and multiprocessing.

The simulated cluster (:mod:`repro.consul`) gives deterministic virtual
time; these backends give actual concurrency on one machine, with the same
:class:`~repro.core.runtime.BaseRuntime` API:

- :class:`~repro.parallel.threaded.ThreadedReplicaRuntime` — N replica
  state machines, each applied by its own thread, fed by an in-memory
  totally ordered broadcast bus.  Crash a replica and the others carry
  on; fingerprints verify convergence under real thread interleavings.
- :class:`~repro.parallel.multiproc.MultiprocessRuntime` — replicas in
  separate OS processes connected by queues; commands are pickled exactly
  as they would be marshalled onto a network.  This is the
  network-of-workstations substitute for running real parallel examples.
"""

from repro.parallel.multiproc import MultiprocessRuntime
from repro.parallel.threaded import ThreadedReplicaRuntime

__all__ = ["MultiprocessRuntime", "ThreadedReplicaRuntime"]
