"""Real-parallelism backends: threads and multiprocessing.

The simulated cluster (:mod:`repro.consul`) gives deterministic virtual
time; these backends give actual concurrency on one machine, with the same
:class:`~repro.core.runtime.BaseRuntime` API.  Both are thin adapters over
the shared replication core (:mod:`repro.replication`): a
:class:`~repro.replication.group.ReplicaGroup` owns sequencing (with
command batching), completion dedup, in-band queries and metrics, and a
:class:`~repro.replication.transport.Transport` moves the ordered stream:

- :class:`~repro.parallel.threaded.ThreadedReplicaRuntime` — N replica
  state machines, each applied by its own thread, fed by an in-memory
  FIFO transport.  Crash a replica and the others carry on; fingerprints
  verify convergence under real thread interleavings.
- :class:`~repro.parallel.multiproc.MultiprocessRuntime` — replicas in
  separate OS processes connected by pickling queues; ordered batches are
  marshalled once and shipped to every replica, exactly as they would be
  onto a network.  This is the network-of-workstations substitute for
  running real parallel examples, and supports SIGKILL crash injection
  plus snapshot-based replica recovery.
"""

from repro.parallel.multiproc import MultiprocessRuntime
from repro.parallel.threaded import ThreadedReplicaRuntime

__all__ = ["MultiprocessRuntime", "ThreadedReplicaRuntime"]
