"""Multiprocessing replica group: FT-Linda across OS processes.

The closest single-machine stand-in for the paper's network of
workstations: each replica is a separate Python **process** with its own
state machine, driven by the shared :class:`~repro.replication.group.
ReplicaGroup` core over a :class:`~repro.replication.transport.
PickleQueueTransport` — commands get the same marshalling they would get
on a wire, and the sequencer pickles each ordered batch exactly once and
ships the blob to every replica (the batching optimization this backend
benefits from most).

Queries (fingerprints, space sizes) travel in-band on the command FIFOs,
so they see exactly the state after every previously sequenced command —
no separate quiescing protocol is needed.  Read-only statements
(``rd``/``rdp``) take the group's read fast path by default: one replica
process answers them at a consistent session floor, skipping the
sequencer, the N-way broadcast and the batch pickling altogether (pass
``read_fastpath=False`` to force them through the total order).  Crash injection SIGKILLs a
replica process; recovery spawns a fresh one and installs a snapshot
captured from a live donor at a frozen point in the total order.

Use as a context manager (or call :meth:`MultiprocessRuntime.shutdown`)
to reap the replica processes::

    with MultiprocessRuntime(n_replicas=3) as rt:
        rt.out(rt.main_ts, "hello", 1)

All sequencer/dedup/recovery logic lives in the shared replication core;
this file only binds the :class:`~repro.core.runtime.BaseRuntime` API to
it.
"""

from __future__ import annotations

from typing import Any

from repro.core.ags import AGS, AGSResult
from repro.core.runtime import BaseRuntime
from repro.core.spaces import Resilience, Scope, TSHandle
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FlightRecorder
from repro.parallel._liveness import resolve_liveness
from repro.replication import (
    LivenessPolicy,
    PickleQueueTransport,
    ReplicaGroup,
    ShardedGroup,
)

__all__ = ["MultiprocessRuntime"]


class MultiprocessRuntime(BaseRuntime):
    """FT-Linda over N replica processes (see module docstring).

    ``detect_failures`` turns on the group's liveness plane — a monitor
    thread combining in-band heartbeats with ``Process.is_alive()``
    probes, so even a SIGKILLed replica is noticed and converted to
    fail-stop without any cooperative ``crash_replica`` call.  Pass True
    for the default :class:`~repro.replication.LivenessPolicy` or a
    policy instance to tune it; ``auto_recover`` additionally respawns
    the dead process and installs a donor snapshot, with capped
    exponential backoff and a max-restarts budget.
    """

    def __init__(
        self,
        n_replicas: int = 3,
        *,
        shards: int = 1,
        start_method: str = "spawn",
        batching: bool = True,
        read_fastpath: bool = True,
        tracer: FlightRecorder | None = None,
        detect_failures: bool | LivenessPolicy = False,
        auto_recover: bool = False,
        durable_dir: str | None = None,
        durable_fsync: bool = True,
    ):
        super().__init__()
        liveness = resolve_liveness(detect_failures, auto_recover)
        self.sharded = ShardedGroup(
            lambda: PickleQueueTransport(n_replicas, start_method=start_method),
            shards,
            batching=batching,
            read_fastpath=read_fastpath,
            tracer=tracer,
            liveness=liveness,
            durable_dir=durable_dir,
            durable_fsync=durable_fsync,
        )
        from repro.obs.server import maybe_serve_from_env

        self._telemetry = maybe_serve_from_env(self)

    @property
    def group(self) -> ReplicaGroup:
        """The first shard's group — the whole pipeline when ``shards=1``."""
        return self.sharded.groups[0]

    @property
    def shard_groups(self) -> list[ReplicaGroup]:
        return self.sharded.groups

    @property
    def metrics(self) -> MetricsRegistry:
        return self.group.metrics

    @property
    def tracer(self) -> FlightRecorder | None:
        return self.group.tracer

    # ------------------------------------------------------------------ #
    # BaseRuntime implementation
    # ------------------------------------------------------------------ #

    def _submit(
        self, ags: AGS, process_id: int, *, timeout: float | None = None
    ) -> AGSResult:
        return self.sharded.execute(ags, process_id, timeout)

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        return self.sharded.create_space(name, resilience, scope, owner)

    def destroy_space(self, handle: TSHandle) -> None:
        self.sharded.destroy_space(handle)

    # ------------------------------------------------------------------ #
    # failure injection / inspection (delegated to the sharded group)
    # ------------------------------------------------------------------ #

    def query(
        self, replica_id: int, what: str, arg: Any = None, timeout: float = 30.0
    ) -> Any:
        """In-band query: answered after all previously sequenced commands."""
        return self.sharded.query(replica_id, what, arg, timeout)

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """SIGKILL one replica process (in every shard); group continues."""
        self.sharded.crash_replica(replica_id, notify=notify)

    def inject_failure(self, host_id: int) -> None:
        """Deposit a failure tuple for a *logical* host (worker) id."""
        self.sharded.inject_failure(host_id)

    def recover_replica(self, replica_id: int, *, timeout: float = 30.0) -> None:
        """Restart a killed replica process and transfer state into it."""
        self.sharded.recover_replica(replica_id, timeout=timeout)

    def compact_journal(self, *, timeout: float = 30.0) -> list:
        """Durable mode: snapshot + prune every shard's journal."""
        return self.sharded.compact_journal(timeout=timeout)

    def journal_status(self) -> list:
        """Durable mode: per-shard journal status (empty when volatile)."""
        return self.sharded.journal_status()

    def quiesce(self, timeout: float = 30.0) -> None:
        """Wait until every live replica has applied every broadcast."""
        self.sharded.quiesce(timeout=timeout)

    def fingerprints(self) -> list[int]:
        return self.sharded.fingerprints()

    def converged(self) -> bool:
        return self.sharded.converged()

    def space_size(self, handle: TSHandle) -> int:
        return self.sharded.space_size(handle)

    def metrics_snapshot(self) -> dict:
        return self.sharded.metrics_snapshot()

    def introspection_snapshot(self) -> dict:
        return self.sharded.introspection_snapshot(type(self).__name__)

    def start_profiling(self, hz: float | None = None) -> None:
        """Begin continuous sampling of the runtime (opt-in).

        The parent-process sampler covers the sequencers, read flushers
        and monitors; each replica *process* additionally runs its own
        sampler, started over the in-band query lane, whose folded stacks
        ride back with :meth:`stop_profiling` — incarnation-fenced, so a
        replica SIGKILLed mid-profile just drops out of the merge.  See
        :mod:`repro.obs.profile`.
        """
        from repro.obs.profile import DEFAULT_HZ

        self.sharded.start_profiling(DEFAULT_HZ if hz is None else hz)

    def stop_profiling(self) -> dict[str, int]:
        """Stop sampling everywhere; return the cross-process merge."""
        return self.sharded.stop_profiling()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        self._close_telemetry()
        self.sharded.shutdown()

    def __enter__(self) -> "MultiprocessRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.shutdown()
        except Exception:
            pass
