"""Multiprocessing replica group: FT-Linda across OS processes.

The closest single-machine stand-in for the paper's network of
workstations (and the reproduction band's suggested vehicle): each replica
is a separate Python **process** with its own state machine; commands are
pickled onto per-replica queues — the same marshalling they would get on a
wire — in a total order fixed by the parent's sequencer lock; results
come back on a shared queue.

Every replica reports completions and the parent deduplicates, so a
terminated replica can never strand a client.  Replicas start via the
``spawn`` method by default: the parent is multi-threaded (clients,
collector), and forking a multi-threaded process can capture another
thread's held queue lock in the child — a deadlock we observed under
full-suite load before switching.  Queries (fingerprints,
space sizes) travel in-band on the command FIFOs, so they see exactly the
state after every previously sequenced command — no separate quiescing
protocol is needed.

Use as a context manager (or call :meth:`MultiprocessRuntime.shutdown`)
to reap the replica processes::

    with MultiprocessRuntime(n_replicas=3) as rt:
        rt.out(rt.main_ts, "hello", 1)
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
from typing import Any, Callable

from repro._errors import TimeoutError_
from repro.core.ags import AGS, AGSResult
from repro.core.runtime import BaseRuntime, ProcessHandle
from repro.core.spaces import Resilience, Scope, TSHandle
from repro.core.statemachine import (
    CancelRequest,
    Command,
    CreateSpace,
    DestroySpace,
    ExecuteAGS,
    HostFailed,
    TSStateMachine,
)

__all__ = ["MultiprocessRuntime"]

_CLIENT_ORIGIN = -1


def _replica_main(replica_id: int, cmd_q: Any, result_q: Any) -> None:
    """Replica process body: apply commands in arrival (= total) order."""
    sm = TSStateMachine()
    applied = 0
    while True:
        item = cmd_q.get()
        kind = item[0]
        if kind == "STOP":
            return
        if kind == "CMD":
            completions = sm.apply(item[1])
            applied += 1
            for c in completions:
                result_q.put(("COMP", c.request_id, c.result))
        elif kind == "INSTALL":
            # recovery: replace our whole state with the shipped snapshot
            sm = TSStateMachine.from_snapshot(item[1])
            applied = item[2]
            result_q.put(("QUERY", item[3], replica_id, "installed"))
        elif kind == "SNAPSHOT":
            result_q.put(("QUERY", item[1], replica_id, (sm.snapshot(), applied)))
        elif kind == "QUERY":
            _k, qid, what, arg = item
            if what == "fingerprint":
                answer: Any = sm.fingerprint()
            elif what == "space_size":
                answer = len(sm.registry.store(arg))
            elif what == "space_tuples":
                answer = [t.fields for t in sm.registry.store(arg).to_list()]
            elif what == "applied":
                answer = applied
            elif what == "blocked":
                answer = len(sm.blocked)
            else:
                answer = None
            result_q.put(("QUERY", qid, replica_id, answer))


class MultiprocessRuntime(BaseRuntime):
    """FT-Linda over N replica processes (see module docstring)."""

    def __init__(self, n_replicas: int = 3, *, start_method: str = "spawn"):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self._start_method = start_method
        ctx = mp.get_context(start_method)
        self._req_ids = itertools.count(1)
        self._qids = itertools.count(1)
        self._proc_ids = itertools.count(1)
        self._bus_lock = threading.Lock()
        self._waiters: dict[int, tuple[threading.Event, list]] = {}
        self._queries: dict[tuple[int, int], tuple[threading.Event, list]] = {}
        self._state_lock = threading.Lock()
        # one result queue PER replica: a replica SIGKILLed mid-put can
        # corrupt its queue's pipe, and with a shared queue that would
        # silently strand every other replica's completions
        self.result_qs = [ctx.Queue() for _ in range(n_replicas)]
        self.cmd_queues = [ctx.Queue() for _ in range(n_replicas)]
        self.alive = [True] * n_replicas
        self.processes = [
            ctx.Process(
                target=_replica_main,
                args=(i, self.cmd_queues[i], self.result_qs[i]),
                daemon=True,
            )
            for i in range(n_replicas)
        ]
        for p in self.processes:
            p.start()
        self._running = True
        self._collectors = [
            threading.Thread(
                target=self._collect, args=(i,), name=f"mp-collector-{i}",
                daemon=True,
            )
            for i in range(n_replicas)
        ]
        for t in self._collectors:
            t.start()
        self._procs: list[ProcessHandle] = []

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def _collect(self, replica_id: int) -> None:
        while self._running and self.alive[replica_id]:
            q = self.result_qs[replica_id]
            try:
                item = q.get(timeout=0.2)
            except Exception:
                continue
            if item[0] == "COMP":
                _k, rid, result = item
                with self._state_lock:
                    waiter = self._waiters.pop(rid, None)
                if waiter is not None:
                    event, slot = waiter
                    slot.append(result)
                    event.set()
            elif item[0] == "QUERY":
                _k, qid, answering_replica, answer = item
                with self._state_lock:
                    waiter = self._queries.pop((qid, answering_replica), None)
                if waiter is not None:
                    event, slot = waiter
                    slot.append(answer)
                    event.set()

    def _broadcast(self, cmd: Command) -> None:
        with self._bus_lock:
            for i, q in enumerate(self.cmd_queues):
                if self.alive[i]:
                    q.put(("CMD", cmd))

    def _call(self, cmd: Command, timeout: float | None = None) -> Any:
        event = threading.Event()
        slot: list = []
        with self._state_lock:
            self._waiters[cmd.request_id] = (event, slot)
        self._broadcast(cmd)
        if event.wait(timeout):
            return slot[0]
        self._broadcast(
            CancelRequest(next(self._req_ids), _CLIENT_ORIGIN, cmd.request_id)
        )
        if not event.wait(30.0):
            raise TimeoutError_("replica group unresponsive")
        result = slot[0]
        if isinstance(result, AGSResult) and result.error == "cancelled":
            raise TimeoutError_(f"guard not satisfied within {timeout}s")
        return result

    def query(self, replica_id: int, what: str, arg: Any = None, timeout: float = 30.0) -> Any:
        """In-band query: answered after all previously sequenced commands."""
        qid = next(self._qids)
        event = threading.Event()
        slot: list = []
        with self._state_lock:
            self._queries[(qid, replica_id)] = (event, slot)
        with self._bus_lock:
            self.cmd_queues[replica_id].put(("QUERY", qid, what, arg))
        if not event.wait(timeout):
            raise TimeoutError_(f"replica {replica_id} did not answer query")
        return slot[0]

    # ------------------------------------------------------------------ #
    # BaseRuntime implementation
    # ------------------------------------------------------------------ #

    def _submit(
        self, ags: AGS, process_id: int, *, timeout: float | None = None
    ) -> AGSResult:
        rid = next(self._req_ids)
        return self._call(ExecuteAGS(rid, _CLIENT_ORIGIN, process_id, ags), timeout)

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        rid = next(self._req_ids)
        result = self._call(
            CreateSpace(rid, _CLIENT_ORIGIN, name, resilience, scope, owner)
        )
        if isinstance(result, Exception):
            raise result
        return result

    def destroy_space(self, handle: TSHandle) -> None:
        rid = next(self._req_ids)
        result = self._call(DestroySpace(rid, _CLIENT_ORIGIN, handle))
        if isinstance(result, Exception):
            raise result

    def eval_(
        self, fn: Callable[..., Any], *args: Any, process_id: int | None = None
    ) -> ProcessHandle:
        pid = process_id if process_id is not None else next(self._proc_ids)
        handle = ProcessHandle(pid)

        def run() -> None:
            try:
                handle._result = fn(self.view(pid), *args)
            except BaseException as exc:  # noqa: BLE001 - reported via join()
                handle._error = exc

        t = threading.Thread(target=run, name=f"linda-proc-{pid}", daemon=True)
        handle._thread = t
        self._procs.append(handle)
        t.start()
        return handle

    # ------------------------------------------------------------------ #
    # failure injection / inspection
    # ------------------------------------------------------------------ #

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """SIGKILL one replica process; the group continues without it."""
        if not self.alive[replica_id]:
            return
        self.alive[replica_id] = False
        self.processes[replica_id].kill()
        self.processes[replica_id].join(timeout=10)
        if notify and any(self.alive):
            self._broadcast(
                HostFailed(next(self._req_ids), _CLIENT_ORIGIN, replica_id)
            )

    def inject_failure(self, host_id: int) -> None:
        """Deposit a failure tuple for a *logical* host (worker) id."""
        self._broadcast(HostFailed(next(self._req_ids), _CLIENT_ORIGIN, host_id))

    def recover_replica(self, replica_id: int, *, timeout: float = 30.0) -> None:
        """Restart a killed replica process and transfer state into it.

        The paper's recovery story across real OS processes: spawn a fresh
        process, capture a snapshot from a live replica *at a quiet point
        in the total order* (the bus lock is held, so no command can slip
        between capture and readmission), install it, then resume
        broadcasting to the newcomer.  A HostRecovered command deposits
        the recovery tuple, as on the simulated cluster.
        """
        if self.alive[replica_id]:
            return
        ctx = mp.get_context(self._start_method)
        with self._bus_lock:  # freeze the order: nothing sequenced past us
            donor = next(
                (i for i in range(len(self.processes)) if self.alive[i]), None
            )
            if donor is None:
                raise TimeoutError_("no live replica to transfer state from")
            # ask the donor for a snapshot; it answers after applying
            # everything already in its FIFO (in-band request)
            qid = next(self._qids)
            event = threading.Event()
            slot: list = []
            with self._state_lock:
                self._queries[(qid, donor)] = (event, slot)
            self.cmd_queues[donor].put(("SNAPSHOT", qid))
            if not event.wait(timeout):
                raise TimeoutError_("donor replica did not produce a snapshot")
            snapshot, applied = slot[0]
            # fresh queues + process + collector for the newcomer (its old
            # queues may be poisoned by the kill)
            self.cmd_queues[replica_id] = ctx.Queue()
            self.result_qs[replica_id] = ctx.Queue()
            proc = ctx.Process(
                target=_replica_main,
                args=(replica_id, self.cmd_queues[replica_id],
                      self.result_qs[replica_id]),
                daemon=True,
            )
            proc.start()
            self.processes[replica_id] = proc
            qid2 = next(self._qids)
            event2 = threading.Event()
            slot2: list = []
            with self._state_lock:
                self._queries[(qid2, replica_id)] = (event2, slot2)
            self.cmd_queues[replica_id].put(("INSTALL", snapshot, applied, qid2))
            self.alive[replica_id] = True
            collector = threading.Thread(
                target=self._collect, args=(replica_id,),
                name=f"mp-collector-{replica_id}", daemon=True,
            )
            self._collectors.append(collector)
            collector.start()
        if not event2.wait(timeout):
            raise TimeoutError_("recovered replica did not confirm install")
        from repro.core.statemachine import HostRecovered

        self._broadcast(HostRecovered(next(self._req_ids), _CLIENT_ORIGIN, replica_id))

    def fingerprints(self) -> list[int]:
        return [
            self.query(i, "fingerprint")
            for i in range(len(self.processes))
            if self.alive[i]
        ]

    def converged(self) -> bool:
        return len(set(self.fingerprints())) <= 1

    def space_size(self, handle: TSHandle) -> int:
        for i in range(len(self.processes)):
            if self.alive[i]:
                return self.query(i, "space_size", handle)
        raise TimeoutError_("all replicas have crashed")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        if not self._running:
            return
        self._running = False
        for i, q in enumerate(self.cmd_queues):
            if self.alive[i]:
                q.put(("STOP",))
        for p in self.processes:
            p.join(timeout=5)
            if p.is_alive():
                p.kill()
        for t in self._collectors:
            t.join(timeout=5)

    def __enter__(self) -> "MultiprocessRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.shutdown()
        except Exception:
            pass
