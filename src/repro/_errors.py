"""Exception hierarchy for the FT-Linda reproduction.

All library errors derive from :class:`LindaError` so callers can catch a
single base class.  Errors are split along the lines the paper draws:
programming errors in tuples/patterns (:class:`TupleError`,
:class:`MatchTypeError`), misuse of the AGS restrictions
(:class:`AGSError`), tuple-space lifecycle problems (:class:`SpaceError`),
and runtime/distribution failures (:class:`RuntimeFailure`,
:class:`HostFailedError`).
"""

from __future__ import annotations


class LindaError(Exception):
    """Base class for every error raised by this library."""


class TupleError(LindaError):
    """A malformed tuple or pattern (bad arity, unsupported field type)."""


class MatchTypeError(TupleError):
    """A pattern field has a type that can never match its position."""


class AGSError(LindaError):
    """An atomic guarded statement violates FT-Linda's restrictions.

    The paper restricts AGS bodies so that every replica can execute them
    deterministically without further communication: no ``eval`` in a body,
    no blocking operations outside the guard position, and operands limited
    to constants, guard-bound formals, and deterministic expressions.
    """


class FormalBindingError(AGSError):
    """A body operand references a formal the guard did not bind."""


class SpaceError(LindaError):
    """Tuple-space lifecycle error (unknown handle, double destroy, ...)."""


class ScopeError(SpaceError):
    """A process touched a private tuple space it does not own."""


class RuntimeFailure(LindaError):
    """The runtime could not complete an operation."""


class HostFailedError(RuntimeFailure):
    """The host a process was running on (or talking to) has crashed."""

    def __init__(self, host_id: int, message: str | None = None):
        self.host_id = host_id
        super().__init__(message or f"host {host_id} has failed")


class NotDeterministicError(AGSError):
    """An expression used inside an AGS body is not marked deterministic."""


class CompileError(LindaError):
    """FT-lcc front end rejected a source program."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        loc = f" at {line}:{column}" if line is not None else ""
        super().__init__(f"{message}{loc}")


class TimeoutError_(RuntimeFailure):
    """A bounded wait elapsed before the guard could fire.

    ``outcome`` records what is known about the command's fate when the
    wait gave up: ``"cancelled"`` means an ordered cancel reached every
    replica first, so the command definitely did not and will not apply;
    ``"unknown"`` means the cancel race was lost or never resolved, so the
    command may yet apply.  Retry logic keys off this to decide whether a
    resubmission needs the original request id (for replica-side dedup).
    """

    def __init__(self, message: str, *, outcome: str = "cancelled"):
        self.outcome = outcome
        super().__init__(message)


class CommandFailed(RuntimeFailure):
    """A command's apply raised on the replicas.

    The apply loop converts the exception into this deterministic failed
    completion on *every* replica — the poison command consumes its slot,
    state machines stay identical, and only the submitting client sees
    the failure.
    """
