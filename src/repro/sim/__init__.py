"""Deterministic discrete-event simulation kernel.

The paper evaluates FT-Linda on a network of workstations (Sun-3 / i386 on
10 Mb Ethernet).  We do not have that testbed, so the distributed
experiments run on this kernel instead: virtual time in microseconds, an
ordered event queue, generator-based processes, and seeded randomness —
fully deterministic given a seed, which also makes crash/recovery schedules
reproducible (something the original hardware could never give).

Public surface: :class:`~repro.sim.kernel.Simulator`,
:class:`~repro.sim.kernel.SimEvent`, :class:`~repro.sim.process.SimProcess`
and the :func:`~repro.sim.process.hold` helper.
"""

from repro.sim.kernel import SimEvent, Simulator
from repro.sim.process import SimProcess, hold
from repro.sim.trace import Tracer

__all__ = ["SimEvent", "SimProcess", "Simulator", "Tracer", "hold"]
