"""Structured protocol tracing for simulated runs.

Protocol debugging in this reproduction kept coming down to one question:
*what happened, in what order, on which host?*  The :class:`Tracer`
answers it: components emit ``(time, host, layer, event, detail)`` records
at key transitions (sequencing, delivery, suspicion, view changes,
snapshots), and the tracer filters and renders them as a timeline.

Tracing is opt-in and zero-cost when off: emit points call
:meth:`Tracer.emit` through a module-level hook that defaults to ``None``.

Events share the schema of the real backends' flight recorder
(:class:`~repro.obs.tracing.SpanEvent`): :class:`TraceEvent` is a
subclass that adds the simulator's host/layer vocabulary, so a simulated
trace exports to the same Chrome trace-event JSON
(:meth:`Tracer.to_chrome`) and feeds the same consistency checker
(:func:`repro.obs.check.check_consistency`) as a threaded or multiproc
run — simulated and real traces render identically.

Usage::

    from repro.sim.trace import Tracer

    tracer = Tracer()
    cluster = SimCluster(ClusterConfig(n_hosts=3), )
    tracer.attach(cluster)
    ... run ...
    print(tracer.render(layer="mem"))
    json.dump(tracer.to_chrome(), open("sim-trace.json", "w"))
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.tracing import SpanEvent, to_chrome_trace

__all__ = ["TraceEvent", "Tracer"]


class TraceEvent(SpanEvent):
    """One protocol event — a :class:`SpanEvent` in sim vocabulary.

    Constructed with the simulator's native coordinates (virtual µs and
    an integer host id); stores them in the shared schema (seconds,
    ``host-N`` track) and keeps the legacy accessors as properties.
    """

    __slots__ = ()

    def __init__(self, time: float, host: int, layer: str, event: str, detail: Any):
        super().__init__(
            time / 1e6,  # virtual µs -> virtual seconds, as in repro.obs
            f"host-{host}",
            layer,
            event,
            args={"host": host, "detail": detail},
        )

    @property
    def time(self) -> float:
        """Event time in virtual microseconds (the simulator's clock)."""
        return self.ts * 1e6

    @property
    def host(self) -> int:
        return self.args["host"]

    @property
    def layer(self) -> str:
        return self.cat

    @property
    def event(self) -> str:
        return self.name

    @property
    def detail(self) -> Any:
        return self.args["detail"]

    def __repr__(self) -> str:
        return (
            f"[{self.time / 1000:10.3f}ms h{self.host} {self.layer:>7}] "
            f"{self.event} {self.detail}"
        )


class Tracer:
    """Collects, filters and renders protocol events from a cluster."""

    def __init__(self, capacity: int = 100_000):
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self._cluster = None

    # ------------------------------------------------------------------ #
    # attachment
    # ------------------------------------------------------------------ #

    def attach(self, cluster: Any) -> "Tracer":
        """Instrument every host's protocol stack in *cluster*.

        Wraps the interesting entry points of each layer with emitting
        proxies and plants the replica layers' apply hook (the
        consistency checker's input); detaching is not supported (build a
        fresh cluster).
        """
        self._cluster = cluster
        for host in cluster.hosts:
            stack = host.stack
            if stack is None:
                continue
            for layer in stack.layers:
                self._instrument(host.id, layer)
        return self

    def _instrument(self, host_id: int, layer: Any) -> None:
        name = getattr(layer, "name", type(layer).__name__)
        hooks: dict[str, Callable[..., Any]] = {}
        if name == "ord":
            hooks = {
                "_sequence": lambda a, k: f"uid={a[0]} origin={a[1]}",
                "deliver_up": lambda a, k: (
                    f"seqno={k.get('seqno')} uid={k.get('uid')}"
                    if k.get("ordered")
                    else None
                ),
                "_send_nack": lambda a, k: "",
                "_start_takeover_sync": lambda a, k: "",
            }
        elif name == "mem":
            hooks = {
                "_suspect": lambda a, k: f"host={a[0]}",
                "_deliver_failed": lambda a, k: f"host={a[0].failed_host}",
                "_deliver_recovered": lambda a, k: f"host={a[0].recovered_host}",
                "_begin_self_rejoin": lambda a, k: "",
            }
        elif name == "replica":
            hooks = {
                "_maybe_send_snapshot": lambda a, k: f"to={a[0]} at_seqno={a[1]}",
                "_install_snapshot": lambda a, k: "",
                "submit_ags": lambda a, k: f"pid={a[1] if len(a) > 1 else 0}",
            }
            # the apply-stream hook: every ordered command's (slot,
            # request_id) coordinate, the consistency checker's input
            layer.trace_apply = self._on_apply
        for method_name, describe in hooks.items():
            original = getattr(layer, method_name, None)
            if original is None:
                continue
            setattr(
                layer,
                method_name,
                self._wrap(host_id, name, method_name, original, describe),
            )

    def _wrap(self, host_id, layer_name, event, original, describe):
        def wrapped(*args, **kwargs):
            detail = describe(args, kwargs)
            if detail is not None:
                self.emit(host_id, layer_name, event.lstrip("_"), detail)
            return original(*args, **kwargs)

        return wrapped

    def _on_apply(self, host_id: int, slot: int, request_id: int) -> None:
        self.emit(
            host_id,
            "replica",
            "apply",
            f"slot={slot} rid={request_id}",
            slot=slot,
            request_id=request_id,
        )

    # ------------------------------------------------------------------ #
    # recording and querying
    # ------------------------------------------------------------------ #

    def emit(
        self, host: int, layer: str, event: str, detail: Any = "", **extra: Any
    ) -> None:
        if len(self.events) >= self.capacity:
            return  # bounded: a runaway trace must not eat the heap
        now = self._cluster.sim.now if self._cluster is not None else 0.0
        ev = TraceEvent(now, host, layer, event, detail)
        if extra:
            ev.args.update(extra)
        self.events.append(ev)

    def select(
        self,
        *,
        host: int | None = None,
        layer: str | None = None,
        event: str | None = None,
        since: float = 0.0,
    ) -> list[TraceEvent]:
        return [
            e
            for e in self.events
            if (host is None or e.host == host)
            and (layer is None or e.layer == layer)
            and (event is None or e.event == event)
            and e.time >= since
        ]

    def count(self, **kw: Any) -> int:
        return len(self.select(**kw))

    def render(self, limit: int = 200, **kw: Any) -> str:
        """A printable timeline of the selected events."""
        picked = self.select(**kw)[:limit]
        return "\n".join(repr(e) for e in picked)

    def to_chrome(self) -> dict[str, Any]:
        """Chrome trace-event JSON, identical in shape to a real-run trace."""
        return to_chrome_trace(self.events)

    def __len__(self) -> int:
        return len(self.events)
