"""The event loop: virtual clock, ordered queue, one-shot events.

Determinism contract: two runs with the same seed and the same sequence of
``schedule`` calls produce identical traces.  Ties in the event queue are
broken by a monotonically increasing sequence number, never by object
identity or hash order.

Time is a float in **microseconds** to match the units of the paper's
Table 1; helpers :data:`MS` and :data:`SEC` make call sites readable.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Iterator

__all__ = ["MS", "SEC", "SimEvent", "Simulator"]

#: One millisecond in simulator time units (microseconds).
MS = 1000.0
#: One second in simulator time units.
SEC = 1_000_000.0


class _Scheduled:
    """A queue entry; cancellation just flips a flag (lazy deletion)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Prevent this callback from running (safe after it ran: no-op)."""
        self.cancelled = True


class SimEvent:
    """A one-shot event processes can wait on.

    ``succeed(value)`` wakes every waiter with *value*.  Waiting on an
    already-triggered event resumes immediately — so there is no race
    between deciding to wait and the trigger.
    """

    __slots__ = ("sim", "triggered", "value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []
        self.name = name

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            self.sim.schedule(0.0, w, value)

    def add_waiter(self, fn: Callable[[Any], None]) -> None:
        if self.triggered:
            self.sim.schedule(0.0, fn, self.value)
        else:
            self._waiters.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"={self.value!r}" if self.triggered else " pending"
        return f"SimEvent({self.name}{state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seeds :attr:`rng`, the single source of randomness every simulated
        component must draw from (network jitter, workload generators, …).
    trace:
        Optional callback ``(time, label)`` invoked by components that emit
        trace points; useful in tests.
    """

    def __init__(self, seed: int = 0, trace: Callable[[float, str], None] | None = None):
        self.now = 0.0
        self.rng = random.Random(seed)
        self._queue: list[_Scheduled] = []
        self._seq = 0
        self._trace = trace
        self.events_processed = 0

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> _Scheduled:
        """Run ``fn(*args)`` after *delay* time units; returns a handle."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        entry = _Scheduled(self.now + delay, self._seq, fn, args)
        heapq.heappush(self._queue, entry)
        return entry

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh one-shot event bound to this simulator."""
        return SimEvent(self, name)

    def trace(self, label: str) -> None:
        """Emit a trace point (no-op unless a trace callback was given)."""
        if self._trace is not None:
            self._trace(self.now, label)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Run the next pending callback; False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            assert entry.time >= self.now, "event queue went backwards"
            self.now = entry.time
            entry.fn(*entry.args)
            self.events_processed += 1
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Run until the queue drains, *until* time passes, or the budget ends.

        ``until`` is an absolute virtual time; events scheduled exactly at
        it still run.
        """
        budget = max_events if max_events is not None else float("inf")
        while budget > 0:
            if until is not None:
                nxt = self._peek_time()
                if nxt is None or nxt > until:
                    self.now = max(self.now, until) if nxt is None else until
                    return
            if not self.step():
                return
            budget -= 1

    def run_until_event(
        self, event: SimEvent, *, limit: float | None = None
    ) -> Any:
        """Run until *event* triggers; returns its value.

        Raises ``RuntimeError`` if the queue drains (deadlock) or *limit*
        virtual time passes first — the error names the event to make
        hung-protocol test failures diagnosable.
        """
        while not event.triggered:
            if limit is not None and self.now >= limit:
                raise RuntimeError(
                    f"time limit {limit} reached waiting for {event!r}"
                )
            if not self.step():
                raise RuntimeError(f"deadlock: queue empty, {event!r} never fired")
        return event.value

    def _peek_time(self) -> float | None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def pending(self) -> int:
        """Number of live (non-cancelled) queue entries."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.1f}us, pending={self.pending()})"
