"""Generator-based simulated processes.

A simulated process is a Python generator that ``yield``s *directives* to
the kernel:

- ``yield hold(t)``   — advance virtual time by *t* microseconds;
- ``yield event``     — a :class:`~repro.sim.kernel.SimEvent`; the process
  resumes with the event's value when it triggers;
- ``yield process``   — another :class:`SimProcess`; resumes with its
  return value when that process finishes (fork/join).

Processes model the paper's client and server processes in the simulated
network-of-workstations experiments.  A process can be :meth:`killed
<SimProcess.kill>` — that is exactly how host crashes stop local clients.
"""

from __future__ import annotations

from typing import Any, Generator, Iterator

from repro.sim.kernel import SimEvent, Simulator

__all__ = ["Hold", "SimProcess", "hold", "spawn"]


class _ProcError:
    """Marker carried by ``finished`` when a process died with an exception."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


class Hold:
    """Directive: suspend the yielding process for ``duration`` time units."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError("cannot hold for negative time")
        self.duration = duration


def hold(duration: float) -> Hold:
    """``yield hold(t)`` — sleep for *t* microseconds of virtual time."""
    return Hold(duration)


class SimProcess:
    """A running generator, driven by the simulator's event queue.

    The process doubles as a waitable: its :attr:`finished` event triggers
    with the generator's return value, so ``yield other_process`` is join.
    Exceptions escaping the generator are re-raised in whoever joins it
    (and stored on :attr:`error`); unjoined failures surface when the test
    inspects the process.
    """

    __slots__ = ("sim", "name", "gen", "finished", "error", "_alive", "_pending")

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "proc")
        self.gen = gen
        self.finished = sim.event(f"{self.name}.finished")
        self.error: BaseException | None = None
        self._alive = True
        self._pending = None  # handle of our scheduled resume, for kill()
        sim.schedule(0.0, self._resume, None, None)

    # ------------------------------------------------------------------ #

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Stop the process immediately (crash semantics: no cleanup runs).

        The :attr:`finished` event never triggers for a killed process —
        mirroring a fail-silent host, which simply stops sending.
        """
        if not self._alive:
            return
        self._alive = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.gen.close()

    # ------------------------------------------------------------------ #

    def _resume(self, value: Any, exc: BaseException | None) -> None:
        if not self._alive:
            return
        self._pending = None
        try:
            if exc is not None:
                directive = self.gen.throw(exc)
            else:
                directive = self.gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self.finished.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - surfaced to joiner
            self._alive = False
            self.error = err
            self.finished.succeed(_ProcError(err))
            return
        try:
            self._dispatch(directive)
        except BaseException as err:  # e.g. a nonsense yield value
            self._alive = False
            self.error = err
            self.gen.close()
            self.finished.succeed(_ProcError(err))

    def _dispatch(self, directive: Any) -> None:
        if isinstance(directive, Hold):
            self._pending = self.sim.schedule(
                directive.duration, self._resume, None, None
            )
        elif isinstance(directive, SimEvent):
            directive.add_waiter(self._on_event)
        elif isinstance(directive, SimProcess):
            directive.finished.add_waiter(self._on_event)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {directive!r}; expected "
                "hold(t), a SimEvent, or a SimProcess"
            )

    def _on_event(self, value: Any) -> None:
        if isinstance(value, _ProcError):
            # joined a process that died: re-raise its exception in us
            self._resume(None, value.error)
        else:
            self._resume(value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"SimProcess({self.name}, {state})"


def spawn(sim: Simulator, gen: Generator[Any, Any, Any], name: str = "") -> SimProcess:
    """Create and start a :class:`SimProcess` for *gen*."""
    return SimProcess(sim, gen, name)
