"""Env-gated crash points for durability chaos tests.

Crash-safety claims ("a kill -9 at any point of compaction loses
nothing") are only worth making if a test can actually deliver the kill
at *that* point.  This module plants named crash points inside the
durability plane; a subprocess-driven test exports ``REPRO_CRASHPOINT=
<name>`` and the process SIGKILLs itself the instant execution reaches
the matching :func:`crash_here` — a real, untrappable death, not a
raised exception that ``finally`` blocks could soften.

In production the environment variable is unset and every crash point
costs one cached string comparison.

Planted points (see :mod:`repro.persist.segments`):

===============================  =======================================
name                             instant of death
===============================  =======================================
``segment_mid_record``           after a record's length prefix, before
                                 its body — a torn command record
``snapshot_before_rename``       snapshot temp file written and fsynced,
                                 not yet renamed into place
``snapshot_after_rename``        snapshot visible, manifest not rewritten
``manifest_before_prune``        manifest rewritten, covered segments
                                 not yet unlinked
``prune_partial``                first covered segment unlinked, rest
                                 still on disk
===============================  =======================================
"""

from __future__ import annotations

import os
import signal

__all__ = ["CRASHPOINT_ENV", "armed", "crash_here"]

CRASHPOINT_ENV = "REPRO_CRASHPOINT"

# Read once: a crash point sits inside fsync loops and must cost nothing
# when disarmed.  Tests arm it by exporting the variable before spawning
# the victim process, never by mutating it in-process.
_ARMED = os.environ.get(CRASHPOINT_ENV, "")


def armed() -> str:
    """The armed crash-point name ('' when disarmed)."""
    return _ARMED


def crash_here(name: str) -> None:
    """SIGKILL this process if crash point *name* is armed."""
    if _ARMED == name:
        os.kill(os.getpid(), signal.SIGKILL)
