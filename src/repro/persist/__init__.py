"""Log-based stable tuple space — the design alternative to replication.

The paper chooses replication for stable tuple spaces and says why
(Sec. 3): stable storage via logging serves a single processor, but "in
situations where stable values must also be shared among multiple
processors — as is the case here — replication is a more appropriate
choice."  This package implements the road not taken, so the choice can
be measured instead of asserted:

- :class:`~repro.persist.wal.WALRuntime` — a LocalRuntime whose command
  stream is written to a write-ahead log before execution; after a crash,
  :meth:`~repro.persist.wal.WALRuntime.recover` replays the log into an
  identical state (the state machine's determinism does the heavy
  lifting — replay *is* re-execution);
- the A5 ablation benchmark compares per-op overhead and recovery time
  of logging (with and without fsync) against the replicated cluster;
- :class:`~repro.persist.segments.SegmentedWALRuntime` — the scaled-up
  durability plane: rotated log segments, incremental copy-on-write
  snapshots taken by a background compactor, and recovery bounded by the
  snapshot cadence instead of the full history (see
  :mod:`repro.persist.segments`), with env-gated SIGKILL crash points
  (:mod:`repro.persist.crashpoints`) so the crash-safety argument is
  exercised, not assumed.
"""

from repro.persist.crashpoints import CRASHPOINT_ENV, crash_here
from repro.persist.segments import (
    ReplayResult,
    SegmentedLog,
    SegmentedWALRuntime,
    fsync_dir,
    replay_dir,
)
from repro.persist.wal import WALRuntime

__all__ = [
    "WALRuntime",
    "SegmentedWALRuntime",
    "SegmentedLog",
    "ReplayResult",
    "replay_dir",
    "fsync_dir",
    "CRASHPOINT_ENV",
    "crash_here",
]
