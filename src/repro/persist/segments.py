"""Segmented WAL: rotated segments, background compaction, bounded recovery.

:mod:`repro.persist.wal` keeps the whole history in one file, so both
compaction and recovery are O(history).  This module bounds recovery time
by *structure* instead:

- the log is a **directory** of fixed-size-ish segment files
  (``segment-00000042.log``), each a sequence of length-prefixed pickled
  ``(slot, payload)`` records, where *slot* is the state machine's
  ``applied_count`` after the payload command applies — the position of
  the record in the total order;
- a **snapshot** (``snapshot-0000000000001337.snap``) is a single framed
  record holding the machine image at a slot boundary.  Snapshots are
  written to a temp file, fsynced, and atomically renamed — the
  directory never contains a half-visible snapshot under its final name;
- a **MANIFEST** (JSON, also written via temp + rename) records what the
  last compaction believed the directory held.  It is *informational*:
  replay is a directory scan that trusts only file names and framing, so
  a torn or stale manifest is tolerated exactly like a torn record;
- **recovery** loads the newest readable snapshot and replays only the
  segment records with ``slot > snapshot_slot`` — O(delta since the last
  snapshot), not O(history).

Crash-safety is testable, not just argued: the five
:mod:`repro.persist.crashpoints` are planted at the exact instants a
naive implementation corrupts state (mid-record, before/after the
snapshot rename, before and during prune), and the chaos tests SIGKILL
subprocess victims at each one, then require fingerprint-identical
recovery.

The segment format is payload-agnostic — :class:`SegmentedWALRuntime`
journals single-host commands through it, and the replication layer
reuses the same :class:`SegmentedLog` for the durable replica-group
journal and for chunked state-transfer encoding.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import struct
import threading
import time
from typing import Any, BinaryIO

from repro.core.runtime import LocalRuntime
from repro.core.statemachine import Command, TSStateMachine
from repro.persist.crashpoints import armed, crash_here

__all__ = [
    "SegmentedLog",
    "SegmentedWALRuntime",
    "ReplayResult",
    "replay_dir",
    "fsync_dir",
]

_LEN = struct.Struct(">I")

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".log"
SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".snap"
MANIFEST = "MANIFEST"


def fsync_dir(path: str) -> None:
    """fsync the directory containing *path* (or *path* itself if a dir).

    Renames and unlinks are durable only once the *directory entry* is on
    disk; a crash after ``os.replace`` but before the directory fsync can
    resurrect the old name.  Platforms that refuse ``open(dir)`` (e.g.
    Windows) skip silently — rename atomicity still holds there.
    """
    d = path if os.path.isdir(path) else (os.path.dirname(os.path.abspath(path)))
    try:
        fd = os.open(d, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _Torn(Exception):
    """A framed record ended before its declared length (crash tail)."""


def _read_framed(f: BinaryIO) -> bytes:
    """Read one length-prefixed record or raise :class:`_Torn`."""
    header = f.read(_LEN.size)
    if len(header) < _LEN.size:
        raise _Torn
    (length,) = _LEN.unpack(header)
    blob = f.read(length)
    if len(blob) < length:
        raise _Torn
    return blob


def _scan_segment(path: str) -> tuple[list[tuple[int, Any]], int, int]:
    """All good ``(slot, payload)`` records of a segment, plus torn tail.

    Returns ``(records, torn_bytes, torn_records)``.  A tear mid-record
    ends the scan — records are appended strictly in order, so nothing
    readable can follow a tear.
    """
    records: list[tuple[int, Any]] = []
    torn_bytes = 0
    torn_records = 0
    with open(path, "rb") as f:
        while True:
            start = f.tell()
            try:
                blob = _read_framed(f)
            except _Torn:
                f.seek(0, os.SEEK_END)
                end = f.tell()
                if end > start:
                    torn_bytes = end - start
                    torn_records = 1
                break
            records.append(pickle.loads(blob))
    return records, torn_bytes, torn_records


class SegmentedLog:
    """A directory of rotated, length-prefixed record segments.

    Not thread-safe by itself — callers serialize appends (the runtimes
    append under their submission lock) and run compaction-side methods
    (``write_snapshot``/``write_manifest``/``prune``) from one compactor
    thread at a time.  Appends and compaction may interleave: compaction
    only ever touches *closed* segments and snapshot/manifest files.
    """

    def __init__(self, dir: str, *, fsync: bool = True, segment_bytes: int = 1 << 20):
        os.makedirs(dir, exist_ok=True)
        self.dir = dir
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        # Never append to a pre-existing segment: a fresh process gets a
        # fresh segment (lazily, on first append), so concurrent pruning
        # of old segments can never race an open write handle.
        self._seg: BinaryIO | None = None
        self._seg_index = self._next_index()
        self._seg_size = 0

    # ------------------------------------------------------------------ #
    # directory layout
    # ------------------------------------------------------------------ #

    def segments(self) -> list[tuple[int, str]]:
        """Sorted ``(index, path)`` of every segment file on disk."""
        out = []
        for name in os.listdir(self.dir):
            if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX):
                try:
                    idx = int(name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])
                except ValueError:
                    continue
                out.append((idx, os.path.join(self.dir, name)))
        out.sort()
        return out

    def snapshots(self) -> list[tuple[int, str]]:
        """Sorted ``(slot, path)`` of every snapshot file on disk."""
        out = []
        for name in os.listdir(self.dir):
            if name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX):
                try:
                    slot = int(name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)])
                except ValueError:
                    continue
                out.append((slot, os.path.join(self.dir, name)))
        out.sort()
        return out

    def _next_index(self) -> int:
        segs = self.segments()
        return segs[-1][0] + 1 if segs else 0

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #

    def append(self, slot: int, payload: Any) -> None:
        """Frame and append ``(slot, payload)``; fsync per the policy."""
        self._write_record(slot, payload)
        self._sync()

    def append_many(self, pairs) -> int:
        """Append many ``(slot, payload)`` pairs under ONE flush+fsync.

        The group journal's batch amortization: a sequencer batch of N
        commands costs one fsync, not N — the same argument that batches
        the broadcast itself.  Returns the number of records written.
        """
        n = 0
        for slot, payload in pairs:
            self._write_record(slot, payload)
            n += 1
        if n:
            self._sync()
        return n

    def _write_record(self, slot: int, payload: Any) -> None:
        blob = pickle.dumps((slot, payload), protocol=pickle.HIGHEST_PROTOCOL)
        if self._seg is None or self._seg_size >= self.segment_bytes:
            self._rotate()
        seg = self._seg
        assert seg is not None
        seg.write(_LEN.pack(len(blob)))
        if armed() == "segment_mid_record":
            # Flush a half-written body so the tear is really on disk,
            # then die: recovery must discard exactly this record.
            seg.write(blob[: len(blob) // 2])
            seg.flush()
            os.fsync(seg.fileno())
            crash_here("segment_mid_record")
        seg.write(blob)
        self._seg_size += _LEN.size + len(blob)

    def _sync(self) -> None:
        seg = self._seg
        if seg is None:
            return
        seg.flush()
        if self.fsync:
            os.fsync(seg.fileno())

    def _rotate(self) -> None:
        if self._seg is not None:
            self._seg.close()
        path = os.path.join(
            self.dir, f"{SEGMENT_PREFIX}{self._seg_index:08d}{SEGMENT_SUFFIX}"
        )
        self._seg = open(path, "ab")
        self._seg_size = 0
        self._seg_index += 1
        if self.fsync:
            fsync_dir(path)

    @property
    def active_segment(self) -> str | None:
        """Path of the currently open segment, if any."""
        return self._seg.name if self._seg is not None else None

    # ------------------------------------------------------------------ #
    # compaction side
    # ------------------------------------------------------------------ #

    def write_snapshot(self, slot: int, blob: bytes) -> str:
        """Durably install a snapshot covering everything up to *slot*.

        temp file → fsync → :func:`crash_here` → atomic rename → dir
        fsync: at no instant does the final name hold a partial snapshot,
        and a crash on either side of the rename leaves a recoverable
        directory (before: old snapshot + full log; after: new snapshot
        shadows the covered prefix).
        """
        final = os.path.join(
            self.dir, f"{SNAPSHOT_PREFIX}{slot:016d}{SNAPSHOT_SUFFIX}"
        )
        tmp = final + ".tmp"
        with open(tmp, "wb") as f:
            f.write(_LEN.pack(len(blob)))
            f.write(blob)
            f.flush()
            os.fsync(f.fileno())
        crash_here("snapshot_before_rename")
        os.replace(tmp, final)
        fsync_dir(final)
        crash_here("snapshot_after_rename")
        return final

    def write_manifest(self, snapshot_slot: int) -> None:
        """Rewrite the (informational) manifest via temp + atomic rename."""
        doc = {
            "snapshot_slot": snapshot_slot,
            "segments": [os.path.basename(p) for _, p in self.segments()],
            "snapshots": [os.path.basename(p) for _, p in self.snapshots()],
        }
        path = os.path.join(self.dir, MANIFEST)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        fsync_dir(path)

    def prune(self, covered_slot: int) -> list[str]:
        """Unlink closed segments fully covered by the snapshot at *covered_slot*.

        A segment is covered when its last good record's slot is ≤
        *covered_slot* (slots grow monotonically within and across
        segments).  Superseded snapshots are dropped too.  Pruning is
        pure garbage collection — a crash that leaves covered segments
        behind only costs replay the work of skipping their records.

        Safe to run concurrently with appends: only segments strictly
        below the active index are candidates, so a writer's open handle
        (including one a concurrent rotation just created) can never be
        unlinked underneath it.
        """
        crash_here("manifest_before_prune")
        removed: list[str] = []
        cutoff = self._seg_index - 1 if self._seg is not None else self._seg_index
        for idx, path in self.segments():
            if idx >= cutoff:
                continue
            records, _tb, _tr = _scan_segment(path)
            if records and records[-1][0] > covered_slot:
                continue
            os.unlink(path)
            removed.append(path)
            if len(removed) == 1:
                crash_here("prune_partial")
        for _slot, path in self.snapshots()[:-1]:
            os.unlink(path)
            removed.append(path)
        if removed:
            fsync_dir(self.dir)
        return removed

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #

    def status(self) -> dict[str, Any]:
        segs = self.segments()
        snaps = self.snapshots()

        def _size(path: str) -> int:
            try:
                return os.path.getsize(path)
            except OSError:
                return 0

        seg_bytes = sum(_size(p) for _, p in segs)
        snap_bytes = sum(_size(p) for _, p in snaps)
        return {
            "dir": self.dir,
            "segments": len(segs),
            "segment_bytes": seg_bytes,
            "snapshots": len(snaps),
            "snapshot_bytes": snap_bytes,
            "snapshot_slot": snaps[-1][0] if snaps else 0,
            "total_bytes": seg_bytes + snap_bytes,
        }

    def close(self) -> None:
        if self._seg is not None:
            self._seg.close()
            self._seg = None


class ReplayResult:
    """What :func:`replay_dir` found: snapshot, delta records, damage."""

    __slots__ = (
        "snapshot",
        "snapshot_slot",
        "records",
        "torn_bytes",
        "torn_records",
        "torn_snapshots",
        "manifest_ok",
        "segments_read",
    )

    def __init__(self) -> None:
        self.snapshot: dict[str, Any] | None = None
        self.snapshot_slot = 0
        self.records: list[tuple[int, Any]] = []
        self.torn_bytes = 0
        self.torn_records = 0
        self.torn_snapshots = 0
        self.manifest_ok = False
        self.segments_read = 0


def replay_dir(dir: str) -> ReplayResult:
    """Scan a segmented-WAL directory into a :class:`ReplayResult`.

    Trusts only file names and record framing.  The newest *readable*
    snapshot wins (torn or unpicklable ones are counted and skipped —
    they were never acknowledged, exactly like torn command records);
    segment records at slots the snapshot covers are skipped.  The
    manifest is read solely to report whether it parses.
    """
    res = ReplayResult()
    if not os.path.isdir(dir):
        return res
    log = SegmentedLog.__new__(SegmentedLog)
    log.dir = dir
    log._seg = None

    manifest = os.path.join(dir, MANIFEST)
    if os.path.exists(manifest):
        try:
            with open(manifest, "r", encoding="utf-8") as f:
                json.load(f)
            res.manifest_ok = True
        except (OSError, ValueError):
            res.manifest_ok = False

    for slot, path in reversed(log.snapshots()):
        try:
            with open(path, "rb") as f:
                blob = _read_framed(f)
            res.snapshot = pickle.loads(blob)
            res.snapshot_slot = slot
            break
        except (_Torn, OSError, pickle.UnpicklingError, EOFError):
            res.torn_snapshots += 1

    for _idx, path in log.segments():
        records, tb, tr = _scan_segment(path)
        res.segments_read += 1
        res.torn_bytes += tb
        res.torn_records += tr
        for slot, payload in records:
            if slot <= res.snapshot_slot:
                continue
            res.records.append((slot, payload))
    return res


class SegmentedWALRuntime(LocalRuntime):
    """A LocalRuntime journaling through a :class:`SegmentedLog`.

    Same contract as :class:`~repro.persist.wal.WALRuntime` — every
    command is durably framed before it applies, recovery replays the
    surviving prefix — but with segments, incremental copy-on-write
    snapshots, and compaction running on a background thread instead of
    stop-the-world inside the submission lock.

    Parameters
    ----------
    dir:
        Log directory (created as needed).
    fsync:
        Force every record (and rotation) to disk.  The durability /
        latency knob, as in :class:`WALRuntime`.
    segment_bytes:
        Rotate the active segment once it exceeds this size.
    compact_every:
        Take a snapshot after this many records (None = no count-based
        trigger).
    compact_interval:
        Take a snapshot at least this often, in seconds (None = no
        time-based trigger).  Either trigger starts the compactor thread.
    """

    def __init__(
        self,
        dir: str,
        *,
        fsync: bool = True,
        segment_bytes: int = 1 << 20,
        compact_every: int | None = None,
        compact_interval: float | None = None,
    ):
        super().__init__()
        self._init_wal(
            dir,
            fsync=fsync,
            segment_bytes=segment_bytes,
            compact_every=compact_every,
            compact_interval=compact_interval,
        )

    def _init_wal(
        self,
        dir: str,
        *,
        fsync: bool,
        segment_bytes: int,
        compact_every: int | None,
        compact_interval: float | None,
    ) -> None:
        self.dir = dir
        self.fsync = fsync
        self.compact_every = compact_every
        self.compact_interval = compact_interval
        self.records_written = 0
        self.replayed = 0
        self.torn_bytes = 0
        self.torn_records = 0
        self.torn_snapshots = 0
        self.snapshots_written = 0
        self.snapshot_slot = 0
        self._snapshot_time: float | None = None
        self._records_since_snapshot = 0
        self.log = SegmentedLog(dir, fsync=fsync, segment_bytes=segment_bytes)
        self._g_segments = self.metrics.gauge("wal_segments")
        self._g_wal_bytes = self.metrics.gauge("wal_bytes")
        self._g_snapshot_slot = self.metrics.gauge("wal_snapshot_slot")
        self._g_snapshot_age = self.metrics.gauge("wal_snapshot_age_s")
        self._compact_lock = threading.Lock()
        self._wake = threading.Event()
        self._stop_compactor = threading.Event()
        self._compactor: threading.Thread | None = None
        if compact_every is not None or compact_interval is not None:
            self._compactor = threading.Thread(
                target=self._compaction_loop, name="wal-compactor", daemon=True
            )
            self._compactor.start()

    # ------------------------------------------------------------------ #
    # logging hook (same proxy pattern as WALRuntime)
    # ------------------------------------------------------------------ #

    def _append(self, command: Command) -> None:
        # applied_count is the machine's position in the total order and
        # advances by exactly one per apply; _append runs under the
        # submission lock immediately before apply, so this command will
        # land at slot applied_count + 1.
        slot = self._logging_sm._inner.applied_count + 1
        self.log.append(slot, command)
        self.records_written += 1
        self._records_since_snapshot += 1
        if (
            self.compact_every is not None
            and self._records_since_snapshot >= self.compact_every
        ):
            self._wake.set()

    @property
    def _sm(self):  # type: ignore[override]
        return self._logging_sm

    @_sm.setter
    def _sm(self, machine) -> None:
        from repro.persist.wal import _LoggingSM

        object.__setattr__(self, "_logging_sm", _LoggingSM(self, machine))

    def _wal_bytes(self) -> int | None:
        try:
            return self.log.status()["total_bytes"]
        except OSError:
            return None

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #

    def _compaction_loop(self) -> None:
        while True:
            self._wake.wait(self.compact_interval)
            if self._stop_compactor.is_set():
                return
            self._wake.clear()
            if self._records_since_snapshot == 0:
                continue
            try:
                self.compact()
            except Exception as exc:  # noqa: BLE001 - must not kill the thread
                from repro.obs.events import emit

                emit(
                    "wal_compaction_failed",
                    severity="error",
                    dir=self.dir,
                    error=repr(exc),
                )

    def compact(self) -> int | None:
        """Snapshot the machine and prune covered segments.

        The submission lock is held only for the O(dirty-buckets)
        copy-on-write image; serialization, the snapshot fsync, the
        manifest rewrite and pruning all run off the apply path.  Returns
        the covered slot, or None when nothing new had applied.
        """
        from repro.obs.events import emit

        with self._compact_lock:
            t0 = time.perf_counter()
            with self._lock:
                image = self._logging_sm._inner.cow_snapshot(retain=False)
            slot = image.applied_count
            if slot <= self.snapshot_slot:
                return None
            emit("snapshot_started", dir=self.dir, slot=slot)
            blob = pickle.dumps(image.to_snapshot(), protocol=pickle.HIGHEST_PROTOCOL)
            self.log.write_snapshot(slot, blob)
            self.snapshots_written += 1
            self.snapshot_slot = slot
            self._snapshot_time = time.monotonic()
            # Reset races with concurrent appends; the counter is only a
            # compaction trigger, so a lost increment just delays the
            # next snapshot by one command.
            self._records_since_snapshot = 0
            self.log.write_manifest(slot)
            removed = self.log.prune(slot)
            elapsed = time.perf_counter() - t0
            emit(
                "snapshot_finished",
                dir=self.dir,
                slot=slot,
                bytes=len(blob),
                seconds=elapsed,
            )
            emit(
                "wal_compacted",
                dir=self.dir,
                covered_slot=slot,
                removed=len(removed),
                bytes=self._wal_bytes(),
            )
            self._update_gauges()
            return slot

    def _update_gauges(self) -> None:
        st = self.log.status()
        self._g_segments.set(st["segments"])
        self._g_wal_bytes.set(st["total_bytes"])
        self._g_snapshot_slot.set(self.snapshot_slot)
        if self._snapshot_time is not None:
            self._g_snapshot_age.set(time.monotonic() - self._snapshot_time)

    def wal_status(self) -> dict[str, Any]:
        """Everything the ``cli wal`` subcommand shows, as plain data."""
        st = self.log.status()
        st["records_written"] = self.records_written
        st["replayed"] = self.replayed
        st["torn_bytes"] = self.torn_bytes
        st["torn_records"] = self.torn_records
        st["torn_snapshots"] = self.torn_snapshots
        st["snapshots_written"] = self.snapshots_written
        st["snapshot_slot"] = max(st["snapshot_slot"], self.snapshot_slot)
        st["applied"] = self._logging_sm._inner.applied_count
        st["fsync"] = self.fsync
        st["snapshot_age_s"] = (
            time.monotonic() - self._snapshot_time
            if self._snapshot_time is not None
            else None
        )
        self._update_gauges()
        return st

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _stop_compaction_thread(self) -> None:
        if self._compactor is not None:
            self._stop_compactor.set()
            self._wake.set()
            self._compactor.join(timeout=5.0)
            self._compactor = None

    def close(self) -> None:
        self._stop_compaction_thread()
        self.log.close()

    def crash(self) -> None:
        """Simulate a crash: drop everything volatile, keep only the dir."""
        self._stop_compaction_thread()
        self.log.close()

    @classmethod
    def recover(
        cls,
        dir: str,
        *,
        fsync: bool = True,
        segment_bytes: int = 1 << 20,
        compact_every: int | None = None,
        compact_interval: float | None = None,
    ) -> "SegmentedWALRuntime":
        """Rebuild a runtime from the newest snapshot plus the delta log.

        Replay cost is bounded by the snapshot cadence: one snapshot load
        plus however many commands applied since it was taken — never the
        full history.  Torn tails (records, snapshots, manifest) are
        tolerated and reported, same argument as WALRuntime: a torn
        record was never acknowledged, so discarding it is correct.
        """
        res = replay_dir(dir)
        rt = cls.__new__(cls)
        LocalRuntime.__init__(rt)
        highest_rid = 0
        if res.snapshot is not None:
            rt._sm = TSStateMachine.from_snapshot(res.snapshot)
        inner = rt._logging_sm._inner
        for rid in inner.completed:
            highest_rid = max(highest_rid, rid)
        for b in inner.blocked:
            highest_rid = max(highest_rid, b.command.request_id)
        for _slot, command in res.records:
            highest_rid = max(highest_rid, getattr(command, "request_id", 0))
            inner.apply(command)
        # recovery completions are dropped: their clients died with the crash
        rt._results.clear()
        rt._req_ids = itertools.count(highest_rid + 1)
        rt._init_wal(
            dir,
            fsync=fsync,
            segment_bytes=segment_bytes,
            compact_every=compact_every,
            compact_interval=compact_interval,
        )
        rt.replayed = len(res.records) + (1 if res.snapshot is not None else 0)
        rt.torn_bytes = res.torn_bytes
        rt.torn_records = res.torn_records
        rt.torn_snapshots = res.torn_snapshots
        rt.snapshot_slot = res.snapshot_slot
        if res.torn_bytes or res.torn_snapshots:
            from repro.obs.events import emit

            emit(
                "wal_torn_tail",
                severity="warning",
                path=dir,
                torn_bytes=res.torn_bytes,
                torn_records=res.torn_records,
                torn_snapshots=res.torn_snapshots,
                replayed=rt.replayed,
            )
        return rt
