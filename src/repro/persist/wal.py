"""Write-ahead-logged FT-Linda runtime (single-host stable storage).

Design: the total order on a single host is the submission order under
the runtime lock; we log every *state-changing* command (pickled,
length-prefixed) before applying it.  Because the
:class:`~repro.core.statemachine.TSStateMachine` is deterministic, crash
recovery is simply replaying the surviving prefix of the log into a fresh
machine — the same argument that makes replica state transfer sound makes
log replay sound.

What is and is not logged:

- ``out``/``in``/``move``/… — anything that can change tuple state — is
  logged, *including* statements that end up blocking (they are state:
  a parked ``in`` must survive the crash, or a post-recovery ``out``
  would mint a tuple the pre-crash program believed consumed);
- probes and reads change nothing but still consume their place in the
  order; logging them keeps replay literally identical, so we log
  everything and measure the cost honestly;
- ``fsync`` per record is the durability/latency knob (the A5 ablation's
  axis): without it a crash can lose the OS-buffered suffix.

Log format: 4-byte big-endian length + pickle, repeated.  A torn final
record (crash mid-write) is detected and discarded during replay.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
from typing import BinaryIO

from repro.core.runtime import LocalRuntime
from repro.core.statemachine import Command
from repro.persist.segments import fsync_dir

__all__ = ["WALRuntime"]

_LEN = struct.Struct(">I")


class _LoggingSM:
    """State-machine proxy: append each command to the WAL, then apply.

    Attribute access (get *and* set — e.g. the runtime rewriting
    ``blocked`` on a timeout cancellation) is forwarded to the wrapped
    machine, so the proxy is transparent to every LocalRuntime code path.
    """

    __slots__ = ("_outer", "_inner")

    def __init__(self, outer: "WALRuntime", inner):
        object.__setattr__(self, "_outer", outer)
        object.__setattr__(self, "_inner", inner)

    def apply(self, command):
        self._outer._append(command)
        return self._inner.apply(command)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __setattr__(self, name, value):
        setattr(self._inner, name, value)


class WALRuntime(LocalRuntime):
    """A LocalRuntime with a write-ahead log and crash recovery.

    Parameters
    ----------
    path:
        Log file location; created (or appended to) as needed.
    fsync:
        When True every record is forced to disk before the command
        executes — real stable storage, at real cost.  When False the OS
        buffers writes (fast, but a crash can lose the tail).
    """

    def __init__(self, path: str, *, fsync: bool = True):
        super().__init__()
        self.path = path
        self.fsync = fsync
        self.records_written = 0
        self.torn_bytes = 0
        self.torn_records = 0
        self._log: BinaryIO = open(path, "ab")

    # ------------------------------------------------------------------ #
    # logging hooks: wrap the state machine's apply under the lock
    # ------------------------------------------------------------------ #

    def _append(self, command: Command) -> None:
        blob = pickle.dumps(command, protocol=pickle.HIGHEST_PROTOCOL)
        self._log.write(_LEN.pack(len(blob)))
        self._log.write(blob)
        self._log.flush()
        if self.fsync:
            os.fsync(self._log.fileno())
        self.records_written += 1

    # LocalRuntime funnels every command through self._sm.apply (all under
    # the runtime lock, so the log order IS the execution order); we
    # intercept by shadowing the state machine with a logging proxy.
    @property
    def _sm(self):  # type: ignore[override]
        return self._logging_sm

    @_sm.setter
    def _sm(self, machine) -> None:
        object.__setattr__(self, "_logging_sm", _LoggingSM(self, machine))

    def _wal_bytes(self) -> int | None:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        self._log.close()

    def crash(self) -> None:
        """Simulate a crash: drop everything volatile, keep only the log."""
        self._log.close()

    @classmethod
    def recover(cls, path: str, *, fsync: bool = True) -> "WALRuntime":
        """Rebuild a runtime by replaying the log at *path*.

        Replay applies each logged command to a fresh state machine in
        order; determinism guarantees the rebuilt tuple state equals the
        pre-crash state (parked statements included).  Blocked statements
        whose clients died with the crash remain parked — exactly the
        stable-TS semantics: the tuples and obligations survive, the
        processes do not.
        """
        rt = cls.__new__(cls)
        LocalRuntime.__init__(rt)
        rt.path = path
        rt.fsync = fsync
        rt.records_written = 0
        replayed = 0
        highest_rid = 0
        torn_bytes = 0
        torn_records = 0
        with open(path, "rb") as f:
            while True:
                record_start = f.tell()
                header = f.read(_LEN.size)
                if len(header) < _LEN.size:
                    if header:
                        # torn header: crashed mid-write, discard the tail
                        f.seek(0, os.SEEK_END)
                        torn_bytes = f.tell() - record_start
                        torn_records = 1
                    break
                (length,) = _LEN.unpack(header)
                blob = f.read(length)
                if len(blob) < length:
                    # torn final record: crashed mid-write, discard
                    f.seek(0, os.SEEK_END)
                    torn_bytes = f.tell() - record_start
                    torn_records = 1
                    break
                command = pickle.loads(blob)
                if isinstance(command, _SnapshotRecord):
                    # compaction head: restart replay from the snapshot
                    from repro.core.statemachine import TSStateMachine

                    rt._sm = TSStateMachine.from_snapshot(command.snapshot)
                    inner = rt._logging_sm._inner
                    for rid in inner.completed:
                        highest_rid = max(highest_rid, rid)
                    for b in inner.blocked:
                        highest_rid = max(highest_rid, b.command.request_id)
                else:
                    highest_rid = max(highest_rid, command.request_id)
                    rt._logging_sm._inner.apply(command)
                replayed += 1
        # recovery completions are dropped: their clients are gone
        rt._results.clear()
        rt.replayed = replayed
        rt.torn_bytes = torn_bytes
        rt.torn_records = torn_records
        if torn_bytes:
            from repro.obs.events import emit

            emit(
                "wal_torn_tail",
                severity="warning",
                path=path,
                torn_bytes=torn_bytes,
                torn_records=torn_records,
                replayed=replayed,
            )
        # resume request ids past the replayed history: the rebuilt state
        # machine remembers completed ids (duplicate suppression), so a
        # fresh command must never reuse one
        rt._req_ids = itertools.count(highest_rid + 1)
        rt._log = open(path, "ab")
        return rt

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def compact(self) -> int:
        """Replace the log with a single snapshot-restore record.

        Returns the number of records the compaction eliminated.  Uses the
        state machine's snapshot as the new log head — replay of a
        compacted log starts from the snapshot instead of genesis.
        """
        with self._lock:
            snapshot = self._logging_sm._inner.snapshot()
            old = self.records_written
            # Write the replacement log beside the live one, force it to
            # disk, then atomically swap it in: at no instant does the
            # path name an empty or partial log, so a crash at any point
            # leaves either the full old log or the full new one.
            tmp = self.path + ".compact.tmp"
            with open(tmp, "wb") as f:
                blob = pickle.dumps(
                    _SnapshotRecord(snapshot), protocol=pickle.HIGHEST_PROTOCOL
                )
                f.write(_LEN.pack(len(blob)))
                f.write(blob)
                f.flush()
                os.fsync(f.fileno())
            self._log.close()
            os.replace(tmp, self.path)
            fsync_dir(self.path)
            self._log = open(self.path, "ab")
            self.records_written = 1
            from repro.obs.events import emit

            emit(
                "wal_compacted",
                path=self.path,
                eliminated=max(old - 1, 0),
                bytes=self._wal_bytes(),
            )
            return max(old - 1, 0)


class _SnapshotRecord:
    """A log record carrying a full state snapshot (compaction head)."""

    __slots__ = ("snapshot",)

    def __init__(self, snapshot: dict):
        self.snapshot = snapshot
