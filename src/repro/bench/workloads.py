"""Shared workload drivers for the simulation-based experiments.

Each driver builds a fresh :class:`~repro.consul.cluster.SimCluster` (or
baseline cluster), runs a deterministic workload, and returns the metric
samples in **virtual microseconds** — the honest unit for simulated
experiments (wall-clock time of the simulator itself is meaningless).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.consul import ClusterConfig, SimCluster
from repro.consul.config import ConsulConfig
from repro.core.ags import AGS, Guard, Op, ref
from repro.core.tuples import formal

__all__ = [
    "ags_latency_samples",
    "incr_statement",
    "make_cluster",
    "mean",
    "percentile",
]


def make_cluster(
    n_hosts: int,
    *,
    seed: int = 0,
    n_clients: int = 0,
    quiet: bool = True,
    jitter_us: float = 0.0,
    bandwidth_bps: float = 10_000_000.0,
    propagation_us: float = 50.0,
    ordering: str = "sequencer",
    **consul_overrides: Any,
) -> SimCluster:
    """A cluster with (by default) membership chatter pushed off-horizon.

    Latency experiments want a quiet wire: with ``quiet=True`` heartbeats
    fire every 10 virtual seconds, far beyond the measurement window, so
    the only frames are the protocol's own.
    """
    kw: dict[str, Any] = dict(consul_overrides)
    if quiet:
        kw.setdefault("hb_interval_us", 10_000_000.0)
        kw.setdefault("suspect_timeout_us", 40_000_000.0)
    cfg = ClusterConfig(
        n_hosts=n_hosts,
        n_clients=n_clients,
        seed=seed,
        ordering=ordering,
        consul=ConsulConfig(**kw),
        jitter_us=jitter_us,
        bandwidth_bps=bandwidth_bps,
        propagation_us=propagation_us,
    )
    return SimCluster(cfg)


def incr_statement(ts) -> AGS:
    """The canonical fetch-and-increment AGS used across experiments."""
    return AGS.single(
        Guard.in_(ts, "count", formal(int, "v")),
        [Op.out(ts, "count", ref("v") + 1)],
    )


def ags_latency_samples(
    cluster: SimCluster,
    host: int,
    make_stmt: Callable[[Any], AGS],
    n_samples: int,
    *,
    limit: float = 120_000_000.0,
) -> list[float]:
    """Submit *n_samples* statements sequentially; return per-AGS latency.

    Latency is submit → completion-event in virtual microseconds, i.e. the
    full path: request transmission, total ordering, replica execution and
    completion notification — the paper's "rough estimate of the total
    latency of an AGS" (Sec. 5.3).
    """
    samples: list[float] = []

    def driver(view):
        for _ in range(n_samples):
            t0 = view.sim.now
            yield view.execute(make_stmt(view.main_ts))
            samples.append(view.sim.now - t0)

    proc = cluster.spawn(host, driver)
    cluster.run_until(proc.finished, limit=limit)
    if proc.error is not None:
        raise proc.error
    return samples


def mean(xs: list[float]) -> float:
    return sum(xs) / len(xs) if xs else float("nan")


def percentile(xs: list[float], p: float) -> float:
    if not xs:
        return float("nan")
    ys = sorted(xs)
    idx = min(len(ys) - 1, max(0, int(round(p / 100 * (len(ys) - 1)))))
    return ys[idx]
