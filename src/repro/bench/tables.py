"""Minimal fixed-width table rendering for benchmark reports."""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Sequence

__all__ = ["Table", "results_dir", "save_json", "save_table"]


class Table:
    """A titled table accumulated row by row, rendered fixed-width."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []
        self.notes: list[str] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title)]
        out.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        out.append(sep)
        for row in self.rows:
            out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for n in self.notes:
            out.append(f"  note: {n}")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def results_dir() -> str:
    """The benchmarks/results directory (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def save_table(table: Table, name: str) -> str:
    """Print *table* and persist it under benchmarks/results/<name>.txt."""
    text = table.render()
    print()
    print(text)
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    return path


def save_json(payload: Any, path: str) -> str:
    """Persist machine-readable benchmark results as JSON at *path*.

    The perf-trajectory companion to :func:`save_table`: tables are for
    humans, these ``BENCH_*.json`` files are for tooling that compares
    runs over time.  Relative paths land in ``benchmarks/results/``.
    """
    if not os.path.isabs(path) and os.sep not in path:
        path = os.path.join(results_dir(), path)
    else:
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
