"""The unified perf-regression harness: one schema, one comparator.

Every ``benchmarks/bench_*.py`` used to write its own ad-hoc JSON shape,
so the repo's perf trajectory was write-only: nothing could compare a
fresh run against the committed numbers.  This module is the contract
that makes BENCH results machine-comparable from now on:

- :func:`make_result` — wraps a benchmark's named scalar metrics in the
  standardized payload (schema version, benchmark name, git sha, UTC
  timestamp, host info, config), each metric carrying its ``direction``
  ("higher" is better, or "lower") and an optional per-metric relative
  ``tolerance`` overriding the comparison default;
- :func:`save_result` / :func:`load_result` — committed baselines live at
  ``benchmarks/results/BENCH_<name>.json`` (:func:`baseline_path`), so
  *running a benchmark in place IS the baseline-refresh workflow*; CI
  runs write elsewhere (``--out-dir``) and diff against the committed
  files;
- :func:`validate_result` — the schema gate ``repro.cli bench run``
  enforces (a benchmark whose output stops conforming is a harness
  failure, exit 2, even when every number is fast);
- :func:`compare` / :func:`render_comparison` — direction-aware diff of
  a run against a baseline: each metric gets a verdict (``ok`` /
  ``improved`` / ``regressed`` / ``new`` / ``missing``), where
  "regressed" means moved in the bad direction by more than the metric's
  tolerance.  ``repro.cli bench compare`` turns the verdicts into exit
  codes (0 clean, 1 regressions, 2 missing/violated schema).

The tuple-space-efficiency survey (PAPERS.md) defines the comparison
axes a Linda implementation should track — op costs, scaling, latency
decomposition; the committed BENCH files are this repo's instance of
that table, and this harness is what keeps them comparable run to run.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any, Iterable, Mapping

from repro.bench.tables import results_dir, save_json

__all__ = [
    "DEFAULT_TOLERANCE",
    "SCHEMA_VERSION",
    "baseline_path",
    "compare",
    "load_result",
    "make_result",
    "metric",
    "render_comparison",
    "save_result",
    "validate_result",
]

SCHEMA_VERSION = 1

#: Default relative tolerance: a metric moving more than this fraction in
#: the bad direction counts as a regression.  Generous on purpose — these
#: are wall-clock benchmarks on shared CI machines; per-metric
#: ``tolerance`` overrides it for steadier (or noisier) metrics.
DEFAULT_TOLERANCE = 0.25

_DIRECTIONS = ("higher", "lower")


def metric(
    value: float,
    direction: str = "higher",
    *,
    unit: str = "",
    tolerance: float | None = None,
) -> dict[str, Any]:
    """One named scalar in the standardized payload.

    ``direction`` states which way is *better* ("higher" for throughput,
    "lower" for latency); ``tolerance`` optionally overrides the
    comparison default for this metric alone.
    """
    if direction not in _DIRECTIONS:
        raise ValueError(f"direction must be one of {_DIRECTIONS}")
    m: dict[str, Any] = {"value": float(value), "direction": direction}
    if unit:
        m["unit"] = unit
    if tolerance is not None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        m["tolerance"] = float(tolerance)
    return m


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except Exception:  # noqa: BLE001 - host info is best-effort
        pass
    return "unknown"


def _host_info() -> dict[str, Any]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def make_result(
    benchmark: str,
    metrics: Mapping[str, Mapping[str, Any]],
    *,
    config: Mapping[str, Any] | None = None,
    quick: bool = False,
) -> dict[str, Any]:
    """Assemble the standardized payload for one benchmark run."""
    payload = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": _host_info(),
        "config": dict(config or {}),
        "quick": bool(quick),
        "metrics": {name: dict(m) for name, m in metrics.items()},
    }
    errors = validate_result(payload)
    if errors:
        raise ValueError(f"benchmark {benchmark!r} payload invalid: {errors}")
    return payload


def validate_result(payload: Any) -> list[str]:
    """Schema check; returns human-readable violations (empty = valid)."""
    errors: list[str] = []
    if not isinstance(payload, Mapping):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema version {payload.get('schema')!r} != {SCHEMA_VERSION}"
        )
    if not payload.get("benchmark"):
        errors.append("missing benchmark name")
    for key in ("git_sha", "timestamp", "host", "config"):
        if key not in payload:
            errors.append(f"missing {key}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        errors.append("metrics must be a non-empty object")
        return errors
    for name, m in metrics.items():
        if not isinstance(m, Mapping):
            errors.append(f"metric {name!r} is not an object")
            continue
        value = m.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"metric {name!r} has non-numeric value")
        if m.get("direction") not in _DIRECTIONS:
            errors.append(f"metric {name!r} direction must be higher|lower")
        tol = m.get("tolerance")
        if tol is not None and (
            not isinstance(tol, (int, float)) or tol <= 0
        ):
            errors.append(f"metric {name!r} tolerance must be positive")
    return errors


def baseline_path(benchmark: str, directory: str | None = None) -> str:
    """Where *benchmark*'s committed baseline lives."""
    return os.path.join(
        directory if directory is not None else results_dir(),
        f"BENCH_{benchmark}.json",
    )


def save_result(payload: Mapping[str, Any], path: str | None = None) -> str:
    """Persist a run; default path is its committed-baseline location."""
    if path is None:
        path = baseline_path(str(payload["benchmark"]))
    return save_json(payload, path)


def load_result(path: str) -> dict[str, Any]:
    with open(path) as f:
        return json.load(f)


# --------------------------------------------------------------------------- #
# comparison
# --------------------------------------------------------------------------- #


def compare(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> list[dict[str, Any]]:
    """Direction-aware metric-by-metric diff of *current* vs *baseline*.

    One row per metric name present in either payload:

    ``ok``         within tolerance of the baseline
    ``improved``   moved in the good direction past the tolerance
    ``regressed``  moved in the bad direction past the tolerance
    ``new``        in the current run but not the baseline (informational)
    ``missing``    in the baseline but gone from the current run — a
                   harness/schema problem, not a perf one: the benchmark
                   stopped measuring something it used to
    """
    cur = current.get("metrics", {})
    base = baseline.get("metrics", {})
    rows: list[dict[str, Any]] = []
    for name in sorted(set(cur) | set(base)):
        c, b = cur.get(name), base.get(name)
        if b is None:
            rows.append(
                {
                    "metric": name,
                    "baseline": None,
                    "current": c["value"],
                    "delta_pct": None,
                    "direction": c.get("direction", "higher"),
                    "verdict": "new",
                }
            )
            continue
        if c is None:
            rows.append(
                {
                    "metric": name,
                    "baseline": b["value"],
                    "current": None,
                    "delta_pct": None,
                    "direction": b.get("direction", "higher"),
                    "verdict": "missing",
                }
            )
            continue
        direction = c.get("direction", b.get("direction", "higher"))
        tol = c.get("tolerance", b.get("tolerance", default_tolerance))
        bv, cv = b["value"], c["value"]
        delta = (cv - bv) / bv if bv else (0.0 if cv == bv else float("inf"))
        good_delta = delta if direction == "higher" else -delta
        if good_delta < -tol:
            verdict = "regressed"
        elif good_delta > tol:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append(
            {
                "metric": name,
                "baseline": bv,
                "current": cv,
                "delta_pct": 100.0 * delta,
                "direction": direction,
                "tolerance": tol,
                "verdict": verdict,
            }
        )
    return rows


def _fmt_value(v: Any) -> str:
    if v is None:
        return "-"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    if abs(v) >= 1:
        return f"{v:.2f}"
    return f"{v:.5f}"


def render_comparison(
    benchmark: str, rows: Iterable[Mapping[str, Any]]
) -> str:
    """The ``bench compare`` report for one benchmark (pure string)."""
    lines = [
        f"BENCH {benchmark}",
        f"{'METRIC':<40} {'BASELINE':>12} {'CURRENT':>12} "
        f"{'DELTA':>8} {'DIR':>6}  VERDICT",
    ]
    for r in rows:
        delta = (
            f"{r['delta_pct']:+.1f}%" if r.get("delta_pct") is not None else "-"
        )
        mark = {
            "regressed": " <-- REGRESSION",
            "missing": " <-- MISSING METRIC",
        }.get(r["verdict"], "")
        lines.append(
            f"{r['metric']:<40.40} {_fmt_value(r['baseline']):>12} "
            f"{_fmt_value(r['current']):>12} {delta:>8} "
            f"{r['direction']:>6}  {r['verdict']}{mark}"
        )
    return "\n".join(lines)
