"""Benchmark support: table rendering and result persistence.

Every experiment module under ``benchmarks/`` renders its output through
:class:`~repro.bench.tables.Table`, so the regenerated tables read like
the paper's — one labelled row per configuration — and each run saves its
table under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from repro.bench.tables import Table, results_dir, save_json, save_table

__all__ = ["Table", "results_dir", "save_json", "save_table"]
