"""Benchmark support: table rendering and result persistence.

Every experiment module under ``benchmarks/`` renders its output through
:class:`~repro.bench.tables.Table`, so the regenerated tables read like
the paper's — one labelled row per configuration — and each run saves its
table under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from repro.bench.runner import (
    baseline_path,
    compare,
    load_result,
    make_result,
    metric,
    render_comparison,
    save_result,
    validate_result,
)
from repro.bench.tables import Table, results_dir, save_json, save_table

__all__ = [
    "Table",
    "baseline_path",
    "compare",
    "load_result",
    "make_result",
    "metric",
    "render_comparison",
    "results_dir",
    "save_json",
    "save_result",
    "save_table",
    "validate_result",
]
