"""ASCII line charts: figure-shaped artifacts next to the tables.

The paper's evaluation communicates *shapes* — growth curves, crossovers,
flat lines.  A fixed-width chart shows a shape at a glance in a terminal
or a results file, so the benchmarks that sweep a parameter also emit one
of these alongside their table.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

from repro.bench.tables import results_dir

__all__ = ["ascii_chart", "save_chart"]

_MARKS = "*o+x#@"


def ascii_chart(
    title: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x-values.

    Points are plotted on a character grid with per-series marks; the
    legend maps marks to names.  Y axis starts at 0 (shape comparisons
    should not lie via truncated axes).
    """
    if not xs or not series:
        raise ValueError("need at least one x value and one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length != len(xs)")
    y_max = max(max(ys) for ys in series.values())
    y_max = y_max if y_max > 0 else 1.0
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / span * (width - 1))
            row = (height - 1) - int(y / y_max * (height - 1))
            grid[row][col] = mark

    lines = [title, "=" * len(title)]
    for i, row in enumerate(grid):
        y_tick = y_max * (height - 1 - i) / (height - 1)
        prefix = f"{y_tick:9.2f} |" if i % 4 == 0 or i == height - 1 else " " * 9 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    left = f"{x_min:g}"
    right = f"{x_max:g}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * 11 + left + " " * pad + right)
    if x_label:
        lines.append(" " * 11 + x_label.center(width))
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(f"  legend: {legend}")
    if y_label:
        lines.insert(2, f"  y: {y_label}")
    return "\n".join(lines)


def save_chart(chart: str, name: str) -> str:
    """Print *chart* and persist it under benchmarks/results/<name>.txt."""
    print()
    print(chart)
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as f:
        f.write(chart + "\n")
    return path
