"""x-kernel analog: composable protocol stacks.

The paper's implementation runs on the x-kernel [21], "an operating system
kernel that provides support for composing network protocols".  This
package reproduces the part FT-Linda relies on: protocols as objects with
a uniform push/deliver interface, composed into a per-host stack, with
messages that carry a header stack whose sizes are accounted for on the
wire.  The Consul protocols (:mod:`repro.consul`) are written against this
interface.
"""

from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol, ProtocolStack

__all__ = ["Message", "Protocol", "ProtocolStack"]
