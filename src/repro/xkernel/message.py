"""Messages with a header stack and honest size accounting.

x-kernel messages acquire a header per protocol layer on the way down and
shed them on the way up.  We keep the same discipline so that the wire
sizes used by the network model (and therefore the latency and message
count results) include protocol overhead, not just payloads.
"""

from __future__ import annotations

import pickle
from typing import Any

__all__ = ["Message", "payload_size"]


def payload_size(payload: Any) -> int:
    """Size in bytes of *payload* when marshalled.

    Pickle is our stand-in for the paper's marshalling; its output length
    is deterministic for the value types used in commands, which keeps the
    simulation reproducible.
    """
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


class Message:
    """A payload plus a stack of (protocol-name, header, header-size).

    ``size`` is the total bytes a frame carrying this message occupies —
    payload plus every pushed header.
    """

    __slots__ = ("payload", "_payload_size", "_headers")

    def __init__(self, payload: Any, size: int | None = None):
        self.payload = payload
        self._payload_size = payload_size(payload) if size is None else size
        self._headers: list[tuple[str, Any, int]] = []

    def push_header(self, proto: str, header: Any, size: int | None = None) -> None:
        """Prepend *header* for layer *proto* (down the stack)."""
        hsize = payload_size(header) if size is None else size
        self._headers.append((proto, header, hsize))

    def pop_header(self, proto: str) -> Any:
        """Remove and return the topmost header, checking the layer name."""
        if not self._headers:
            raise ValueError(f"no headers left; {proto} expected one")
        name, header, _size = self._headers.pop()
        if name != proto:
            raise ValueError(f"header belongs to {name}, not {proto}")
        return header

    def peek_header(self, proto: str) -> Any:
        name, header, _size = self._headers[-1]
        if name != proto:
            raise ValueError(f"header belongs to {name}, not {proto}")
        return header

    @property
    def size(self) -> int:
        return self._payload_size + sum(h[2] for h in self._headers)

    def copy(self) -> "Message":
        """Shallow copy sharing the payload (broadcast fan-out)."""
        m = Message(self.payload, self._payload_size)
        m._headers = list(self._headers)
        return m

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        layers = ">".join(h[0] for h in reversed(self._headers)) or "raw"
        return f"Message[{layers}]({self.payload!r}, {self.size}B)"
