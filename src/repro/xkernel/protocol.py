"""Protocol objects and per-host stacks.

A :class:`Protocol` sits between an upper and a lower neighbor.  Sends go
*down* (``from_upper``), deliveries go *up* (``from_lower``); each layer
may consume, transform, reorder, or synthesize messages.  A
:class:`ProtocolStack` wires a list of protocols (top first) and is what a
:class:`~repro.consul.hosts.SimHost` owns.

This mirrors the x-kernel's uniform protocol interface closely enough that
the Consul layers (ordering, membership, replica) compose exactly as the
paper's Figure of the implementation stack describes: FT-Linda library
over Consul over the network, all on the x-kernel.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.xkernel.message import Message

__all__ = ["Protocol", "ProtocolStack"]


class Protocol:
    """One layer in a host's protocol graph.

    Subclasses override :meth:`from_upper` (a send moving down) and
    :meth:`from_lower` (a delivery moving up).  The default behavior is
    pass-through, so trivially transparent layers need no code.
    """

    name = "protocol"

    def __init__(self) -> None:
        self.upper: Protocol | None = None
        self.lower: Protocol | None = None

    # -- wiring ---------------------------------------------------------- #

    def connect_below(self, lower: "Protocol") -> None:
        self.lower = lower
        lower.upper = self

    # -- data path -------------------------------------------------------- #

    def from_upper(self, msg: Message, **kw: Any) -> None:
        """Handle a send from the layer above (default: pass down)."""
        self.send_down(msg, **kw)

    def from_lower(self, msg: Message, **kw: Any) -> None:
        """Handle a delivery from the layer below (default: pass up)."""
        self.deliver_up(msg, **kw)

    def send_down(self, msg: Message, **kw: Any) -> None:
        if self.lower is None:
            raise RuntimeError(f"{self.name}: no lower protocol to send to")
        self.lower.from_upper(msg, **kw)

    def deliver_up(self, msg: Message, **kw: Any) -> None:
        if self.upper is None:
            raise RuntimeError(f"{self.name}: no upper protocol to deliver to")
        self.upper.from_lower(msg, **kw)

    # -- control plane ----------------------------------------------------- #

    def start(self) -> None:
        """Called once the whole stack is wired and the host is up."""

    def host_crashed(self) -> None:
        """Called when the owning host crashes (drop all soft state)."""

    def host_recovered(self) -> None:
        """Called when the owning host restarts."""


class ProtocolStack:
    """An ordered composition of protocols, top (application side) first."""

    def __init__(self, layers: Sequence[Protocol]):
        if not layers:
            raise ValueError("a protocol stack needs at least one layer")
        self.layers = list(layers)
        for upper, lower in zip(self.layers, self.layers[1:]):
            upper.connect_below(lower)

    @property
    def top(self) -> Protocol:
        return self.layers[0]

    @property
    def bottom(self) -> Protocol:
        return self.layers[-1]

    def find(self, proto_type: type) -> Any:
        """The unique layer of *proto_type* in this stack."""
        hits = [p for p in self.layers if isinstance(p, proto_type)]
        if len(hits) != 1:
            raise LookupError(
                f"expected exactly one {proto_type.__name__}, found {len(hits)}"
            )
        return hits[0]

    def start(self) -> None:
        for p in reversed(self.layers):
            p.start()

    def host_crashed(self) -> None:
        for p in self.layers:
            p.host_crashed()

    def host_recovered(self) -> None:
        for p in reversed(self.layers):
            p.host_recovered()

    def __iter__(self) -> Iterable[Protocol]:
        return iter(self.layers)
