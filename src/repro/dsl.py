"""A fluent builder for atomic guarded statements.

The raw :mod:`repro.core.ags` classes are the compiled form; the textual
front end (:mod:`repro.lcc`) mirrors the paper's notation.  This module is
the third way in — a chainable Python DSL that reads like the paper but
stays in Python::

    from repro.dsl import when, true, out, in_, rd, inp, move

    stmt = (
        when(in_(ts, "count", ("old", int)))
        .do(out(ts, "count", var("old") + 1))
        .build()
    )

    poll = (
        when(inp(ts, "job", ("j", int))).do(out(ts, "taken", var("j")))
        .orelse(true().do(out(ts, "idle", 1)))
        .build()
    )

Formals are written as ``("name", type)`` pairs, anonymous ones as a bare
type (``int``); ``var("name")`` references a bound formal in later
operands.  Everything compiles down to the exact same
:class:`~repro.core.ags.AGS` objects as the other two front ends — tests
assert the three produce identical statements.
"""

from __future__ import annotations

from typing import Any

from repro._errors import AGSError
from repro.core.ags import (
    AGS,
    Branch,
    FormalRef,
    Guard,
    GuardKind,
    Op,
    OpCode,
)
from repro.core.spaces import TSHandle
from repro.core.tuples import ALLOWED_FIELD_TYPES, Formal

__all__ = [
    "AGSBuilder",
    "atomic",
    "copy",
    "in_",
    "inp",
    "move",
    "out",
    "rd",
    "rdp",
    "true",
    "var",
    "when",
]


def var(name: str) -> FormalRef:
    """Reference a formal bound earlier in the branch (``ref`` alias)."""
    return FormalRef(name)


def _field(spec: Any) -> Any:
    """Translate a DSL field spec into a core field.

    ``("name", type)`` → named formal; a bare type → anonymous formal;
    anything else passes through (constants, operands).
    """
    if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[0], str):
        name, ftype = spec
        if isinstance(ftype, type):
            return Formal(ftype, name)
    if isinstance(spec, type):
        if spec is not object and spec not in ALLOWED_FIELD_TYPES:
            raise AGSError(f"{spec!r} is not a valid formal type")
        return Formal(spec)
    return spec


def _op(code: OpCode, ts: TSHandle, fields: tuple, ts2: TSHandle | None = None) -> Op:
    return Op(code, ts, [_field(f) for f in fields], ts2=ts2)


def out(ts: TSHandle, *fields: Any) -> Op:
    """``out(ts, …)`` — deposit."""
    return _op(OpCode.OUT, ts, fields)


def in_(ts: TSHandle, *fields: Any) -> Op:
    """``in(ts, …)`` — blocking withdraw (as guard) / must-match (in body)."""
    return _op(OpCode.IN, ts, fields)


def rd(ts: TSHandle, *fields: Any) -> Op:
    """``rd(ts, …)`` — blocking read."""
    return _op(OpCode.RD, ts, fields)


def inp(ts: TSHandle, *fields: Any) -> Op:
    """``inp(ts, …)`` — non-blocking withdraw, strong semantics."""
    return _op(OpCode.INP, ts, fields)


def rdp(ts: TSHandle, *fields: Any) -> Op:
    """``rdp(ts, …)`` — non-blocking read, strong semantics."""
    return _op(OpCode.RDP, ts, fields)


def move(src: TSHandle, dst: TSHandle, *fields: Any) -> Op:
    """``move(src, dst, pattern)`` — transfer all matches atomically."""
    return _op(OpCode.MOVE, src, fields, ts2=dst)


def copy(src: TSHandle, dst: TSHandle, *fields: Any) -> Op:
    """``copy(src, dst, pattern)`` — duplicate all matches atomically."""
    return _op(OpCode.COPY, src, fields, ts2=dst)


class _BranchBuilder:
    """One ``guard`` waiting for its ``.do(body)``."""

    def __init__(self, parent: "AGSBuilder", guard: Guard):
        self._parent = parent
        self._guard = guard
        self._body: list[Op] = []
        parent._branches.append(self)

    def do(self, *body: Op) -> "AGSBuilder":
        """Attach the branch body; returns the statement builder."""
        self._body = list(body)
        return self._parent

    def _build(self) -> Branch:
        return Branch(self._guard, self._body)


class AGSBuilder:
    """Accumulates branches; ``build()`` validates and compiles."""

    def __init__(self) -> None:
        self._branches: list[_BranchBuilder] = []

    def when(self, guard_op: Op) -> _BranchBuilder:
        """Add a branch guarded by a tuple operation."""
        if guard_op.code not in (OpCode.IN, OpCode.RD, OpCode.INP, OpCode.RDP):
            raise AGSError(f"{guard_op.code.value} cannot guard a branch")
        return _BranchBuilder(self, Guard(GuardKind.OP, guard_op))

    def true(self) -> _BranchBuilder:
        """Add an unconditional branch."""
        return _BranchBuilder(self, Guard.true())

    def orelse(self, other: "AGSBuilder | _BranchBuilder") -> "AGSBuilder":
        """Append another builder's branches as lower-priority alternatives."""
        src = other if isinstance(other, AGSBuilder) else other._parent
        if src is not self:
            self._branches.extend(src._branches)
        return self

    def build(self) -> AGS:
        if not self._branches:
            raise AGSError("no branches: use when()/true() first")
        return AGS([b._build() for b in self._branches])


def when(guard_op: Op) -> _BranchBuilder:
    """Start a statement: ``when(in_(ts, …)).do(out(ts, …)).build()``."""
    return AGSBuilder().when(guard_op)


def true() -> _BranchBuilder:
    """Start an unconditional statement: ``true().do(…).build()``."""
    return AGSBuilder().true()


def atomic(*body: Op) -> AGS:
    """Shorthand for ``true().do(*body).build()``."""
    return true().do(*body).build()
