"""FT-Linda — fault-tolerant tuple-space coordination for Python.

A reproduction of *"Supporting Fault-Tolerant Parallel Programming in
Linda"* (Bakken & Schlichting, University of Arizona TR 93-18), which
extends the classic Linda coordination model (Gelernter) with **stable
tuple spaces** and **atomic guarded statements (AGS)**.

Quickstart::

    from repro import LocalRuntime, formal, AGS, Guard, Op, ref

    rt = LocalRuntime()
    ts = rt.main_ts
    rt.out(ts, "count", 0)

    # classic Linda
    t = rt.in_(ts, "count", formal(int))     # -> ("count", 0)

    # FT-Linda: atomic fetch-and-increment, immune to failures in between
    rt.out(ts, "count", 0)
    rt.execute(AGS.single(
        Guard.in_(ts, "count", formal(int, "old")),
        [Op.out(ts, "count", ref("old") + 1)],
    ))

Distributed, failure-injecting backends live in :mod:`repro.consul`
(simulated network of replicas) and :mod:`repro.parallel` (threads /
multiprocessing).  The textual FT-lcc front end is :mod:`repro.lcc`.
"""

from repro._errors import (
    AGSError,
    CompileError,
    FormalBindingError,
    HostFailedError,
    LindaError,
    MatchTypeError,
    NotDeterministicError,
    RuntimeFailure,
    ScopeError,
    SpaceError,
    TimeoutError_,
    TupleError,
)
from repro.core.ags import (
    AGS,
    AGSResult,
    Branch,
    Const,
    Expr,
    FormalRef,
    Guard,
    Op,
    OpCode,
    ref,
    register_function,
)
from repro.core.matching import TupleStore
from repro.core.runtime import BaseRuntime, LocalRuntime, ProcessView
from repro.core.spaces import MAIN_TS, Resilience, Scope, SpaceRegistry, TSHandle
from repro.core.statemachine import FAILURE_TAG, TSStateMachine
from repro.core.tuples import Formal, LindaTuple, Pattern, formal, make_tuple

__version__ = "1.0.0"

__all__ = [
    "AGS",
    "AGSError",
    "AGSResult",
    "BaseRuntime",
    "Branch",
    "CompileError",
    "Const",
    "Expr",
    "FAILURE_TAG",
    "Formal",
    "FormalBindingError",
    "FormalRef",
    "Guard",
    "HostFailedError",
    "LindaError",
    "LindaTuple",
    "LocalRuntime",
    "MAIN_TS",
    "MatchTypeError",
    "NotDeterministicError",
    "Op",
    "OpCode",
    "Pattern",
    "ProcessView",
    "Resilience",
    "RuntimeFailure",
    "Scope",
    "ScopeError",
    "SpaceError",
    "SpaceRegistry",
    "TSHandle",
    "TSStateMachine",
    "TimeoutError_",
    "TupleError",
    "TupleStore",
    "formal",
    "make_tuple",
    "ref",
    "register_function",
]
