"""Membership: failure detection, ordered view changes, restart protocol.

Consul's membership service gives FT-Linda two things (Sec. 5 of the
paper): conversion of fail-silent crashes into **fail-stop** notifications
(the runtime "provid[es] failure notification in the form of a
distinguished failure tuple"), and a **restart protocol** — "when a
processor P_i recovers, a restart message is multicast to the other
processors, which then execute a protocol to add P_i back into the group".

Mechanics:

- every host broadcasts a heartbeat each ``hb_interval_us``; a host silent
  for ``suspect_timeout_us`` is *suspected*;
- suspicion is local soft state, but the **view** (the replicated member
  list) changes only via :class:`~repro.core.statemachine.HostFailed` /
  :class:`HostRecovered` commands sent through the total order, so every
  replica changes its view — and deposits the failure tuple — at exactly
  the same point in the command stream (virtual synchrony, in effect);
- only the *announce leader* (lowest-id unsuspected member) submits view
  changes, and duplicates are filtered against the current view on
  delivery, so detector races cannot double-announce;
- a restarting host broadcasts ``RESTART`` until a member orders a
  :class:`HostRecovered` command; the deterministic snapshot sender
  (lowest live member id) then ships the replica state — the actual
  transfer is done by the replica layer above.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.consul.config import ConsulConfig
from repro.consul.hosts import SimHost
from repro.consul.network import BROADCAST
from repro.consul.ordering import OrderingLayer
from repro.core.statemachine import Command, HostFailed, HostRecovered
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol

__all__ = ["MembershipLayer"]


class MembershipLayer(Protocol):
    """Heartbeat detector plus ordered group-view maintenance."""

    name = "mem"

    def __init__(self, host: SimHost, all_hosts: list[int], cfg: ConsulConfig):
        super().__init__()
        self.host = host
        self.all_hosts = sorted(all_hosts)
        self.cfg = cfg
        self._incarnation = 0
        self._reset_state()

    def _reset_state(self) -> None:
        self.view: set[int] = set(self.all_hosts)
        self.suspected: set[int] = set()
        self.last_heard: dict[int, float] = {}
        self.restart_wanted: set[int] = set()
        self._announced: set[int] = set()
        self._restart_handled: dict[int, int] = {}  # host -> incarnation
        self.recovering = False
        self.view_changes = 0
        #: set by the replica layer: called to re-ship a lost snapshot
        self.on_resend_snapshot: Callable[[int], None] | None = None

    # ------------------------------------------------------------------ #
    # wiring helpers
    # ------------------------------------------------------------------ #

    @property
    def ordering(self) -> OrderingLayer:
        assert isinstance(self.lower, OrderingLayer)
        return self.lower

    def announce_leader(self) -> int:
        """The member responsible for submitting view changes."""
        live = sorted(self.view - self.suspected)
        return live[0] if live else self.host.id

    # ------------------------------------------------------------------ #
    # lifecycle / timers
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        now = self.host.sim.now
        for h in self.all_hosts:
            self.last_heard[h] = now
        self._schedule_heartbeat()
        self._schedule_check()

    def _schedule_heartbeat(self) -> None:
        self.host.sim.schedule(
            self.cfg.hb_interval_us, self._heartbeat, self._incarnation
        )

    def _heartbeat(self, incarnation: int) -> None:
        if incarnation != self._incarnation or self.host.crashed:
            return
        # heartbeats continue while recovering: a host mid-state-transfer
        # is alive, and a long snapshot must not get it re-suspected and
        # kicked out of the view it just rejoined.  The heartbeat carries
        # our delivery high-watermark so lagging peers can anti-entropy.
        msg = Message(("HB", self.host.id, self.ordering.next_deliver))
        self.send_down(msg, ordered=False, dst=BROADCAST)
        self._schedule_heartbeat()

    def _schedule_check(self) -> None:
        self.host.sim.schedule(
            self.cfg.hb_interval_us, self._check_liveness, self._incarnation
        )

    def _check_liveness(self, incarnation: int) -> None:
        if incarnation != self._incarnation or self.host.crashed:
            return
        if not self.recovering:
            now = self.host.sim.now
            for h in sorted(self.view):
                if h == self.host.id or h in self.suspected:
                    continue
                if now - self.last_heard.get(h, 0.0) > self.cfg.suspect_timeout_us:
                    self._suspect(h)
        self._schedule_check()

    def _has_quorum(self) -> bool:
        if not self.cfg.require_quorum:
            return True
        live = len(self.view - self.suspected)
        return live >= len(self.all_hosts) // 2 + 1

    def _suspect(self, h: int) -> None:
        self.suspected.add(h)
        self.ordering.on_suspicion_change(self.suspected)
        # only the majority side of a partition may order exclusions — the
        # ordering layer would refuse to sequence them anyway (quorum gate),
        # but not announcing avoids stale exclusion commands firing later
        if (
            self.announce_leader() == self.host.id
            and h not in self._announced
            and self._has_quorum()
        ):
            self._announced.add(h)
            self.ordering.broadcast(HostFailed(0, self.host.id, h))

    # ------------------------------------------------------------------ #
    # receive path
    # ------------------------------------------------------------------ #

    def from_lower(self, msg: Message, ordered: bool = False, src: int = -1, **kw: Any) -> None:
        if not ordered:
            self._handle_raw(msg, src)
            return
        payload = msg.payload
        if isinstance(payload, HostFailed):
            self._deliver_failed(payload, msg, **kw)
        elif isinstance(payload, HostRecovered):
            self._deliver_recovered(payload, msg, **kw)
        else:
            self.deliver_up(msg, ordered=True, src=src, **kw)

    def _handle_raw(self, msg: Message, src: int) -> None:
        payload = msg.payload
        tag = payload[0] if isinstance(payload, tuple) and payload else None
        if tag == "HB":
            h = payload[1]
            self.last_heard[h] = self.host.sim.now
            if not self.recovering and len(payload) > 2:
                self.ordering.note_remote_progress(payload[2])
            if h in self.view and h in self.suspected and not self.recovering:
                # a suspected-but-never-excluded host is heartbeating again
                # (partition healed before we could order its removal):
                # withdraw the suspicion so normal operation resumes
                self.suspected.discard(h)
                self._announced.discard(h)
                self.ordering.on_suspicion_change(self.suspected)
        elif tag == "RESTART":
            self._handle_restart(payload[1], payload[2])
        else:
            # snapshots and RPC traffic belong to the layer above
            self.deliver_up(msg, ordered=False, src=src)

    def _handle_restart(self, h: int, inc: int) -> None:
        if self.recovering:
            return
        self.last_heard[h] = self.host.sim.now
        if self.announce_leader() != self.host.id:
            return
        if self._restart_handled.get(h) == inc:
            # this restart is already in flight; if the host rejoined the
            # view but keeps asking, its snapshot was lost — ship it again
            if h in self.view and self.on_resend_snapshot is not None:
                self.on_resend_snapshot(h)
            return
        self._restart_handled[h] = inc
        self.restart_wanted.add(h)
        if h in self.view:
            # crashed and restarted before the failure was ordered: order
            # the crash first so the failure tuple and state reset happen
            if h not in self._announced:
                self._announced.add(h)
                self.ordering.broadcast(HostFailed(0, self.host.id, h))
        else:
            self._submit_recovered(h)

    def _submit_recovered(self, h: int) -> None:
        self.ordering.broadcast(HostRecovered(0, self.host.id, h))

    # ------------------------------------------------------------------ #
    # ordered view changes
    # ------------------------------------------------------------------ #

    def _deliver_failed(self, cmd: HostFailed, msg: Message, **kw: Any) -> None:
        h = cmd.failed_host
        if h not in self.view:
            return  # duplicate announcement: already removed
        self.view.discard(h)
        self.view_changes += 1
        self.suspected.add(h)
        self._announced.discard(h)
        self.ordering.on_suspicion_change(self.suspected)
        # the replica layer deposits the failure tuple / drops blocked reqs
        self.deliver_up(msg, ordered=True, **kw)
        if h == self.host.id:
            # WE were excluded (a false suspicion under heartbeat loss, or
            # a partition): the group has already reset state on our
            # behalf, so the only consistent move is the standard rejoin —
            # announce RESTART and wait for readmission plus a snapshot
            self._begin_self_rejoin()
            return
        if h in self.restart_wanted and self.announce_leader() == self.host.id:
            self._submit_recovered(h)

    def _begin_self_rejoin(self) -> None:
        if self.recovering:
            return
        self.recovering = True
        self.suspected.discard(self.host.id)
        self._incarnation += 1  # retire stale timers; fresh RESTART epoch
        self.ordering.begin_recovery()
        self._send_restart(self._incarnation)
        self._schedule_heartbeat()
        self._schedule_check()

    def _deliver_recovered(self, cmd: HostRecovered, msg: Message, **kw: Any) -> None:
        h = cmd.recovered_host
        if h in self.view:
            return  # duplicate
        self.view.add(h)
        self.view_changes += 1
        self.suspected.discard(h)
        self.restart_wanted.discard(h)
        self.last_heard[h] = self.host.sim.now
        self.ordering.on_suspicion_change(self.suspected)
        # replica layer applies the SM command and, if it is the
        # deterministic snapshot sender, ships state to the newcomer
        self.deliver_up(msg, ordered=True, **kw)

    # ------------------------------------------------------------------ #
    # our own crash/recovery
    # ------------------------------------------------------------------ #

    def host_crashed(self) -> None:
        self._incarnation += 1
        self._reset_state()

    def host_recovered(self) -> None:
        self._incarnation += 1
        self._reset_state()
        self.recovering = True
        self._send_restart(self._incarnation)
        self._schedule_heartbeat()
        self._schedule_check()

    def _send_restart(self, incarnation: int) -> None:
        if incarnation != self._incarnation or self.host.crashed:
            return
        if not self.recovering:
            return
        msg = Message(("RESTART", self.host.id, self._incarnation))
        self.send_down(msg, ordered=False, dst=BROADCAST)
        self.host.sim.schedule(
            self.cfg.restart_interval_us, self._send_restart, incarnation
        )

    def recovery_complete(self, view: set[int]) -> None:
        """Called by the replica layer once the snapshot is installed."""
        self.view = set(view)
        self.suspected = {h for h in self.all_hosts if h not in self.view}
        self.suspected.discard(self.host.id)
        self.recovering = False
        now = self.host.sim.now
        for h in self.view:
            self.last_heard[h] = now
        self.ordering.on_suspicion_change(self.suspected)
