"""Tunables of the simulated Consul substrate.

Defaults approximate the paper's testbed: 10 Mb/s shared Ethernet and
workstation-class protocol processing costs, calibrated so that the
3-replica dissemination+ordering latency lands in the regime of the
measured "approximately 4.0 msec" (Sec. 5).  Benchmarks sweep these.
"""

from __future__ import annotations

import dataclasses

__all__ = ["ConsulConfig"]


@dataclasses.dataclass
class ConsulConfig:
    """Protocol timing/cost parameters (all times in microseconds)."""

    #: Heartbeat period of the membership failure detector.
    hb_interval_us: float = 25_000.0
    #: Silence threshold before a host is suspected dead.
    suspect_timeout_us: float = 100_000.0
    #: Client-side resend period for unacknowledged ordering requests.
    retrans_timeout_us: float = 50_000.0
    #: How long a receiver waits on a sequence gap before NACKing.
    nack_delay_us: float = 5_000.0
    #: How long a new sequencer waits for SYNC responses before proceeding.
    sync_timeout_us: float = 50_000.0
    #: Resend period for a recovering host's RESTART announcements.
    restart_interval_us: float = 50_000.0

    #: CPU service time charged per protocol message handled by a host.
    #: The paper's 4.0 ms 3-replica ordering time on Sun-3s is dominated
    #: by this kind of per-message protocol processing.
    cpu_us_per_msg: float = 1_000.0

    #: State-machine execution cost model: base cost of applying a command
    #: plus a marginal cost per tuple operation in the AGS — mirroring the
    #: structure of the paper's Table 1 (base + per-op columns).
    apply_base_us: float = 300.0
    apply_per_op_us: float = 65.0

    #: Entries of recently delivered commands each host retains so a new
    #: sequencer (or a NACKing peer) can be repaired after failures.
    recent_log_size: int = 1024

    #: When True, sequencing / takeover / token regeneration and membership
    #: exclusion announcements require a believed majority of the static
    #: membership.  The paper's failure model is processor *crash* (Sec. 5:
    #: fail-silent), not partition, so this defaults to False — matching
    #: the paper and keeping 2-host groups available after a crash.  Turn
    #: it on for partition experiments: the minority side then stalls
    #: instead of forking the total order (modulo the detector's reaction
    #: window, as in any failure-detector-based quorum scheme).
    require_quorum: bool = False

    def apply_cost(self, op_count: int) -> float:
        """Virtual-time cost of applying a command with *op_count* TS ops."""
        return self.apply_base_us + self.apply_per_op_us * max(op_count, 0)
