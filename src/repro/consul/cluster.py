"""SimCluster: a simulated network of FT-Linda workstations.

This is the top-level object the distributed tests and benchmarks build.
It assembles, per host, the paper's implementation stack

    FT-Linda library (ReplicaLayer)
      └─ membership (MembershipLayer)
          └─ totally ordered multicast (OrderingLayer)
              └─ network driver (NetDriver) ── shared Ethernet segment

and provides failure injection (:meth:`SimCluster.crash`,
:meth:`SimCluster.recover`, partitions), deterministic client processes,
and convergence checks used by the replica-consistency property tests.

Client code runs as :class:`~repro.sim.process.SimProcess` generators and
talks to tuple space through a :class:`SimView`, whose methods mirror
:class:`~repro.core.runtime.ProcessView` but return
:class:`~repro.sim.kernel.SimEvent` objects to ``yield`` on::

    def worker(view):
        yield view.out(view.main_ts, "task", 1)
        tup = yield view.in_(view.main_ts, "task", formal(int))
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator

from repro._errors import HostFailedError
from repro.consul.config import ConsulConfig
from repro.consul.hosts import NetDriver, SimHost
from repro.consul.membership import MembershipLayer
from repro.consul.network import EthernetSegment
from repro.consul.ordering import OrderingLayer
from repro.consul.replica import ReplicaLayer
from repro.core.ags import AGS, AGSResult, Guard, Op
from repro.core.runtime import _autoname, _rebuild
from repro.core.spaces import MAIN_TS, Resilience, Scope, TSHandle
from repro.core.tuples import LindaTuple
from repro.sim.kernel import SimEvent, Simulator
from repro.sim.process import SimProcess
from repro.xkernel.protocol import ProtocolStack

__all__ = ["ClusterConfig", "SimCluster", "SimView"]


@dataclasses.dataclass
class ClusterConfig:
    """Shape and physics of the simulated cluster."""

    n_hosts: int = 3
    #: Additional hosts that carry NO replica and reach tuple space via RPC
    #: to a tuple server (the paper's Figure 17 configuration).  Client
    #: host ids follow the replica ids: replicas 0..n_hosts-1, clients
    #: n_hosts..n_hosts+n_clients-1; client i talks to server i mod n_hosts.
    n_clients: int = 0
    seed: int = 0
    #: Total-order algorithm: "sequencer" (fixed sequencer, the default and
    #: the paper's design point) or "token" (token-ring rotation — the
    #: ordering ablation).
    ordering: str = "sequencer"
    consul: ConsulConfig = dataclasses.field(default_factory=ConsulConfig)
    bandwidth_bps: float = 10_000_000.0  # the paper's 10 Mb Ethernet
    propagation_us: float = 50.0
    jitter_us: float = 0.0
    loss_probability: float = 0.0


class SimCluster:
    """N replicated FT-Linda hosts on one broadcast segment."""

    def __init__(self, config: ClusterConfig | None = None, **overrides: Any):
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.segment = EthernetSegment(
            self.sim,
            bandwidth_bps=config.bandwidth_bps,
            propagation_us=config.propagation_us,
            jitter_us=config.jitter_us,
            loss_probability=config.loss_probability,
        )
        if config.ordering == "token":
            from repro.consul.tokenring import TokenRingLayer as _OrdCls
        elif config.ordering == "sequencer":
            _OrdCls = OrderingLayer
        else:
            raise ValueError(f"unknown ordering algorithm {config.ordering!r}")
        ids = list(range(config.n_hosts))
        self.hosts: list[SimHost] = []
        for hid in ids:
            host = SimHost(
                hid, self.sim, self.segment, cpu_us_per_msg=config.consul.cpu_us_per_msg
            )
            stack = ProtocolStack(
                [
                    ReplicaLayer(host, ids, config.consul),
                    MembershipLayer(host, ids, config.consul),
                    _OrdCls(host, ids, config.consul),
                    NetDriver(host),
                ]
            )
            host.install_stack(stack)
            self.hosts.append(host)
        # replica-less client hosts (Figure 17): thin RPC stack
        from repro.consul.rpc import RPCClientLayer

        for c in range(config.n_clients):
            hid = config.n_hosts + c
            host = SimHost(
                hid, self.sim, self.segment, cpu_us_per_msg=config.consul.cpu_us_per_msg
            )
            server = c % config.n_hosts
            stack = ProtocolStack([RPCClientLayer(host, server), NetDriver(host)])
            host.install_stack(stack)
            self.hosts.append(host)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    @property
    def main_ts(self) -> TSHandle:
        return MAIN_TS

    def replica(self, host_id: int) -> ReplicaLayer:
        stack = self.hosts[host_id].stack
        assert stack is not None
        return stack.find(ReplicaLayer)

    def node(self, host_id: int):
        """Top protocol layer: ReplicaLayer, or RPCClientLayer on clients."""
        stack = self.hosts[host_id].stack
        assert stack is not None
        return stack.top

    @property
    def replica_ids(self) -> list[int]:
        return list(range(self.config.n_hosts))

    @property
    def client_ids(self) -> list[int]:
        return list(
            range(self.config.n_hosts, self.config.n_hosts + self.config.n_clients)
        )

    def ordering(self, host_id: int) -> OrderingLayer:
        stack = self.hosts[host_id].stack
        assert stack is not None
        return stack.find(OrderingLayer)

    def membership(self, host_id: int) -> MembershipLayer:
        stack = self.hosts[host_id].stack
        assert stack is not None
        return stack.find(MembershipLayer)

    def view(self, host_id: int, process_id: int = 0) -> "SimView":
        return SimView(self, host_id, process_id)

    def live_hosts(self) -> list[int]:
        """Live *replica* hosts (clients hold no replicated state)."""
        return [
            h.id
            for h in self.hosts
            if not h.crashed and h.id < self.config.n_hosts
        ]

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        host_id: int,
        genfn: Callable[..., Generator[Any, Any, Any]],
        *args: Any,
        process_id: int | None = None,
        name: str = "",
    ) -> SimProcess:
        """Start a client generator on *host_id*.

        *genfn* is called as ``genfn(view, *args)`` with a :class:`SimView`
        bound to the host — the sim-side analog of ``eval``.
        """
        pid = process_id if process_id is not None else host_id * 1000 + len(
            self.hosts[host_id].processes
        )
        view = self.view(host_id, pid)
        return self.hosts[host_id].spawn(genfn(view, *args), name or genfn.__name__)

    # ------------------------------------------------------------------ #
    # failure injection
    # ------------------------------------------------------------------ #

    def crash(self, host_id: int, at: float | None = None) -> None:
        """Crash a host now, or schedule the crash at virtual time *at*."""
        if at is None:
            self.hosts[host_id].crash()
        else:
            self.sim.schedule(max(at - self.sim.now, 0.0), self.hosts[host_id].crash)

    def recover(self, host_id: int, at: float | None = None) -> None:
        if at is None:
            self.hosts[host_id].recover()
        else:
            self.sim.schedule(max(at - self.sim.now, 0.0), self.hosts[host_id].recover)

    def partition(self, *groups: list[int]) -> None:
        self.segment.set_partitions(groups)

    def heal_partition(self) -> None:
        self.segment.set_partitions([])

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #

    def run(self, until: float, max_events: int | None = None) -> None:
        """Advance virtual time to *until* (heartbeats run forever, so
        run-to-empty never terminates; always bound by time)."""
        self.sim.run(until=until, max_events=max_events)

    def run_until(self, event: SimEvent, limit: float = 60_000_000.0) -> Any:
        return self.sim.run_until_event(event, limit=limit)

    def run_until_all(self, procs: list[SimProcess], limit: float = 60_000_000.0) -> None:
        for p in procs:
            if p.finished.triggered:
                continue
            self.sim.run_until_event(p.finished, limit=limit)
            if p.error is not None:
                raise p.error

    # ------------------------------------------------------------------ #
    # consistency checks (tests)
    # ------------------------------------------------------------------ #

    def metrics_snapshot(self, host_id: int | None = None) -> dict[str, Any]:
        """Merged metrics of every replica host (or one host's, if given).

        Same instrument names as the real-time backends
        (``submit_to_order``, ``order_to_apply``, ``ags_e2e``), with
        virtual-time latencies reported in seconds.
        """
        from repro.obs.metrics import MetricsRegistry

        if host_id is not None:
            return self.replica(host_id).metrics.snapshot()
        merged = MetricsRegistry()
        for hid in self.replica_ids:
            merged.merge(self.replica(hid).metrics)
        return merged.snapshot()

    def introspection_snapshot(self, host_id: int | None = None) -> dict[str, Any]:
        """Uniform live-state image of the cluster (see repro.obs.inspect).

        The state-machine view comes from *host_id* (default: the lowest
        live replica) and includes that host's volatile spaces; replica
        rows report each host's applied count and lag against the most
        advanced live replica.  All ages are in virtual seconds.
        """
        from repro.obs.inspect import empty_snapshot

        snap = empty_snapshot(type(self).__name__)
        live = self.live_hosts()
        applied = {
            hid: (
                self.replica(hid).commands_applied if hid in live else None
            )
            for hid in self.replica_ids
        }
        live_counts = [a for a in applied.values() if a is not None]
        head = max(live_counts) if live_counts else 0
        snap["replicas"] = [
            {
                "id": hid,
                "alive": hid in live,
                "applied": applied[hid],
                "lag": head - applied[hid] if applied[hid] is not None else None,
            }
            for hid in self.replica_ids
        ]
        source = host_id if host_id is not None else next(iter(live), None)
        if source is not None:
            snap["sm"] = self.replica(source).introspection()
        return snap

    def converged(self) -> bool:
        """True when all live, non-recovering replicas have equal state."""
        prints = [
            self.replica(h).stable_fingerprint()
            for h in self.live_hosts()
            if not self.replica(h).recovering
        ]
        return len(set(prints)) <= 1

    def settle(self, slack_us: float = 500_000.0) -> None:
        """Run long enough for in-flight traffic to quiesce."""
        self.run(until=self.sim.now + slack_us)


def _mapped(sim: Simulator, inner: SimEvent, fn: Callable[[Any], Any]) -> SimEvent:
    outer = sim.event(inner.name + ".mapped")
    inner.add_waiter(lambda value: outer.succeed(fn(value)))
    return outer


class SimView:
    """Per-process tuple-space API for simulated clients (yieldable)."""

    __slots__ = ("cluster", "host_id", "process_id")

    def __init__(self, cluster: SimCluster, host_id: int, process_id: int):
        self.cluster = cluster
        self.host_id = host_id
        self.process_id = process_id

    # -- plumbing -------------------------------------------------------- #

    @property
    def _replica(self):
        # a ReplicaLayer on replica hosts, an RPCClientLayer on clients
        return self.cluster.node(self.host_id)

    @property
    def sim(self) -> Simulator:
        return self.cluster.sim

    @property
    def main_ts(self) -> TSHandle:
        return MAIN_TS

    def execute(self, ags: AGS) -> SimEvent:
        """Submit an AGS; yielded value is its :class:`AGSResult`."""
        if self.cluster.hosts[self.host_id].crashed:
            raise HostFailedError(self.host_id)
        return self._replica.submit_ags(ags, self.process_id)

    # -- Linda ops (sim-side sugar, mirroring ProcessView) ---------------- #

    def out(self, ts: TSHandle, *fields: Any) -> SimEvent:
        return self.execute(AGS.atomic(Op.out(ts, *fields)))

    def in_(self, ts: TSHandle, *fields: Any) -> SimEvent:
        named, _ = _autoname(fields)
        ev = self.execute(AGS.single(Guard.in_(ts, *named)))
        return _mapped(self.sim, ev, lambda r: _rebuild(named, r))

    def rd(self, ts: TSHandle, *fields: Any) -> SimEvent:
        named, _ = _autoname(fields)
        ev = self.execute(AGS.single(Guard.rd(ts, *named)))
        return _mapped(self.sim, ev, lambda r: _rebuild(named, r))

    def inp(self, ts: TSHandle, *fields: Any) -> SimEvent:
        named, _ = _autoname(fields)
        ev = self.execute(AGS.single(Guard.inp(ts, *named)))
        return _mapped(
            self.sim, ev, lambda r: _rebuild(named, r) if r.succeeded else None
        )

    def rdp(self, ts: TSHandle, *fields: Any) -> SimEvent:
        named, _ = _autoname(fields)
        ev = self.execute(AGS.single(Guard.rdp(ts, *named)))
        return _mapped(
            self.sim, ev, lambda r: _rebuild(named, r) if r.succeeded else None
        )

    def move(self, src: TSHandle, dst: TSHandle, *fields: Any) -> SimEvent:
        return self.execute(AGS.atomic(Op.move(src, dst, *fields)))

    def copy(self, src: TSHandle, dst: TSHandle, *fields: Any) -> SimEvent:
        return self.execute(AGS.atomic(Op.copy(src, dst, *fields)))

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
    ) -> SimEvent:
        owner = self.process_id if scope is Scope.PRIVATE else None
        return self._replica.submit_create_space(name, resilience, scope, owner)

    def destroy_space(self, handle: TSHandle) -> SimEvent:
        return self._replica.submit_destroy_space(handle)
