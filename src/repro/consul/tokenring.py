"""Token-ring total ordering — the alternative ordering algorithm.

The fixed-sequencer protocol of :mod:`repro.consul.ordering` funnels every
request through one host: minimal latency (one hop to the sequencer, one
broadcast out), but the sequencer's CPU is a serial bottleneck when many
hosts submit at once.  The classic alternative — used by Totem and
considered in the Consul lineage — circulates a **token**: only the
current holder assigns sequence numbers (for its *own* pending requests),
then passes the token to the next live member.

Trade-offs this module exists to measure (the ordering ablation in
``benchmarks/bench_ablation_ordering.py``):

- *latency*: a submission waits, on average, half a token rotation before
  it can be sequenced — worse than the sequencer's fixed two hops;
- *throughput under multi-source load*: sequencing work rotates, so no
  single CPU serializes everyone's requests;
- *message economy*: no REQ messages at all — ORD broadcasts plus one
  small token unicast per hop.

Failure handling: the token is soft state.  Every host watches for
evidence of circulation (token or ORD arrivals); if the token goes silent
for ``token_timeout_us`` the lowest unsuspected member regenerates it with
a higher epoch (stale tokens are discarded by epoch).  Delivery-side
reliability (order buffer, NACK repair, duplicate suppression by uid,
recovery install) is inherited unchanged from the fixed-sequencer layer —
the two algorithms differ only in who may assign the next number.
"""

from __future__ import annotations

from typing import Any

from repro.consul.config import ConsulConfig
from repro.consul.hosts import SimHost
from repro.consul.network import BROADCAST
from repro.consul.ordering import OrderingLayer
from repro.xkernel.message import Message

__all__ = ["TokenRingLayer"]


class TokenRingLayer(OrderingLayer):
    """Totally ordered multicast by circulating sequencing rights."""

    name = "ord"  # wire-compatible header space with the base layer

    def __init__(self, host: SimHost, all_hosts: list[int], cfg: ConsulConfig):
        super().__init__(host, all_hosts, cfg)

    def _reset_state(self) -> None:
        super()._reset_state()
        self.has_token = False
        self.token_epoch = 0
        self.ring_pending: list[tuple[Any, Any]] = []
        self.last_token_evidence = 0.0
        self.tokens_passed = 0

    # ------------------------------------------------------------------ #
    # startup and watchdog
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self.host.id == min(self.all_hosts):
            # the initial holder; a tiny delay lets every stack finish wiring
            self.host.sim.schedule(
                1.0, self._acquire_token, 0, 0, self._incarnation
            )
        self._schedule_watchdog()

    def _token_timeout(self) -> float:
        # generous: several full rotations' worth of per-hop CPU cost
        return max(
            self.cfg.suspect_timeout_us,
            8 * len(self.all_hosts) * self.cfg.cpu_us_per_msg,
        )

    def _schedule_watchdog(self) -> None:
        self.host.sim.schedule(
            self._token_timeout(), self._watchdog, self._incarnation
        )

    def _watchdog(self, incarnation: int) -> None:
        if incarnation != self._incarnation or self.host.crashed:
            return
        if not self.recovering and not self.has_token:
            silent_for = self.host.sim.now - self.last_token_evidence
            live = [h for h in self.all_hosts if h not in self.suspected]
            if (
                silent_for > self._token_timeout()
                and live
                and live[0] == self.host.id
                and self.has_quorum()  # a minority may not mint tokens
            ):
                # regenerate: higher epoch retires any stale token in flight
                next_seq = max(
                    [self.seq_next, self.next_deliver]
                    + [s + 1 for s in self.buffer]
                )
                self._acquire_token(
                    self.token_epoch + 1, next_seq, self._incarnation
                )
        self._schedule_watchdog()

    # ------------------------------------------------------------------ #
    # submission (replaces the REQ-to-sequencer path)
    # ------------------------------------------------------------------ #

    def broadcast(self, payload: Any) -> Any:
        self._uid_counter += 1
        uid = (self.host.id, self._incarnation, self._uid_counter)
        if self.has_token:
            self._sequence(uid, self.host.id, payload)
        else:
            self.ring_pending.append((uid, payload))
        return uid

    def _submit(self, uid: Any, payload: Any) -> None:  # pragma: no cover
        raise AssertionError("token ring does not use the REQ path")

    def _retransmit(self, uid: Any, incarnation: int) -> None:
        # no REQ retransmission: the watchdog regenerates a lost token and
        # un-sequenced submissions sit safely in ring_pending
        return

    # ------------------------------------------------------------------ #
    # the token
    # ------------------------------------------------------------------ #

    def _acquire_token(self, epoch: int, next_seq: int, incarnation: int) -> None:
        if incarnation != self._incarnation or self.host.crashed:
            return
        if epoch < self.token_epoch:
            return  # stale token (a regeneration superseded it)
        if self.recovering:
            # mid-state-transfer we must not sequence; hand the token to
            # the lowest other live member rather than dropping it
            others = sorted(
                h
                for h in self.all_hosts
                if h not in self.suspected and h != self.host.id
            )
            if others:
                msg = Message(("token",))
                msg.push_header(self.name, ("TOKEN", epoch, next_seq), size=16)
                self.send_down(msg, dst=others[0])
            return
        self.token_epoch = epoch
        self.has_token = True
        self.last_token_evidence = self.host.sim.now
        self.seq_next = max(self.seq_next, next_seq)
        self._drain_held()  # quorum-deferred requests go first
        pending, self.ring_pending = self.ring_pending, []
        for uid, payload in pending:
            self._sequence(uid, self.host.id, payload)
        self._pass_token()

    def _pass_token(self) -> None:
        live = sorted(h for h in self.all_hosts if h not in self.suspected)
        others = [h for h in live if h != self.host.id]
        if not others:
            return  # sole member: keep the token; submissions sequence directly
        idx = 0
        for i, h in enumerate(live):
            if h == self.host.id:
                idx = i
                break
        nxt = live[(idx + 1) % len(live)]
        self.has_token = False
        self.tokens_passed += 1
        msg = Message(("token",))
        msg.push_header(self.name, ("TOKEN", self.token_epoch, self.seq_next), size=16)
        self.send_down(msg, dst=nxt)

    # ------------------------------------------------------------------ #
    # receive path additions
    # ------------------------------------------------------------------ #

    def from_lower(self, msg: Message, src: int = -1, **kw: Any) -> None:
        header = msg.peek_header(self.name)
        if header[0] == "TOKEN":
            msg.pop_header(self.name)
            _k, epoch, next_seq = header
            self._acquire_token(epoch, next_seq, self._incarnation)
            return
        if header[0] == "ORD" or header[0] == "RETR":
            self.last_token_evidence = self.host.sim.now
        super().from_lower(msg, src=src, **kw)

    def on_suspicion_change(self, suspected: set[int]) -> None:
        # no takeover sync here: a lost token is the watchdog's problem;
        # suspicion only changes the rotation membership
        self.suspected = set(suspected)

    def _drain_held(self) -> None:
        if not self.has_token:
            return  # sequencing rights travel with the token
        super()._drain_held()

    # ------------------------------------------------------------------ #
    # NACK repair target: any live member holds recent_log; lowest works
    # ------------------------------------------------------------------ #

    def sequencer(self) -> int:
        for h in self.all_hosts:
            if h not in self.suspected and h != self.host.id:
                return h
        return self.host.id
