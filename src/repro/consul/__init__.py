"""Consul analog: the fault-tolerant communication substrate.

The paper implements FT-Linda on **Consul** [29, 30], which supplies
atomic (totally ordered, reliable) multicast, membership with failure
notification, and recovery support.  This package rebuilds those services
over the discrete-event simulator:

- :mod:`repro.consul.network` — a 10 Mb/s-Ethernet-like broadcast segment
  with serialization, propagation delay, seeded loss and partitions;
- :mod:`repro.consul.ordering` — reliable totally ordered multicast
  (fixed sequencer with NACK-based repair and takeover on crash);
- :mod:`repro.consul.membership` — heartbeat failure detection, ordered
  view changes, restart/state-transfer on recovery;
- :mod:`repro.consul.replica` — the TS state-machine replica layer that
  turns delivered commands into tuple-space updates and routes
  completions back to client processes;
- :mod:`repro.consul.cluster` — :class:`~repro.consul.cluster.SimCluster`,
  the top-level object benchmarks and tests construct;
- :mod:`repro.consul.rpc` — the remote-procedure-call forwarding variant
  of the paper's Figure 17 (requests forwarded to a tuple server).
"""

from repro.consul.cluster import SimCluster, ClusterConfig

__all__ = ["ClusterConfig", "SimCluster"]
