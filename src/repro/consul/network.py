"""Ethernet-like broadcast network model.

The paper's testbed is "Sun-3 workstations connected by a 10 Mb Ethernet".
This module models that medium at the level the protocols care about:

- a **shared segment**: one transmission at a time; frames queue for the
  medium and serialize at ``bandwidth`` bits/s (transmission delay grows
  with frame size, so big AGS requests genuinely cost more);
- **hardware broadcast**: a single frame addressed to
  :data:`BROADCAST` reaches every attached host — this is what makes the
  paper's "single multicast message per AGS" a single wire transmission;
- **propagation delay** plus small seeded jitter;
- fault injection: per-frame loss probability, scheduled **partitions**
  (sets of hosts that cannot hear each other), and crashed hosts silently
  dropping inbound frames (fail-silent).

Statistics (frames, bytes, unicasts vs broadcasts) feed the message-count
experiment E4.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.sim.kernel import Simulator
from repro.xkernel.message import Message

__all__ = ["BROADCAST", "EthernetSegment", "NetworkStats", "NIC"]

#: Destination id meaning "every host on the segment".
BROADCAST = -1

#: Ethernet framing overhead in bytes (header + FCS + preamble equivalent).
FRAME_OVERHEAD = 26


class NetworkStats:
    """Counters the benchmarks read after a run."""

    __slots__ = ("frames", "broadcast_frames", "unicast_frames", "bytes", "dropped")

    def __init__(self) -> None:
        self.frames = 0
        self.broadcast_frames = 0
        self.unicast_frames = 0
        self.bytes = 0
        self.dropped = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "frames": self.frames,
            "broadcast_frames": self.broadcast_frames,
            "unicast_frames": self.unicast_frames,
            "bytes": self.bytes,
            "dropped": self.dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkStats({self.snapshot()!r})"


class NIC:
    """A host's attachment to the segment.

    ``receive`` is the callback into the host's protocol stack; it is
    invoked only while the host is up (the ``up`` flag models fail-silent
    crashes at the hardware boundary).
    """

    __slots__ = ("host_id", "receive", "up")

    def __init__(self, host_id: int, receive: Callable[[Message, int], None]):
        self.host_id = host_id
        self.receive = receive
        self.up = True


class EthernetSegment:
    """The shared broadcast medium.

    Parameters
    ----------
    sim:
        The simulator supplying the clock and seeded RNG.
    bandwidth_bps:
        Raw bit rate; the paper's testbed is ``10_000_000`` (10 Mb).
    propagation_us:
        One-way propagation/controller latency per frame, microseconds.
    jitter_us:
        Uniform extra delay in ``[0, jitter_us]`` drawn per frame from the
        seeded RNG (models controller scheduling noise deterministically).
    loss_probability:
        Per-receiver chance a frame is silently dropped.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        bandwidth_bps: float = 10_000_000.0,
        propagation_us: float = 50.0,
        jitter_us: float = 0.0,
        loss_probability: float = 0.0,
    ):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.propagation_us = propagation_us
        self.jitter_us = jitter_us
        self.loss_probability = loss_probability
        self.stats = NetworkStats()
        self._nics: dict[int, NIC] = {}
        self._busy_until = 0.0
        self._partitions: list[frozenset[int]] = []

    # ------------------------------------------------------------------ #
    # attachment and faults
    # ------------------------------------------------------------------ #

    def attach(self, nic: NIC) -> None:
        if nic.host_id in self._nics:
            raise ValueError(f"host {nic.host_id} already attached")
        self._nics[nic.host_id] = nic

    def set_partitions(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the segment: hosts hear only frames from their own group.

        Pass an empty list to heal the partition.
        """
        self._partitions = [frozenset(g) for g in groups]

    def _reachable(self, src: int, dst: int) -> bool:
        if not self._partitions:
            return True
        for group in self._partitions:
            if src in group:
                return dst in group
        return True  # src in no group: unrestricted

    # ------------------------------------------------------------------ #
    # transmission
    # ------------------------------------------------------------------ #

    def transmit(self, src: int, dst: int, msg: Message) -> float:
        """Queue a frame from *src* to *dst* (or :data:`BROADCAST`).

        Returns the absolute virtual time at which the frame finishes
        transmitting (the medium becomes free).  Receivers get their
        ``receive`` callback at transmit-end + propagation (+ jitter).
        """
        size = msg.size + FRAME_OVERHEAD
        tx_us = (size * 8) / self.bandwidth_bps * 1_000_000.0
        start = max(self.sim.now, self._busy_until)
        end = start + tx_us
        self._busy_until = end
        self.stats.frames += 1
        self.stats.bytes += size
        if dst == BROADCAST:
            self.stats.broadcast_frames += 1
            receivers = [h for h in sorted(self._nics) if h != src]
        else:
            self.stats.unicast_frames += 1
            receivers = [dst] if dst in self._nics else []
        for hid in receivers:
            if not self._reachable(src, hid):
                continue
            if (
                self.loss_probability > 0.0
                and self.sim.rng.random() < self.loss_probability
            ):
                self.stats.dropped += 1
                continue
            jitter = (
                self.sim.rng.uniform(0.0, self.jitter_us) if self.jitter_us else 0.0
            )
            delay = (end - self.sim.now) + self.propagation_us + jitter
            # each receiver gets its own copy: header pops must not alias
            self.sim.schedule(delay, self._deliver, hid, msg.copy(), src)
        return end

    def _deliver(self, host_id: int, msg: Message, src: int) -> None:
        nic = self._nics.get(host_id)
        if nic is None or not nic.up:
            return
        nic.receive(msg, src)
