"""Reliable totally ordered multicast — Consul's ordering service.

FT-Linda needs exactly one property from its communication substrate: all
replicas see the same commands in the same order, despite crashes (the
atomic multicast of the abstract).  This layer provides it with a
**fixed-sequencer** protocol over the broadcast segment:

1. a client host unicasts ``REQ(uid, payload)`` to the current sequencer
   (or sequences directly when it *is* the sequencer);
2. the sequencer assigns the next global sequence number and transmits a
   single ``ORD`` **broadcast** frame — one frame on the wire reaches all
   replicas, which is why an AGS costs "a single multicast message";
3. every host delivers ``ORD`` frames strictly in sequence-number order,
   buffering out-of-order arrivals and NACKing gaps for retransmission;
4. duplicate suppression is by request uid, so client retransmissions and
   sequencer takeovers never double-deliver.

The sequencer is the lowest-id unsuspected host.  When it crashes, the
next-lowest host runs a **takeover sync** (broadcast ``SYNC_REQ``, collect
``SYNC_RESP`` carrying each peer's highest seen sequence number and recent
log entries) before sequencing anything new — so the total order has no
holes and no forks as long as failure detection is accurate (fail-stop,
the paper's assumption).

Wire message kinds (header of layer ``ord``):
``REQ``, ``ORD``, ``NACK``, ``RETR``, ``SYNC_REQ``, ``SYNC_RESP`` and a
``RAW`` passthrough for upper-layer traffic (heartbeats, snapshots) that
must *not* be ordered.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.consul.config import ConsulConfig
from repro.consul.hosts import SimHost
from repro.consul.network import BROADCAST
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol

__all__ = ["OrderingLayer"]


class OrderingLayer(Protocol):
    """Fixed-sequencer total order with NACK repair and takeover."""

    name = "ord"

    def __init__(self, host: SimHost, all_hosts: list[int], cfg: ConsulConfig):
        super().__init__()
        self.host = host
        self.all_hosts = sorted(all_hosts)
        self.cfg = cfg
        self._incarnation = 0
        self._reset_state()

    def _reset_state(self) -> None:
        self.suspected: set[int] = set()
        self.recovering = False
        # receiver state
        self.next_deliver = 0
        self.buffer: dict[int, tuple[Any, int, Any]] = {}  # seqno -> (uid, origin, payload)
        self.delivered_uids: set[Any] = set()
        self.recent_log: dict[int, tuple[Any, int, Any]] = {}
        self._nack_timer = None
        #: highest sequence number known to exist anywhere (from ORDs we
        #: saw or from peers' heartbeat high-watermarks): lets an idle,
        #: lagging replica notice it is behind and ask for repair even
        #: when no new traffic exposes the gap
        self.known_high = 0
        # client state
        self._uid_counter = 0
        self.pending: dict[Any, tuple[Any, Any]] = {}  # uid -> (payload, timer)
        # sequencer state
        self.seq_next = 0
        self.sequenced_uids: set[Any] = set()
        self.syncing = False
        self.sync_epoch = 0
        self._sync_resps: dict[int, int] = {}
        self._held_reqs: list[tuple[Any, int, Any]] = []
        # stats
        self.delivered_count = 0

    # ------------------------------------------------------------------ #
    # roles
    # ------------------------------------------------------------------ #

    def sequencer(self) -> int:
        """Current sequencer: lowest-id host not locally suspected."""
        for h in self.all_hosts:
            if h not in self.suspected:
                return h
        return self.host.id  # everyone suspected: act alone

    def has_quorum(self) -> bool:
        """True when a majority of the static membership looks alive.

        Sequencing (and takeover, and token regeneration) is restricted to
        the majority side of a partition, so a split brain cannot fork the
        total order — the minority's requests wait (client retransmission
        keeps them alive) until the partition heals.  Only enforced when
        ``require_quorum`` is configured; the default (paper-faithful)
        crash-stop model always answers True.
        """
        if not self.cfg.require_quorum:
            return True
        live = sum(1 for h in self.all_hosts if h not in self.suspected)
        return live >= len(self.all_hosts) // 2 + 1

    @property
    def is_sequencer(self) -> bool:
        return self.sequencer() == self.host.id

    def on_suspicion_change(self, suspected: set[int]) -> None:
        """Membership's failure detector updated its suspicions.

        If the change makes *us* the sequencer, run the takeover sync
        before sequencing anything new; if it restores quorum, drain the
        requests held while we were in a minority.
        """
        was_seq = self.is_sequencer
        self.suspected = set(suspected)
        if self.is_sequencer and not was_seq and not self.recovering:
            self._start_takeover_sync()
        elif self.is_sequencer and not self.syncing and not self.recovering:
            self._drain_held()

    def _drain_held(self) -> None:
        """Sequence requests deferred while syncing or quorum-less."""
        if self.syncing or not self.has_quorum():
            return
        held, self._held_reqs = self._held_reqs, []
        for uid, origin, payload in held:
            self._sequence(uid, origin, payload)

    # ------------------------------------------------------------------ #
    # public API (upper layers)
    # ------------------------------------------------------------------ #

    def broadcast(self, payload: Any) -> Any:
        """Submit *payload* for totally ordered delivery; returns its uid."""
        self._uid_counter += 1
        # incarnation in the uid keeps post-recovery requests distinct from
        # the host's pre-crash ones (both survive in delivered_uids sets)
        uid = (self.host.id, self._incarnation, self._uid_counter)
        self._submit(uid, payload)
        return uid

    def _submit(self, uid: Any, payload: Any) -> None:
        if self.is_sequencer and not self.syncing:
            self._sequence(uid, self.host.id, payload)
        else:
            self._send_req(uid, payload)
        timer = self.host.sim.schedule(
            self.cfg.retrans_timeout_us, self._retransmit, uid, self._incarnation
        )
        self.pending[uid] = (payload, timer)

    def from_upper(self, msg: Message, ordered: bool = True, dst: int = BROADCAST, **kw: Any) -> None:
        """x-kernel path: ordered broadcast, or RAW passthrough traffic."""
        if ordered:
            self.broadcast(msg.payload)
        else:
            msg.push_header(self.name, ("RAW",), size=1)
            self.send_down(msg, dst=dst)

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #

    def _send_req(self, uid: Any, payload: Any) -> None:
        msg = Message(payload)
        msg.push_header(self.name, ("REQ", uid), size=16)
        self.send_down(msg, dst=self.sequencer())

    def _retransmit(self, uid: Any, incarnation: int) -> None:
        if incarnation != self._incarnation or self.host.crashed:
            return
        if uid not in self.pending:
            return
        payload, _old = self.pending[uid]
        if self.is_sequencer and not self.syncing:
            self._sequence(uid, self.host.id, payload)
        else:
            self._send_req(uid, payload)
        timer = self.host.sim.schedule(
            self.cfg.retrans_timeout_us, self._retransmit, uid, self._incarnation
        )
        self.pending[uid] = (payload, timer)

    # ------------------------------------------------------------------ #
    # sequencer side
    # ------------------------------------------------------------------ #

    def _sequence(self, uid: Any, origin: int, payload: Any) -> None:
        if uid in self.sequenced_uids or uid in self.delivered_uids:
            return
        if not self.has_quorum():
            self._held_reqs.append((uid, origin, payload))
            return
        self.sequenced_uids.add(uid)
        seqno = self.seq_next
        self.seq_next += 1
        msg = Message(payload)
        msg.push_header(self.name, ("ORD", seqno, uid, origin), size=24)
        self.send_down(msg, dst=BROADCAST)
        # the segment does not loop frames back to the sender: the
        # sequencer replica delivers its own ORD through the host CPU, so
        # local delivery pays the same protocol-processing cost as remote
        # delivery — otherwise a sequencer-local client could outrun the
        # wire and every other replica
        self.host.cpu(self._handle_ord_guarded, self._incarnation,
                      seqno, uid, origin, payload)

    def _handle_ord_guarded(
        self, incarnation: int, seqno: int, uid: Any, origin: int, payload: Any
    ) -> None:
        if incarnation != self._incarnation or self.host.crashed:
            return
        self._handle_ord(seqno, uid, origin, payload)

    def _start_takeover_sync(self) -> None:
        self.syncing = True
        self.sync_epoch += 1
        self._sync_resps = {}
        msg = Message(("sync", self.next_deliver))
        msg.push_header(self.name, ("SYNC_REQ", self.sync_epoch, self.next_deliver), size=16)
        self.send_down(msg, dst=BROADCAST)
        self.host.sim.schedule(
            self.cfg.sync_timeout_us,
            self._finish_takeover_sync,
            self.sync_epoch,
            self._incarnation,
        )

    def _finish_takeover_sync(self, epoch: int, incarnation: int) -> None:
        if incarnation != self._incarnation or self.host.crashed:
            return
        if not self.syncing or epoch != self.sync_epoch:
            return
        max_seen = max(
            [self.next_deliver - 1]
            + list(self.buffer)
            + list(self._sync_resps.values())
        )
        self.seq_next = max(self.seq_next, max_seen + 1)
        self.syncing = False
        self._drain_held()
        # re-submit our own pending requests immediately
        for uid, (payload, _t) in list(self.pending.items()):
            self._sequence(uid, self.host.id, payload)

    # ------------------------------------------------------------------ #
    # receive path
    # ------------------------------------------------------------------ #

    def from_lower(self, msg: Message, src: int = -1, **kw: Any) -> None:
        header = msg.pop_header(self.name)
        kind = header[0]
        if kind == "RAW":
            self.deliver_up(msg, src=src, ordered=False)
        elif kind == "REQ":
            _k, uid = header
            if self.recovering:
                return
            if self.is_sequencer:
                if self.syncing:
                    self._held_reqs.append((uid, src, msg.payload))
                else:
                    self._sequence(uid, src, msg.payload)
            else:
                # stale belief at the client: forward to the real sequencer
                fwd = Message(msg.payload)
                fwd.push_header(self.name, ("REQ", uid), size=16)
                self.send_down(fwd, dst=self.sequencer())
        elif kind == "ORD" or kind == "RETR":
            _k, seqno, uid, origin = header
            self._handle_ord(seqno, uid, origin, msg.payload)
        elif kind == "NACK":
            _k, lo, hi = header
            self._handle_nack(src, lo, hi)
        elif kind == "SYNC_REQ":
            _k, epoch, their_next = header
            self._handle_sync_req(src, epoch, their_next)
        elif kind == "SYNC_RESP":
            _k, epoch, max_seen, entries = header
            if self.syncing and epoch == self.sync_epoch:
                self._sync_resps[src] = max_seen
                for seqno, e_uid, e_origin, e_payload in entries:
                    if seqno >= self.next_deliver and seqno not in self.buffer:
                        self.buffer[seqno] = (e_uid, e_origin, e_payload)
                self._drain()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown ord header kind {kind!r}")

    def _handle_ord(self, seqno: int, uid: Any, origin: int, payload: Any) -> None:
        if self.recovering:
            # buffer everything; replica layer will tell us where to start
            self.buffer[seqno] = (uid, origin, payload)
            return
        self.known_high = max(self.known_high, seqno + 1)
        if seqno < self.next_deliver:
            return  # duplicate
        self.buffer[seqno] = (uid, origin, payload)
        self._drain()
        if self.buffer and min(self.buffer) > self.next_deliver:
            self._schedule_nack()

    def note_remote_progress(self, remote_next: int) -> None:
        """A peer reports having delivered up to *remote_next* (exclusive).

        Piggybacked on heartbeats by the membership layer.  If the peer is
        ahead of us and nothing in flight will close the gap, start the
        NACK repair — the anti-entropy path that un-wedges a replica that
        missed traffic while no new commands are flowing.
        """
        if self.recovering or remote_next <= self.known_high:
            return
        self.known_high = remote_next
        if self.known_high > self.next_deliver:
            self._schedule_nack()

    def _drain(self) -> None:
        while self.next_deliver in self.buffer:
            seqno = self.next_deliver
            uid, origin, payload = self.buffer.pop(seqno)
            self.next_deliver += 1
            self.recent_log[seqno] = (uid, origin, payload)
            if len(self.recent_log) > self.cfg.recent_log_size:
                self.recent_log.pop(min(self.recent_log))
            if seqno >= self.seq_next:
                self.seq_next = seqno + 1
            if uid in self.delivered_uids:
                continue
            self.delivered_uids.add(uid)
            if uid in self.pending:
                _payload, timer = self.pending.pop(uid)
                timer.cancel()
            self.delivered_count += 1
            up = Message(payload)
            self.deliver_up(
                up, ordered=True, uid=uid, origin=origin, seqno=seqno
            )

    def _schedule_nack(self) -> None:
        if self._nack_timer is not None:
            return
        self._nack_timer = self.host.sim.schedule(
            self.cfg.nack_delay_us, self._send_nack, self._incarnation
        )

    def _send_nack(self, incarnation: int) -> None:
        self._nack_timer = None
        if incarnation != self._incarnation or self.host.crashed:
            return
        if self.recovering:
            return
        lo = self.next_deliver
        if self.buffer:
            hi = min(self.buffer) - 1
        else:
            hi = self.known_high - 1  # gap known only via gossip
        if hi < lo:
            return
        # repair source: whoever originated the ORD just past the gap has
        # certainly delivered everything below it; prefer it over our
        # (possibly stale) idea of the sequencer — in particular a falsely
        # excluded sequencer would otherwise NACK itself forever
        if self.buffer:
            _uid, origin, _payload = self.buffer[min(self.buffer)]
            target = origin
        else:
            target = self.sequencer()
        if target == self.host.id or target in self.suspected:
            target = self.sequencer()
        if target == self.host.id:
            others = [h for h in self.all_hosts
                      if h != self.host.id and h not in self.suspected]
            if not others:
                return
            target = others[0]
        msg = Message(("nack",))
        msg.push_header(self.name, ("NACK", lo, hi), size=16)
        self.send_down(msg, dst=target)
        self._schedule_nack()  # keep nagging until the gap closes

    def _handle_nack(self, src: int, lo: int, hi: int) -> None:
        for seqno in range(lo, hi + 1):
            entry = self.recent_log.get(seqno)
            if entry is None:
                continue
            uid, origin, payload = entry
            msg = Message(payload)
            msg.push_header(self.name, ("RETR", seqno, uid, origin), size=24)
            self.send_down(msg, dst=src)

    def _handle_sync_req(self, src: int, epoch: int, their_next: int) -> None:
        if self.recovering:
            return  # our own counters are stale; do not mislead the taker
        max_seen = self.next_deliver - 1
        if self.buffer:
            max_seen = max(max_seen, max(self.buffer))
        entries = [
            (seqno, e[0], e[1], e[2])
            for seqno, e in sorted(self.recent_log.items())
            if seqno >= their_next
        ]
        msg = Message(("sync_resp",))
        msg.push_header(self.name, ("SYNC_RESP", epoch, max_seen, entries), size=None)
        self.send_down(msg, dst=src)

    # ------------------------------------------------------------------ #
    # recovery hooks (driven by membership/replica layers)
    # ------------------------------------------------------------------ #

    def begin_recovery(self) -> None:
        """Host restarted: buffer broadcasts until the snapshot arrives."""
        self.recovering = True

    def install_recovery(self, next_deliver: int, delivered_uids: set[Any]) -> None:
        """Snapshot installed: resume ordered delivery from *next_deliver*."""
        self.next_deliver = next_deliver
        self.seq_next = max(self.seq_next, next_deliver)
        self.delivered_uids = set(delivered_uids)
        self.buffer = {s: e for s, e in self.buffer.items() if s >= next_deliver}
        self.recovering = False
        self._drain()
        if self.buffer and min(self.buffer) > self.next_deliver:
            self._schedule_nack()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def host_crashed(self) -> None:
        self._incarnation += 1
        for _payload, timer in self.pending.values():
            timer.cancel()
        if self._nack_timer is not None:
            self._nack_timer.cancel()
        self._reset_state()

    def host_recovered(self) -> None:
        self._incarnation += 1
        self.begin_recovery()
