"""The replica layer: tuple-space state machines over ordered delivery.

Top of each host's protocol stack.  It owns two
:class:`~repro.core.statemachine.TSStateMachine` instances:

- the **stable** machine, identical on every host, fed exclusively by the
  totally ordered command stream — this is the replicated stable tuple
  space of the paper;
- a **volatile** machine, host-local, executing AGSs that touch only
  volatile spaces with no network traffic at all (and dying with the
  host, as volatile spaces must).

It also implements the data path of recovery: when a
:class:`~repro.core.statemachine.HostRecovered` command is delivered, the
deterministic *snapshot sender* (lowest live member id) captures the
stable machine plus the ordering layer's delivery coordinates — all at the
exact same point of the total order on every replica — and ships it to the
newcomer, which installs it and resumes ordered delivery from the next
sequence number.  One state transfer, no quiescing of the other replicas.
"""

from __future__ import annotations

from typing import Any

from repro._errors import AGSError
from repro.consul.config import ConsulConfig
from repro.consul.hosts import SimHost
from repro.consul.membership import MembershipLayer
from repro.core.ags import AGS, OpCode
from repro.core.spaces import Resilience, Scope, SpaceRegistry, TSHandle
from repro.core.statemachine import (
    Command,
    Completion,
    CreateSpace,
    DestroySpace,
    ExecuteAGS,
    HostRecovered,
    TSStateMachine,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import SimEvent
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol

__all__ = ["ReplicaLayer", "ags_domain", "ags_op_count"]

#: Base id for host-local volatile tuple spaces (disjoint from stable ids).
_VOLATILE_ID_BASE = 1_000_000_000
_VOLATILE_ID_SPAN = 1_000_000


def ags_domain(ags: AGS) -> str:
    """Classify an AGS as ``"stable"`` or ``"volatile"``.

    The two domains have different execution paths (multicast vs local),
    so one statement may not mix them — a mixed AGS could not be atomic
    with a single multicast, which is why the paper's design keeps bodies
    executable locally at every replica.  TS operands bound at run time
    (formal references) are assumed stable, the replicated default.
    """
    stable = False
    volatile = False
    for branch in ags.branches:
        ops = list(branch.body)
        if branch.guard.op is not None:
            ops.append(branch.guard.op)
        for op in ops:
            for operand in (op.ts, op.ts2):
                if operand is None:
                    continue
                value = getattr(operand, "value", None)
                if isinstance(value, TSHandle):
                    if value.stable:
                        stable = True
                    else:
                        volatile = True
                else:
                    stable = True  # dynamic handles default to stable
    if stable and volatile:
        raise AGSError(
            "an AGS may not mix stable and volatile tuple spaces: it could "
            "not be executed atomically with a single multicast"
        )
    return "volatile" if volatile else "stable"


def ags_op_count(ags: AGS) -> int:
    """Total tuple operations in an AGS (drives the CPU cost model)."""
    n = 0
    for branch in ags.branches:
        if branch.guard.op is not None:
            n += 1
        n += len(branch.body)
    return max(n, 1)


class ReplicaLayer(Protocol):
    """FT-Linda's library layer on one host of the replica group."""

    name = "replica"

    def __init__(self, host: SimHost, all_hosts: list[int], cfg: ConsulConfig):
        super().__init__()
        self.host = host
        self.all_hosts = sorted(all_hosts)
        self.cfg = cfg
        self.sm = TSStateMachine()
        # Blocked-since / last-out stamps must live in virtual time, or a
        # waiter's age would mix sim-microseconds with wall-clock seconds.
        self.sm.clock = self._sim_clock
        self.volatile = self._fresh_volatile()
        self.waiting: dict[int, SimEvent] = {}
        self._req_counter = 0
        self.recovering = False
        self.recovered_event: SimEvent | None = None
        self._queued_submissions: list[tuple[Command, int]] = []
        self.commands_applied = 0
        self._last_snapshot: dict[int, Any] = {}  # recovered host -> snapshot
        self._last_snapshot_sent: dict[int, float] = {}
        self._snapshot_fragments: dict[Any, dict[int, bytes]] = {}
        # Same instrument names as the real-time backends, so every
        # experiment reports the same numbers; sim virtual µs -> seconds.
        self.metrics = MetricsRegistry()
        self._h_submit = self.metrics.histogram("submit_to_order")
        self._h_apply = self.metrics.histogram("order_to_apply")
        self._h_e2e = self.metrics.histogram("ags_e2e")
        self._c_cmds = self.metrics.counter("commands_submitted")
        self._submit_t: dict[int, float] = {}
        self._order_t: dict[int, float] = {}
        #: Apply-stream hook: called as ``(host_id, slot, request_id)`` for
        #: every ordered command (the sim Tracer plants it; ``None`` = off).
        #: The slot is ``sm.applied_count`` — part of the snapshot, so a
        #: recovered host resumes counting exactly where its donor stood.
        self.trace_apply: Any | None = None

    def _sim_clock(self) -> float:
        """Virtual time in seconds (sim runs in microseconds)."""
        return self.host.sim.now / 1e6

    def _fresh_volatile(self) -> TSStateMachine:
        reg = SpaceRegistry(
            create_main=False,
            first_id=_VOLATILE_ID_BASE + self.host.id * _VOLATILE_ID_SPAN,
        )
        sm = TSStateMachine(reg, failure_spaces=[])
        sm.clock = self._sim_clock
        return sm

    # ------------------------------------------------------------------ #
    # wiring helpers
    # ------------------------------------------------------------------ #

    @property
    def membership(self) -> MembershipLayer:
        assert isinstance(self.lower, MembershipLayer)
        return self.lower

    def start(self) -> None:
        self.membership.on_resend_snapshot = self._resend_snapshot

    def _next_request_id(self) -> int:
        self._req_counter += 1
        return (
            self.host.id * 10**12
            + self.host.crash_count * 10**9
            + self._req_counter
        )

    # ------------------------------------------------------------------ #
    # client API (used by SimCluster views)
    # ------------------------------------------------------------------ #

    def submit_ags(self, ags: AGS, process_id: int = 0) -> SimEvent:
        """Execute *ags*; the returned event fires with its AGSResult."""
        domain = ags_domain(ags)
        rid = self._next_request_id()
        cmd = ExecuteAGS(rid, self.host.id, process_id, ags)
        ev = self.host.sim.event(f"ags#{rid}")
        self.waiting[rid] = ev
        self._note_submitted(rid)
        if domain == "volatile":
            self.host.cpu(
                self._apply_local,
                cmd,
                cost_us=self.cfg.apply_cost(ags_op_count(ags)),
            )
        else:
            self._submit_ordered(cmd)
        return ev

    def submit_create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> SimEvent:
        rid = self._next_request_id()
        ev = self.host.sim.event(f"ts_create#{rid}")
        self.waiting[rid] = ev
        self._note_submitted(rid)
        if resilience is Resilience.VOLATILE:
            cmd = CreateSpace(rid, self.host.id, name, resilience, scope, owner)
            self.host.cpu(self._apply_local, cmd, cost_us=self.cfg.apply_base_us)
        else:
            self._submit_ordered(
                CreateSpace(rid, self.host.id, name, resilience, scope, owner)
            )
        return ev

    def submit_destroy_space(self, handle: TSHandle) -> SimEvent:
        rid = self._next_request_id()
        ev = self.host.sim.event(f"ts_destroy#{rid}")
        self.waiting[rid] = ev
        self._note_submitted(rid)
        cmd = DestroySpace(rid, self.host.id, handle)
        if handle.stable:
            self._submit_ordered(cmd)
        else:
            self.host.cpu(self._apply_local, cmd, cost_us=self.cfg.apply_base_us)
        return ev

    def _note_submitted(self, rid: int) -> None:
        self._c_cmds.inc()
        self._submit_t[rid] = self.host.sim.now

    def _submit_ordered(self, cmd: Command) -> None:
        if self.recovering:
            self._queued_submissions.append((cmd, 0))
            return
        self.send_down(Message(cmd), ordered=True)

    def _apply_local(self, cmd: Command) -> None:
        completions = self.volatile.apply(cmd)
        self._complete(completions)

    # ------------------------------------------------------------------ #
    # ordered delivery
    # ------------------------------------------------------------------ #

    def from_lower(
        self,
        msg: Message,
        ordered: bool = False,
        src: int = -1,
        seqno: int | None = None,
        **kw: Any,
    ) -> None:
        if not ordered:
            payload = msg.payload
            if isinstance(payload, tuple) and payload and payload[0] == "SNAPFRAG":
                self._receive_snapshot_fragment(payload)
            elif isinstance(payload, tuple) and payload and payload[0] == "RPC_REQ":
                self._handle_rpc(payload)
            return
        cmd = msg.payload
        if not isinstance(cmd, Command):  # pragma: no cover - defensive
            raise TypeError(f"ordered payload is not a Command: {cmd!r}")
        # Apply synchronously so the stable machine always equals the
        # delivered prefix (snapshots need this exactness); the CPU cost is
        # charged to the completion notifications below.
        completions = self.sm.apply(cmd)
        self.commands_applied += 1
        if self.trace_apply is not None:
            self.trace_apply(self.host.id, self.sm.applied_count, cmd.request_id)
        rid = getattr(cmd, "request_id", None)
        if rid is not None and rid in self._submit_t and rid not in self._order_t:
            now = self.host.sim.now
            self._order_t[rid] = now
            self._h_submit.record((now - self._submit_t[rid]) / 1e6)
        if isinstance(cmd, HostRecovered) and seqno is not None:
            self._maybe_send_snapshot(cmd.recovered_host, seqno)
        from repro.core.statemachine import HostFailed

        if isinstance(cmd, HostFailed) and cmd.failed_host == self.host.id:
            # falsely excluded: the membership layer has started the rejoin
            # dance; pause submissions until the snapshot reinstates us
            self._begin_rejoin()
        cost = self.cfg.apply_cost(
            ags_op_count(cmd.ags) if isinstance(cmd, ExecuteAGS) else 1
        )
        self.host.cpu(self._complete, completions, cost_us=cost)

    def _complete(self, completions: list[Completion]) -> None:
        for c in completions:
            if c.origin_host != self.host.id:
                continue
            now = self.host.sim.now
            t_ord = self._order_t.pop(c.request_id, None)
            if t_ord is not None:
                self._h_apply.record((now - t_ord) / 1e6)
            t_sub = self._submit_t.pop(c.request_id, None)
            if t_sub is not None:
                self._h_e2e.record((now - t_sub) / 1e6)
            ev = self.waiting.pop(c.request_id, None)
            if ev is not None and not ev.triggered:
                ev.succeed(c.result)

    # ------------------------------------------------------------------ #
    # tuple-server side of the Figure 17 RPC configuration
    # ------------------------------------------------------------------ #

    def _handle_rpc(self, payload: tuple) -> None:
        """Serve one forwarded request: submit locally, reply on completion."""
        _k, rid, client_host, process_id, ags = payload
        ev = self.submit_ags(ags, process_id)
        ev.add_waiter(lambda result: self._rpc_reply(client_host, rid, result))

    def _rpc_reply(self, client_host: int, rid: int, result: Any) -> None:
        if self.host.crashed:
            return
        msg = Message(("RPC_REP", rid, result))
        self.send_down(msg, ordered=False, dst=client_host)

    # ------------------------------------------------------------------ #
    # recovery data path
    # ------------------------------------------------------------------ #

    def _maybe_send_snapshot(self, recovered: int, seqno: int) -> None:
        view = self.membership.view
        senders = sorted(view - {recovered})
        if not senders or senders[0] != self.host.id:
            return
        ordering = self.membership.ordering
        snapshot = {
            "sm": self.sm.snapshot(),
            "view": sorted(view),
            "next_deliver": seqno + 1,
            "delivered_uids": list(ordering.delivered_uids),
        }
        self._last_snapshot[recovered] = snapshot
        self._send_snapshot(recovered, snapshot)

    #: Snapshot fragment payload size.  One unfragmented multi-hundred-KB
    #: frame would monopolize the 10 Mb medium long enough to starve
    #: heartbeats and get hosts falsely suspected — exactly why real
    #: transfers fragment.  8 KB ≈ 6.5 ms of wire time per fragment.
    SNAPSHOT_FRAGMENT_BYTES = 8192

    def _send_snapshot(self, dst: int, snapshot: dict[str, Any]) -> None:
        import pickle

        self._last_snapshot_sent[dst] = self.host.sim.now
        blob = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        step = self.SNAPSHOT_FRAGMENT_BYTES
        chunks = [blob[i : i + step] for i in range(0, len(blob), step)] or [b""]
        xfer_id = (self.host.id, self._last_snapshot_sent[dst])
        # pace the fragments: a back-to-back burst would reserve the shared
        # medium for the whole transfer and starve heartbeats/data anyway
        wire_us = step * 8 / self.host.segment.bandwidth_bps * 1e6
        gap = wire_us * 1.5
        generation = self.host.crash_count
        for idx, chunk in enumerate(chunks):
            self.host.sim.schedule(
                idx * gap,
                self._send_fragment,
                generation,
                dst,
                ("SNAPFRAG", xfer_id, idx, len(chunks), chunk),
            )

    def _send_fragment(self, generation: int, dst: int, payload: tuple) -> None:
        if self.host.crashed or generation != self.host.crash_count:
            return
        self.send_down(Message(payload), ordered=False, dst=dst)

    def _receive_snapshot_fragment(self, payload: tuple) -> None:
        import pickle

        _k, xfer_id, idx, total, chunk = payload
        if not self.recovering:
            return
        buf = self._snapshot_fragments.setdefault(xfer_id, {})
        buf[idx] = chunk
        if len(buf) == total:
            blob = b"".join(buf[i] for i in range(total))
            self._snapshot_fragments.clear()
            self._install_snapshot(pickle.loads(blob))

    def _resend_snapshot(self, dst: int) -> None:
        snap = self._last_snapshot.get(dst)
        if snap is None:
            return
        # large snapshots take a while on the wire; a newcomer re-announcing
        # RESTART in the meantime does not mean the transfer was lost
        last = self._last_snapshot_sent.get(dst, -1e18)
        if self.host.sim.now - last < 4 * self.cfg.restart_interval_us:
            return
        self._send_snapshot(dst, snap)

    def _install_snapshot(self, snapshot: dict[str, Any]) -> None:
        if not self.recovering:
            return  # duplicate shipment
        self.sm = TSStateMachine.from_snapshot(snapshot["sm"])
        # from_snapshot stamped parked statements with the default wall
        # clock; move them (and future stamps) into virtual time
        self.sm.clock = self._sim_clock
        now = self._sim_clock()
        for b in self.sm.blocked:
            b.since = now
        ordering = self.membership.ordering
        ordering.install_recovery(
            snapshot["next_deliver"], set(snapshot["delivered_uids"])
        )
        self.membership.recovery_complete(set(snapshot["view"]))
        self.recovering = False
        queued, self._queued_submissions = self._queued_submissions, []
        for cmd, _ in queued:
            self.send_down(Message(cmd), ordered=True)
        if self.recovered_event is not None and not self.recovered_event.triggered:
            self.recovered_event.succeed(self.host.sim.now)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def host_crashed(self) -> None:
        self.waiting.clear()
        self._queued_submissions.clear()
        self._submit_t.clear()
        self._order_t.clear()
        self.volatile = self._fresh_volatile()
        self._last_snapshot.clear()
        self._snapshot_fragments.clear()

    def host_recovered(self) -> None:
        self.recovering = True
        self._req_counter = 0
        self.recovered_event = self.host.sim.event(f"h{self.host.id}.recovered")

    def _begin_rejoin(self) -> None:
        """Enter recovering mode without a crash (false exclusion)."""
        if self.recovering:
            return
        self.recovering = True
        self.recovered_event = self.host.sim.event(f"h{self.host.id}.rejoined")

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def stable_fingerprint(self) -> int:
        return self.sm.fingerprint()

    def space_size(self, handle: TSHandle) -> int:
        sm = self.sm if handle.stable else self.volatile
        return len(sm.registry.store(handle))

    def space_tuples(self, handle: TSHandle):
        sm = self.sm if handle.stable else self.volatile
        return sm.registry.store(handle).to_list()

    def introspection(self) -> dict[str, Any]:
        """Merged stable + host-local volatile live-state image.

        Both machines run on the sim's virtual clock, so waiter ages and
        last-out ages are in virtual seconds.
        """
        now = self._sim_clock()
        stable = self.sm.introspection(now)
        vol = self.volatile.introspection(now)
        stable["waiters"].extend(vol["waiters"])
        stable["spaces"].extend(vol["spaces"])
        stable["last_out_age"].update(vol["last_out_age"])
        return stable
