"""Simulated hosts: a processor, its NIC, its protocol stack, its clients.

A :class:`SimHost` models one workstation of the paper's testbed.  Hosts
are **fail-silent**: :meth:`SimHost.crash` stops the NIC, kills every
client process and discards all protocol soft state, with no goodbye
message — exactly the failure model the paper assumes (Sec. 5), which the
membership layer then converts to fail-stop by announcing a failure tuple.

The host also owns a tiny CPU model: protocol upcalls are serialized
through :meth:`cpu` with a configurable service time, so protocol
processing costs show up in end-to-end latencies (the dominant term in
Consul's measured 4.0 ms ordering time on Sun-3s was exactly this).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import Simulator
from repro.sim.process import SimProcess
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol, ProtocolStack
from repro.consul.network import BROADCAST, EthernetSegment, NIC

__all__ = ["NetDriver", "SimHost"]


class SimHost:
    """One simulated workstation."""

    def __init__(
        self,
        host_id: int,
        sim: Simulator,
        segment: EthernetSegment,
        *,
        cpu_us_per_msg: float = 1000.0,
    ):
        self.id = host_id
        self.sim = sim
        self.segment = segment
        self.cpu_us_per_msg = cpu_us_per_msg
        self.crashed = False
        self.nic = NIC(host_id, self._on_frame)
        segment.attach(self.nic)
        self.stack: ProtocolStack | None = None
        self.processes: list[SimProcess] = []
        self._cpu_free_at = 0.0
        self.crash_count = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def install_stack(self, stack: ProtocolStack) -> None:
        self.stack = stack
        stack.start()

    def spawn(self, gen: Any, name: str = "") -> SimProcess:
        """Start a client process on this host (killed if the host crashes)."""
        proc = SimProcess(self.sim, gen, name or f"h{self.id}.proc")
        self.processes.append(proc)
        return proc

    # ------------------------------------------------------------------ #
    # CPU model
    # ------------------------------------------------------------------ #

    def cpu(self, fn: Callable[..., None], *args: Any, cost_us: float | None = None) -> None:
        """Run ``fn(*args)`` after queueing for this host's CPU.

        Work is FIFO: each job occupies the CPU for *cost_us* (default
        :attr:`cpu_us_per_msg`), so a burst of deliveries serializes — as
        it did on the paper's single-CPU workstations.
        """
        cost = self.cpu_us_per_msg if cost_us is None else cost_us
        start = max(self.sim.now, self._cpu_free_at)
        self._cpu_free_at = start + cost
        generation = self.crash_count
        self.sim.schedule(
            (start + cost) - self.sim.now, self._cpu_run, generation, fn, args
        )

    def _cpu_run(self, generation: int, fn: Callable[..., None], args: tuple) -> None:
        # jobs queued before a crash die with the crash
        if self.crashed or generation != self.crash_count:
            return
        fn(*args)

    # ------------------------------------------------------------------ #
    # frames
    # ------------------------------------------------------------------ #

    def transmit(self, dst: int, msg: Message) -> None:
        """Put a frame on the wire (no-op when crashed: fail-silent)."""
        if self.crashed:
            return
        self.segment.transmit(self.id, dst, msg)

    def _on_frame(self, msg: Message, src: int) -> None:
        if self.crashed or self.stack is None:
            return
        self.cpu(self._dispatch_frame, msg, src)

    def _dispatch_frame(self, msg: Message, src: int) -> None:
        assert self.stack is not None
        self.stack.bottom.from_lower(msg, src=src)

    # ------------------------------------------------------------------ #
    # failure injection
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """Fail silently: halt clients, drop soft state, go deaf."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self.nic.up = False
        for p in self.processes:
            p.kill()
        self.processes.clear()
        if self.stack is not None:
            self.stack.host_crashed()

    def recover(self) -> None:
        """Restart the processor; protocols begin their rejoin dance."""
        if not self.crashed:
            return
        self.crashed = False
        self.nic.up = True
        self._cpu_free_at = self.sim.now
        if self.stack is not None:
            self.stack.host_recovered()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"SimHost({self.id}, {state})"


class NetDriver(Protocol):
    """Bottom of the stack: frames to/from the Ethernet segment."""

    name = "net"

    def __init__(self, host: SimHost):
        super().__init__()
        self.host = host

    def from_upper(self, msg: Message, dst: int = BROADCAST, **kw: Any) -> None:
        self.host.transmit(dst, msg)

    def from_lower(self, msg: Message, **kw: Any) -> None:
        # invoked by SimHost._on_frame via the CPU queue
        self.deliver_up(msg, **kw)
