"""The RPC-forwarding configuration of the paper's Figure 17.

In the main design every host runs a TS replica, so the FT-Linda library
submits requests to Consul directly.  Figure 17 shows the alternative for
machines that do *not* host a replica: "rather than requests being
submitted to Consul directly from the FT-Linda library, a remote procedure
call (RPC) [31] would be used to forward the request to a request handler
process on a tuple server.  This handler immediately submits it to
Consul's multicast service as before" — and ships the result back in the
RPC reply.

:class:`RPCClientLayer` is the whole stack of such a client host (over the
net driver): it marshals the AGS into an ``RPC_REQ`` unicast to its tuple
server and parks the caller until the ``RPC_REP`` returns.  The server
side lives in :class:`~repro.consul.replica.ReplicaLayer`, which treats an
incoming ``RPC_REQ`` exactly like a local submission plus a reply hook.

Experiment E5 measures the extra round trip this configuration costs.
"""

from __future__ import annotations

from typing import Any

from repro.consul.hosts import SimHost
from repro.core.ags import AGS
from repro.sim.kernel import SimEvent
from repro.xkernel.message import Message
from repro.xkernel.protocol import Protocol

__all__ = ["RPCClientLayer"]


class RPCClientLayer(Protocol):
    """Thin FT-Linda client: every request is an RPC to a tuple server."""

    name = "rpc"

    def __init__(self, host: SimHost, server_host: int):
        super().__init__()
        self.host = host
        self.server_host = server_host
        self._req_counter = 0
        self.waiting: dict[int, SimEvent] = {}
        self.recovering = False  # interface parity with ReplicaLayer

    # ------------------------------------------------------------------ #
    # client API (same surface SimView uses on replica hosts)
    # ------------------------------------------------------------------ #

    def submit_ags(self, ags: AGS, process_id: int = 0) -> SimEvent:
        self._req_counter += 1
        rid = self.host.id * 10**12 + self.host.crash_count * 10**9 + self._req_counter
        ev = self.host.sim.event(f"rpc#{rid}")
        self.waiting[rid] = ev
        payload = ("RPC_REQ", rid, self.host.id, process_id, ags)
        msg = Message(payload)
        # frame it the way the server's ordering layer expects raw traffic
        msg.push_header("ord", ("RAW",), size=1)
        self.send_down(msg, dst=self.server_host)
        return ev

    def submit_create_space(self, *args: Any, **kw: Any) -> SimEvent:
        raise NotImplementedError(
            "RPC clients issue tuple operations only; create spaces from a "
            "replica host"
        )

    submit_destroy_space = submit_create_space

    # ------------------------------------------------------------------ #
    # receive path
    # ------------------------------------------------------------------ #

    def from_lower(self, msg: Message, src: int = -1, **kw: Any) -> None:
        header = msg.pop_header("ord")
        if header[0] != "RAW":
            return  # ORD broadcasts etc. — not ours, we hold no replica
        payload = msg.payload
        if not (isinstance(payload, tuple) and payload and payload[0] == "RPC_REP"):
            return  # heartbeats and other chatter
        _k, rid, result = payload
        ev = self.waiting.pop(rid, None)
        if ev is not None and not ev.triggered:
            ev.succeed(result)

    def host_crashed(self) -> None:
        self.waiting.clear()

    def host_recovered(self) -> None:
        pass
